"""Setup shim: enables legacy editable installs (`pip install -e .`) in
offline environments without the `wheel` package (PEP 660 needs it)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Adaptive block rearrangement (Akyurek & Salem, ICDE 1993): "
        "adaptive disk driver, disk/FS simulator, and experiment harness"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.23"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
