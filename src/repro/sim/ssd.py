"""SSD experiments: the paper's workloads against a flash cost model.

A :class:`SsdExperiment` drives the *same* generated day streams as the
disk :class:`~repro.sim.experiment.Experiment` — identical disk label,
partition layout, generator and seed — through the page-mapped FTL
backend (:mod:`repro.driver.ftl`) instead of the mechanical disk.  One
logical disk block maps to one flash logical page, so a given
``(profile, seed)`` pair issues bit-identical request streams to both
device classes and their results are directly comparable.

On flash the rearrangement question changes shape: there is no arm, so
the analyzer's frequency data drives *hot/cold separation* of the write
stream instead of block placement.  The config's ``policy`` keeps the
``RearrangementPolicy`` plumbing: :class:`~repro.policy.NoRearrangement`
(``"off"``) runs the FTL with a single write frontier, any other policy
enables adaptive separation fed by a
:class:`~repro.core.counters.SpaceSavingSketch` whose counts fade at the
end of each day exactly like the disk analyzer's (the paper's
count-aging rule).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.counters import DEFAULT_FADING, SpaceSavingSketch
from ..disk.label import DiskLabel
from ..disk.models import DiskModel, disk_model
from ..driver.ftl import GC_POLICIES, FtlDriver, flash_model
from ..obs.tracer import NULL_TRACER, Tracer
from ..policy import RearrangementPolicy, resolve_policy
from ..workload.generator import DayWorkload, WorkloadGenerator
from ..workload.profiles import WorkloadProfile, profile_for_disk
from .engine import Simulation
from .experiment import PAPER_RESERVED_CYLINDERS, make_partition

__all__ = ["SsdConfig", "SsdDayResult", "SsdExperiment"]


@dataclass(frozen=True)
class SsdConfig:
    """Everything that defines an SSD campaign."""

    profile: WorkloadProfile
    flash: str = "ssd"
    """Flash geometry preset (:data:`repro.driver.ftl.FLASH_MODELS`)."""
    reference_disk: str = "toshiba"
    """Disk whose label/partition layout defines the logical span — this
    is what keeps the workload stream identical to a disk run."""
    seed: int = 1993
    policy: RearrangementPolicy | str | None = None
    """``"off"`` disables hot/cold separation; anything else (default:
    nightly) enables adaptive separation from the frequency sketch."""
    cmt_capacity: int = 8192
    gc_policy: str = "greedy"
    gc_low_blocks: int = 8
    gc_high_blocks: int = 16
    hot_threshold: int = 2
    sketch_capacity: int = 4096
    """Space-Saving sketch size for separation.  Must comfortably exceed
    the day's distinct written pages: a saturated sketch inherits evicted
    counts, classifying cold pages as hot and erasing the benefit."""
    counter_fading: float | None = None
    """Day-to-day count-aging factor for the separation sketch; ``None``
    uses :data:`repro.core.counters.DEFAULT_FADING`."""
    precondition: bool = True
    """Age the drive before day 0 so the measured days garbage-collect
    (a fresh drive never GCs inside a short window)."""
    precondition_free_blocks: int | None = None

    def __post_init__(self) -> None:
        flash_model(self.flash)
        disk_model(self.reference_disk)
        if self.gc_policy not in GC_POLICIES:
            raise ValueError(
                f"unknown gc policy {self.gc_policy!r}; "
                f"known: {', '.join(GC_POLICIES)}"
            )
        resolve_policy(self.policy)

    def resolved_policy(self) -> RearrangementPolicy:
        return resolve_policy(self.policy)

    @property
    def separation(self) -> bool:
        """Hot/cold separation is on for every policy except ``off``."""
        return self.resolved_policy().kind != "off"

    def payload(self) -> dict:
        """Canonical JSON-ready form for digests."""
        return {
            "profile": self.profile.name,
            "flash": self.flash,
            "reference_disk": self.reference_disk,
            "seed": self.seed,
            "policy": self.resolved_policy().payload(),
            "separation": self.separation,
            "cmt_capacity": self.cmt_capacity,
            "gc_policy": self.gc_policy,
            "gc_low_blocks": self.gc_low_blocks,
            "gc_high_blocks": self.gc_high_blocks,
            "hot_threshold": self.hot_threshold,
            "sketch_capacity": self.sketch_capacity,
        }


@dataclass
class SsdDayResult:
    """FTL activity and service times for one simulated day.

    The counter fields are day deltas (the driver's counters are
    cumulative across the campaign); the wear fields are cumulative —
    wear is device state, not a rate.
    """

    day: int
    completed: int
    workload_requests: int
    workload_reads: int
    mean_response_ms: float
    mean_service_ms: float
    host_page_writes: int
    flash_page_writes: int
    write_amplification: float
    gc_runs: int
    gc_page_moves: int
    cmt_hit_ratio: float
    translation_reads: int
    translation_writes: int
    max_erase_count: int
    mean_erase_count: float

    def payload(self) -> dict:
        return {
            "day": self.day,
            "completed": self.completed,
            "workload_requests": self.workload_requests,
            "workload_reads": self.workload_reads,
            "mean_response_ms": round(self.mean_response_ms, 6),
            "mean_service_ms": round(self.mean_service_ms, 6),
            "host_page_writes": self.host_page_writes,
            "flash_page_writes": self.flash_page_writes,
            "write_amplification": round(self.write_amplification, 6),
            "gc_runs": self.gc_runs,
            "gc_page_moves": self.gc_page_moves,
            "cmt_hit_ratio": round(self.cmt_hit_ratio, 6),
            "translation_reads": self.translation_reads,
            "translation_writes": self.translation_writes,
            "max_erase_count": self.max_erase_count,
            "mean_erase_count": round(self.mean_erase_count, 6),
        }


class SsdExperiment:
    """One assembled FTL + workload, run day by day."""

    def __init__(
        self, config: SsdConfig, tracer: Tracer = NULL_TRACER
    ) -> None:
        self.config = config
        self.tracer = tracer
        self.model: DiskModel = disk_model(config.reference_disk)
        geometry = self.model.geometry
        # The label and partition mirror the disk Experiment exactly so
        # the generator sees the same span and produces the same days.
        self.label = DiskLabel(
            geometry=geometry,
            reserved_cylinders=PAPER_RESERVED_CYLINDERS[
                config.reference_disk
            ],
        )
        profile = profile_for_disk(config.profile, config.reference_disk)
        partition = make_partition(self.label, profile)
        sketch = None
        if config.separation:
            sketch = SpaceSavingSketch(
                capacity=config.sketch_capacity,
                fading=(
                    config.counter_fading
                    if config.counter_fading is not None
                    else DEFAULT_FADING
                ),
            )
        self.driver = FtlDriver(
            geometry=flash_model(config.flash),
            logical_pages=self.label.virtual_total_blocks,
            cmt_capacity=config.cmt_capacity,
            gc_policy=config.gc_policy,
            gc_low_blocks=config.gc_low_blocks,
            gc_high_blocks=config.gc_high_blocks,
            separation=config.separation,
            hot_threshold=config.hot_threshold,
            sketch=sketch,
            name="ssd0",
        )
        self.driver.attach()
        if config.precondition:
            self.driver.precondition(
                seed=config.seed,
                target_free_blocks=config.precondition_free_blocks,
            )
        self.generator = WorkloadGenerator(
            profile=profile,
            partition=partition,
            blocks_per_cylinder=geometry.blocks_per_cylinder,
            seed=config.seed,
        )
        self._day_index = 0
        self.events_dispatched = 0

    def run_day(self) -> SsdDayResult:
        """Simulate one measurement day through the FTL."""
        day = self._day_index
        self._day_index += 1
        workload: DayWorkload = self.generator.generate_day()
        before = replace(self.driver.stats)

        simulation = Simulation(self.driver, tracer=self.tracer)
        simulation.add_jobs(workload.jobs)
        completed = simulation.run()
        end_of_day = simulation.now_ms
        self.events_dispatched += simulation.events_dispatched

        stats = self.driver.stats
        host_writes = stats.host_page_writes - before.host_page_writes
        flash_writes = stats.flash_page_writes - before.flash_page_writes
        hits = stats.cmt_hits - before.cmt_hits
        lookups = hits + stats.cmt_misses - before.cmt_misses
        responses = [r.response_ms for r in completed]
        services = [r.service_ms for r in completed]
        count = len(completed)
        result = SsdDayResult(
            day=day,
            completed=count,
            workload_requests=workload.num_requests,
            workload_reads=workload.num_reads,
            mean_response_ms=sum(responses) / count if count else 0.0,
            mean_service_ms=sum(services) / count if count else 0.0,
            host_page_writes=host_writes,
            flash_page_writes=flash_writes,
            write_amplification=(
                flash_writes / host_writes if host_writes else 0.0
            ),
            gc_runs=stats.gc_runs - before.gc_runs,
            gc_page_moves=stats.gc_page_moves - before.gc_page_moves,
            cmt_hit_ratio=hits / lookups if lookups else 0.0,
            translation_reads=(
                stats.translation_reads - before.translation_reads
            ),
            translation_writes=(
                stats.translation_writes - before.translation_writes
            ),
            max_erase_count=self.driver.max_erase_count,
            mean_erase_count=self.driver.mean_erase_count,
        )
        if self.tracer is not NULL_TRACER:
            self.tracer.wear_level(
                self.driver.name,
                end_of_day,
                self.driver.max_erase_count,
                self.driver.mean_erase_count,
            )
        # End-of-day count aging, exactly as the disk analyzer fades its
        # reference counts between days.
        if self.driver.sketch is not None:
            self.driver.sketch.reset()
        simulation.close()
        return result

    def run_days(self, days: int) -> list[SsdDayResult]:
        return [self.run_day() for _ in range(days)]
