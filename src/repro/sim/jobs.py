"""Workload jobs: how requests enter the simulated driver.

Two arrival patterns cover the paper's workloads:

* **Batch jobs** model the file system's periodic update policy: when the
  buffer cache flushes, all dirty blocks are handed to the driver at once.
  This is what makes the write arrival pattern "very bursty" (Section 5.2)
  and is the source of the large waiting-time reductions.

* **Sequential jobs** model a client reading (or writing) through a file:
  each request is issued a small think time after the *previous one
  completes* (closed loop).  Closed-loop issue is what makes the file
  system's rotational interleaving observable — the next block of a file
  arrives under the head a predictable angle after the previous transfer —
  which Table 10 depends on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..driver.request import DiskRequest, Op


@dataclass(frozen=True, slots=True)
class Step:
    """One block access within a job."""

    logical_block: int
    op: Op
    think_ms: float = 0.0  # delay after the trigger (start or previous completion)

    def __post_init__(self) -> None:
        if self.think_ms < 0:
            raise ValueError("think_ms must be non-negative")


_job_ids = itertools.count()


@dataclass
class Job:
    """A group of related requests sharing an arrival discipline."""

    start_ms: float
    steps: list[Step]
    sequential: bool = True
    name: str | None = None
    job_id: int = field(default_factory=lambda: next(_job_ids))

    def __post_init__(self) -> None:
        if self.start_ms < 0:
            raise ValueError("start_ms must be non-negative")
        if not self.steps:
            raise ValueError("a job needs at least one step")

    @property
    def num_requests(self) -> int:
        return len(self.steps)

    def request_for(self, index: int, issue_ms: float) -> DiskRequest:
        step = self.steps[index]
        return DiskRequest(
            logical_block=step.logical_block,
            op=step.op,
            arrival_ms=issue_ms,
        )


def batch_job(
    start_ms: float,
    blocks: list[int],
    op: Op,
    name: str | None = None,
) -> Job:
    """All requests issued together at ``start_ms`` (a cache flush)."""
    steps = [Step(block, op) for block in blocks]
    return Job(start_ms=start_ms, steps=steps, sequential=False, name=name)


def sequential_job(
    start_ms: float,
    blocks: list[int],
    op: Op,
    think_ms: float = 2.0,
    name: str | None = None,
) -> Job:
    """Closed-loop run: each request issued ``think_ms`` after the last
    one completes (the first one ``think_ms`` after ``start_ms``)."""
    steps = [Step(block, op, think_ms=think_ms) for block in blocks]
    return Job(start_ms=start_ms, steps=steps, sequential=True, name=name)
