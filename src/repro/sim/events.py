"""A minimal discrete-event queue.

Events are ``(time_ms, kind, payload)``; ties are broken by insertion
order, which keeps the simulation deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence."""

    time_ms: float
    kind: str
    payload: Any = None


@dataclass
class EventQueue:
    """Time-ordered event heap with deterministic tie-breaking."""

    _heap: list[tuple[float, int, Event]] = field(default_factory=list)
    _seq: itertools.count = field(default_factory=itertools.count)
    now_ms: float = 0.0

    def push(self, time_ms: float, kind: str, payload: Any = None) -> Event:
        if time_ms < self.now_ms:
            raise ValueError(
                f"cannot schedule at {time_ms} before now ({self.now_ms})"
            )
        event = Event(time_ms=time_ms, kind=kind, payload=payload)
        heapq.heappush(self._heap, (time_ms, next(self._seq), event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        time_ms, __, event = heapq.heappop(self._heap)
        self.now_ms = time_ms
        return event

    def peek_time(self) -> float | None:
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
