"""Typed simulation events, the time-ordered queue, and the event bus.

Events are small frozen dataclasses — one class per kind of occurrence —
rather than ``(kind-string, payload)`` pairs.  The queue orders them by
``(time_ms, insertion sequence)``; ties are broken by insertion order,
which keeps the simulation deterministic for a fixed seed.  The
:class:`EventBus` dispatches a popped event to the handlers subscribed to
its exact type, so adding a new event kind means adding a dataclass and a
subscription, not editing a string-matching ``if`` chain.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True, eq=False, slots=True)
class SimEvent:
    """Base class of every typed simulation event."""


@dataclass(frozen=True, eq=False, slots=True)
class JobStart(SimEvent):
    """A workload job reaches its start time on ``device``."""

    job: Any
    device: str


@dataclass(frozen=True, eq=False, slots=True)
class StepIssue(SimEvent):
    """One step of a (closed-loop) job is issued to ``device``."""

    job: Any
    index: int
    device: str


@dataclass(frozen=True, eq=False, slots=True)
class DeviceComplete(SimEvent):
    """The in-flight disk operation on ``device`` finishes.

    ``epoch`` is the device's crash epoch at scheduling time: a crash
    bumps the device epoch, which invalidates any completion event still
    in the heap for an operation that no longer exists.
    """

    device: str
    epoch: int = 0


@dataclass(frozen=True, eq=False, slots=True)
class PeriodicFire(SimEvent):
    """A registered periodic task (user-level daemon) fires."""

    task: Any


@dataclass(frozen=True, eq=False, slots=True)
class DeviceIdle(SimEvent):
    """``device`` just drained: its last in-flight operation completed
    with nothing queued behind it.

    Only published when a subscriber asked for idle events
    (:meth:`~repro.sim.engine.Simulation.emit_idle_events`); runs without
    an online rearranger never see — or pay for — these.
    """

    device: str


@dataclass(frozen=True, eq=False, slots=True)
class IdleCheck(SimEvent):
    """A scheduled probe of whether a queue-empty gap on ``device`` stayed
    quiet.  ``token`` is the idle detector's activity sequence number at
    scheduling time: if any foreground work arrived in between, the
    token no longer matches and the gap is discarded."""

    device: str
    token: int


@dataclass(frozen=True, eq=False, slots=True)
class MachineCrash(SimEvent):
    """The (simulated) machine crashes: every device loses its volatile
    state and recovers with the paper's all-dirty protocol; lost requests
    are resubmitted by the (NFS) clients once recovery completes."""


@dataclass
class EventQueue:
    """Time-ordered event heap with deterministic tie-breaking.

    Heap entries are ``(time_ms, seq, event)``; ``seq`` is unique, so the
    event objects themselves are never compared.
    """

    _heap: list[tuple[float, int, SimEvent]] = field(default_factory=list)
    _seq: itertools.count = field(default_factory=itertools.count)
    now_ms: float = 0.0

    def push(self, time_ms: float, event: SimEvent) -> SimEvent:
        """Schedule ``event`` at ``time_ms`` (which must not be in the past)."""
        if not math.isfinite(time_ms):
            raise ValueError(f"cannot schedule at non-finite time {time_ms}")
        if time_ms < self.now_ms:
            raise ValueError(
                f"cannot schedule at {time_ms} before now ({self.now_ms})"
            )
        heapq.heappush(self._heap, (time_ms, next(self._seq), event))
        return event

    def pop(self) -> SimEvent:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        time_ms, __, event = heapq.heappop(self._heap)
        self.now_ms = time_ms
        return event

    def peek_time(self) -> float | None:
        if not self._heap:
            return None
        return self._heap[0][0]

    def pending(
        self,
        kinds: type[SimEvent] | tuple[type[SimEvent], ...] | None = None,
    ) -> Iterator[SimEvent]:
        """Iterate scheduled events in firing order, without popping.

        ``kinds`` filters by event class (a single type or a tuple, as for
        ``isinstance``); ``None`` yields everything.  This is the public
        way to ask "is work still scheduled?" — callers must not reach
        into the heap.
        """
        for __, __, event in sorted(
            self._heap, key=lambda entry: (entry[0], entry[1])
        ):
            if kinds is None or isinstance(event, kinds):
                yield event

    def any_pending(
        self, kinds: type[SimEvent] | tuple[type[SimEvent], ...]
    ) -> bool:
        """True if any scheduled event matches ``kinds``.

        Existence does not depend on firing order, so this scans the heap
        as-is instead of sorting it the way :meth:`pending` must.
        """
        for entry in self._heap:
            if isinstance(entry[2], kinds):
                return True
        return False

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class UnhandledEventError(RuntimeError):
    """An event was dispatched with no subscribed handler."""


class EventBus:
    """Exact-type event dispatch.

    Handlers subscribe per event class and are invoked in subscription
    order.  Dispatch is by ``type(event)`` — deliberately not by
    ``isinstance`` — so the routing stays a single dict lookup and there
    is exactly one obvious handler set per event kind.
    """

    def __init__(self) -> None:
        self._handlers: dict[type[SimEvent], list[Callable[[Any], None]]] = {}

    def subscribe(
        self,
        event_type: type[SimEvent],
        handler: Callable[[Any], None],
    ) -> None:
        self._handlers.setdefault(event_type, []).append(handler)

    def dispatch(self, event: SimEvent) -> None:
        handlers = self._handlers.get(type(event))
        if not handlers:
            raise UnhandledEventError(
                f"no handler subscribed for {type(event).__name__}"
            )
        for handler in handlers:
            handler(event)

    def handles(self, event_type: type[SimEvent]) -> bool:
        return bool(self._handlers.get(event_type))

    def clear(self) -> None:
        """Drop every subscription (dispatch raises afterwards).

        Handlers are typically bound methods of the objects that own the
        bus, so the subscription lists form reference cycles; clearing
        them lets a finished simulation free its devices by reference
        counting instead of waiting for a garbage-collection pass.
        """
        self._handlers.clear()
