"""Batch simulation kernel: absorb homogeneous event stretches at once.

The scalar engine (:mod:`repro.sim.engine`) dispatches one typed event at a
time: a ``StepIssue`` allocates a :class:`~repro.driver.request.DiskRequest`,
walks it through the driver's strategy routine, pushes a ``DeviceComplete``
onto the heap, pops it back off, and finally walks the completion path —
roughly a dozen object allocations and dynamic dispatches per simulated
request.  Most simulated time, however, is *homogeneous*: closed-loop
streams and batch flushes hitting a disk with no fault injector, no tracer
and no online migration.  Along such a stretch the entire future is
determined by pure arithmetic — seek-table gather, the rotational-position
recurrence, transfer time — so the engine does not need to materialize the
intermediate events at all.

:class:`BatchPlanner` implements that observation.  Built by
:meth:`Simulation.run` when ``fast=True``, it peeks at the head of the
event heap and, when the next event belongs to an eligible device, handles
it in a fused loop, committing *exactly* the state mutations the scalar
engine would have made: disk head and access counter, the SCAN direction
flag, track-buffer interval/holes/hit counters, block-table dirty bits,
the request-monitor table (with its capacity/suspension semantics) and
every per-scope histogram of the performance monitor.  Float operations
are performed in the scalar engine's exact order — the metrics digests are
bit-identical by construction, and the randomized equivalence suite in
``tests/test_vector.py`` holds the kernel to that.

Three implementation decisions carry the throughput:

* **Per-device contexts** (:class:`_DeviceContext`).  Typical stretches are
  short — a closed-loop session is a handful of requests — so re-binding
  label geometry, seek tables and eighteen histogram objects on every
  stretch would dominate.  The planner binds them once per device.

* **Resident mirrors.**  The hot mutable state (disk head, access counter,
  buffer interval, arrival chains, every histogram count/sum/max) lives in
  the context *between* stretches, not just within one.  It is loaded from
  the live objects on first use and written back only when the scalar
  engine is about to run: every declined event flushes the mirrors before
  the caller dispatches it, and :meth:`Simulation.run` flushes on exit.
  Mid-run monitor ``read_and_clear`` (the analyzer's periodic poll) swaps
  the table objects themselves; since that can only happen during a scalar
  dispatch — when the mirrors are already flushed — an identity check on
  reload catches exactly that.

* **Inlined statistics.**  The scalar completion path costs ten histogram
  method calls per request; the kernel instead mutates the histograms'
  bucket counters in place and folds counts/sums/maxima through the
  mirrors.  The accumulation order per histogram is the scalar order, so
  the float sums are bit-identical.

Fallback points — the planner declines (returns 0 absorbed events) and the
scalar engine dispatches normally — are:

* device ineligibility, checked once per run: a driver that is not exactly
  :class:`~repro.driver.driver.AdaptiveDiskDriver` (e.g. the FTL backend),
  an attached fault injector, a cylinder-map baseline, a non-SCAN queue,
  subclassed monitors, or an identity-gated tracer hook (any tracer other
  than ``NULL_TRACER`` on the driver or the simulation forces scalar
  dispatch so traced runs stay replay-identical);
* live interaction points: online-migration sinks or idle-window events
  enabled, rearrangement-epoch boundaries (a stale-epoch completion after
  a crash), and every event the kernel has no fused handler for —
  periodic analyzer polls, scheduled crashes, ineligible devices' traffic
  — which also bound every fused loop via the *horizon* (absorb a
  completion only while it lands strictly before the next scheduled event
  and at or before ``until_ms``).

Queue contention and track-buffer hits are handled inline rather than by
fallback: an arrival at a busy device is admitted straight onto the real
SCAN queue (so cylinder keys, sequence numbers and pop order are exactly
the scalar ones), a ``DeviceComplete`` at the head of the heap drains the
queue behind it in the fused loop, and the buffer's interval state is
mirrored and evolved with the same hit/fill/invalidate rules as
:class:`~repro.disk.trackbuffer.TrackBuffer`.

When a stretch must stop partway (horizon breach), the planner hands the
exact scalar state back: the in-flight request is materialized with its
service breakdown, queued batch remainders become real ``DiskRequest``
payloads in place — preserving each entry's ``(cylinder, seq)`` SCAN key —
and the pending ``DeviceComplete`` is scheduled.

Absorbed completions do **not** append to ``Simulation.completed`` (the
day-level wrappers read metrics from the monitor tables, never from the
request objects); ``Simulation.absorbed_completions`` counts them so
callers that size their result by ``len(run())`` (trace replay) stay
exact.  ``events_dispatched`` accounting matches the scalar engine:
2 events per absorbed sequential step (issue + completion), 1 + N for a
batch job start absorbing N completions, 1 per absorbed arrival or
drained completion.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..driver.driver import AdaptiveDiskDriver
from ..driver.monitor import (
    PerformanceMonitor,
    RequestMonitor,
    RequestRecord,
)
from ..driver.queue import ScanQueue
from ..driver.request import DiskRequest, Op
from ..obs.tracer import NULL_TRACER
from .events import DeviceComplete, JobStart, StepIssue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import DeviceState, Simulation

_INF = math.inf
READ_OP = Op.READ

#: Per-scope statistics mirrored into a mutable list (see ``_load_scope``
#: for the index layout).
_SCOPE_FIELDS = (
    "arrival_seek",
    "scheduled_seek",
    "service",
    "queueing",
    "rotation",
    "transfer",
)


class _DeviceContext:
    """Bound constants and resident mirrored state for one device."""

    __slots__ = (
        "state",
        "driver",
        "disk",
        "queue",
        "q_entries",
        "rm",
        "pm",
        "block_table",
        "reserved_of",
        "mark_dirty",
        # label geometry
        "vt",
        "per_cyl",
        "res_start",
        "res_count",
        # disk constants
        "seek_table",
        "ov",
        "bpc",
        "spb",
        "spt",
        "stt",
        "rott",
        "btm",
        "buf",
        "b_cap",
        "b_ht",
        "b_holes",
        # staleness sentinels
        "m_classes",
        "m_rm_table",
        # stats objects and bucket counters (all / read / write)
        "a_st",
        "r_st",
        "w_st",
        "a_b",
        "r_b",
        "w_b",
        # resident mirrors (valid while ``live``)
        "live",
        "head",
        "accs",
        "b_start",
        "b_end",
        "b_hits",
        "b_misses",
        "last_all",
        "last_read",
        "last_write",
        "am",
        "rmm",
        "wmm",
    )

    def __init__(self, state: "DeviceState") -> None:
        driver = state.driver
        self.state = state
        self.driver = driver
        disk = driver.disk
        self.disk = disk
        self.queue = driver.queue
        self.q_entries = driver.queue._entries
        self.rm = driver.request_monitor
        self.pm = driver.perf_monitor
        self.block_table = driver.block_table
        self.reserved_of = driver.block_table.reserved_of
        self.mark_dirty = driver.block_table.mark_dirty
        label = driver.label
        self.vt = label._virtual_total
        self.per_cyl = label._per_cyl
        self.res_start = label._reserved_start
        self.res_count = label._reserved_count
        self.seek_table = disk._seek_table
        self.ov = disk._overhead_ms
        self.bpc = disk._blocks_per_cylinder
        self.spb = disk._sectors_per_block
        self.spt = disk._sectors_per_track
        self.stt = disk._sector_time_ms
        self.rott = disk._rotation_time_ms
        self.btm = disk._block_transfer_ms
        buf = disk._track_buffer
        self.buf = buf
        self.b_cap = buf._capacity_blocks if buf is not None else 0
        self.b_ht = buf.host_transfer_ms if buf is not None else 0.0
        self.b_holes = buf._holes if buf is not None else None
        self.live = False
        self.refresh_tables()

    def refresh_tables(self) -> None:
        """Re-bind the monitor tables (swapped by ``read_and_clear``)."""
        pm = self.pm
        pairs = pm._scope_pairs
        self.m_classes = pm._classes
        self.m_rm_table = self.rm._table
        self.a_st = pairs[True][0][1]
        self.r_st = pairs[True][1][1]
        self.w_st = pairs[False][1][1]
        # Bucket counters, one tuple per scope, mutated in place by the
        # kernel: arrival_seek, scheduled_seek, service, queueing,
        # rotation, transfer.
        self.a_b = tuple(
            getattr(self.a_st, f).buckets for f in _SCOPE_FIELDS
        )
        self.r_b = tuple(
            getattr(self.r_st, f).buckets for f in _SCOPE_FIELDS
        )
        self.w_b = tuple(
            getattr(self.w_st, f).buckets for f in _SCOPE_FIELDS
        )

    def load(self) -> None:
        """Mirror the live mutable state into the context.

        Called on the first kernel entry after a scalar dispatch.  The
        monitor tables can only have been swapped *during* a scalar
        dispatch (the mirrors are flushed around every one), so the
        identity check here catches every mid-run ``read_and_clear``.
        """
        pm = self.pm
        if (
            self.m_classes is not pm._classes
            or self.m_rm_table is not self.rm._table
        ):
            self.refresh_tables()
        disk = self.disk
        self.head = disk.head_cylinder
        self.accs = disk.accesses
        buf = self.buf
        if buf is not None:
            self.b_start = buf._start
            self.b_end = buf._end
            self.b_hits = buf.hits
            self.b_misses = buf.misses
        last = pm._last_arrival_cylinder
        self.last_all = last["all"]
        self.last_read = last["read"]
        self.last_write = last["write"]
        self.am = _load_scope(self.a_st)
        self.rmm = _load_scope(self.r_st)
        self.wmm = _load_scope(self.w_st)
        self.live = True

    def flush(self) -> None:
        """Write the resident mirrors back to the live objects."""
        if not self.live:
            return
        disk = self.disk
        disk.head_cylinder = self.head
        disk.accesses = self.accs
        buf = self.buf
        if buf is not None:
            buf._start = self.b_start
            buf._end = self.b_end
            buf.hits = self.b_hits
            buf.misses = self.b_misses
        last = self.pm._last_arrival_cylinder
        last["all"] = self.last_all
        last["read"] = self.last_read
        last["write"] = self.last_write
        _store_scope(self.a_st, self.am)
        _store_scope(self.r_st, self.rmm)
        _store_scope(self.w_st, self.wmm)
        self.live = False


def _load_scope(st):
    """Mirror one scope's scalar counters into a mutable list."""
    a = st.arrival_seek
    s = st.scheduled_seek
    sv = st.service
    qu = st.queueing
    ro = st.rotation
    tr = st.transfer
    return [
        a.count,
        a.total,
        s.count,
        s.total,
        sv.count,
        sv.total_ms,
        sv.total_sq_ms,
        sv.max_ms,
        qu.count,
        qu.total_ms,
        qu.total_sq_ms,
        qu.max_ms,
        ro.count,
        ro.total_ms,
        ro.total_sq_ms,
        ro.max_ms,
        tr.count,
        tr.total_ms,
        tr.total_sq_ms,
        tr.max_ms,
        st.requests,
        st.buffer_hits,
    ]


def _store_scope(st, m) -> None:
    """Write a scope mirror produced by :func:`_load_scope` back."""
    a = st.arrival_seek
    s = st.scheduled_seek
    sv = st.service
    qu = st.queueing
    ro = st.rotation
    tr = st.transfer
    a.count = m[0]
    a.total = m[1]
    s.count = m[2]
    s.total = m[3]
    sv.count = m[4]
    sv.total_ms = m[5]
    sv.total_sq_ms = m[6]
    sv.max_ms = m[7]
    qu.count = m[8]
    qu.total_ms = m[9]
    qu.total_sq_ms = m[10]
    qu.max_ms = m[11]
    ro.count = m[12]
    ro.total_ms = m[13]
    ro.total_sq_ms = m[14]
    ro.max_ms = m[15]
    tr.count = m[16]
    tr.total_ms = m[17]
    tr.total_sq_ms = m[18]
    tr.max_ms = m[19]
    st.requests = m[20]
    st.buffer_hits = m[21]


class BatchPlanner:
    """Per-run fast path: scan the heap for absorbable stretches.

    One planner serves one :meth:`Simulation.run` call.  ``contexts``
    holds the devices whose configuration admits kernel absorption at
    all; everything dynamic (busy state, horizon, migration) is
    re-checked on every :meth:`absorb` call.
    """

    __slots__ = ("sim", "eligible", "contexts", "_ctx_list")

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.eligible: dict[str, DeviceState] = {}
        self.contexts: dict[str, _DeviceContext] = {}
        if sim.tracer is NULL_TRACER:
            for name, state in sim._devices.items():
                driver = state.driver
                if type(driver) is not AdaptiveDiskDriver:
                    continue  # FTL and other backends: scalar only
                if driver.faults is not None:
                    continue  # fault injection interposes on every access
                if driver.cylinder_map is not None:
                    continue  # cylinder-shuffling baseline remaps targets
                if driver.tracer is not NULL_TRACER:
                    continue  # identity-gated hooks force scalar fallback
                if type(driver.queue) is not ScanQueue:
                    continue  # queue-policy ablations stay on the spec path
                if type(driver.request_monitor) is not RequestMonitor:
                    continue
                if type(driver.perf_monitor) is not PerformanceMonitor:
                    continue
                self.eligible[name] = state
                self.contexts[name] = _DeviceContext(state)
        self._ctx_list = tuple(self.contexts.values())

    def flush(self) -> None:
        """Write every live mirror back (scalar code is about to run)."""
        for ctx in self._ctx_list:
            if ctx.live:
                ctx.flush()

    def _decline(self) -> int:
        self.flush()
        return 0

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def absorb(self, until_ms: float) -> int:
        """Try to absorb the head heap event in the kernel.

        Returns the number of scalar events the fused handling stands in
        for (0: not absorbable — the mirrors are flushed and the caller
        dispatches the event normally).  The caller guarantees the heap
        is non-empty and, when running with a deadline, that the head
        event is within it.
        """
        sim = self.sim
        events = sim.events
        event = events._heap[0][2]
        cls = event.__class__
        if cls is StepIssue:
            job = event.job
            if not job.sequential:  # pragma: no cover - defensive
                return self._decline()
            if sim._idle_events or sim._migration_sinks:
                return self._decline()
            ctx = self.contexts.get(event.device)
            if ctx is None:
                return self._decline()
            if ctx.driver._current is not None:
                # Contended arrival: admit it onto the real queue; the
                # drain path completes it later.
                if not ctx.live:
                    ctx.load()
                events.pop()
                return self._run_arrival(ctx, job, event.index, event.device)
            if ctx.q_entries:  # pragma: no cover - defensive
                return self._decline()
            if not ctx.live:
                ctx.load()
            events.pop()
            return self._run_sequential(
                ctx, job, event.index, event.device, until_ms
            )
        if cls is DeviceComplete:
            if sim._idle_events or sim._migration_sinks:
                return self._decline()
            ctx = self.contexts.get(event.device)
            if ctx is None:
                return self._decline()
            current = ctx.driver._current
            if (
                event.epoch != ctx.state.epoch
                or current is None
                or current.migration
            ):
                return self._decline()  # stale (crash) or sink-routed
            if not ctx.live:
                ctx.load()
            events.pop()
            return self._run_drain(ctx, current, until_ms)
        if cls is JobStart:
            job = event.job
            if job.sequential:
                # A sequential job start only schedules its first issue
                # (device-independent), so absorb it unconditionally.
                events.pop()
                events.push(
                    events.now_ms + job.steps[0].think_ms,
                    StepIssue(job, 0, event.device),
                )
                return 1
            if sim._idle_events or sim._migration_sinks:
                return self._decline()
            ctx = self.contexts.get(event.device)
            if ctx is None:
                return self._decline()
            if ctx.driver._current is not None:
                if not ctx.live:
                    ctx.load()
                events.pop()
                return self._run_arrival_batch(ctx, job, event)
            if ctx.q_entries:  # pragma: no cover - defensive
                return self._decline()
            if not ctx.live:
                ctx.load()
            events.pop()
            return self._run_batch(ctx, job, event, until_ms)
        return self._decline()

    # ------------------------------------------------------------------
    # Contended arrivals (busy device: admit, do not start)
    # ------------------------------------------------------------------

    def _run_arrival(self, ctx, job, index, device) -> int:
        """Absorb one ``StepIssue`` whose device is busy.

        The scalar path would map the block, record the arrival and push
        the request onto the queue (no access — the device is busy); the
        kernel does the same with a real :class:`DiskRequest` so the
        later drain pops exactly what the scalar engine would have.
        """
        sim = self.sim
        t = sim.events.now_ms
        step = job.steps[index]
        lb = step.logical_block
        if not 0 <= lb < ctx.vt:
            self.flush()
            sim._issue_step(job, index, device)  # raises BadAddressError
            return 1  # pragma: no cover - the call above always raises
        per_cyl = ctx.per_cyl
        v_cyl, v_idx = divmod(lb, per_cyl)
        if v_cyl >= ctx.res_start:
            v_cyl += ctx.res_count
        physical = v_cyl * per_cyl + v_idx
        reserved = ctx.reserved_of(physical)
        if reserved >= 0:
            target = reserved
            redirected = True
        else:
            target = physical
            redirected = False
        is_read = step.op is READ_OP
        request = DiskRequest(lb, step.op, t)
        request.physical_block = physical
        request.home_cylinder = physical // ctx.bpc
        request.target_block = target
        request.redirected = redirected
        rm = ctx.rm
        if rm.enabled:
            if len(ctx.m_rm_table) >= rm.capacity:
                rm.suspended_count += 1
            else:
                ctx.m_rm_table.append(RequestRecord(lb, 1, is_read, t))
                rm.recorded_count += 1
        self._note_arrival(ctx, request.home_cylinder, is_read)
        nk = index + 1
        if nk < len(job.steps):
            sim._waiting_jobs[request.request_id] = (job, nk, device)
        ctx.state.outstanding += 1
        ctx.queue.push(request, target // ctx.bpc)
        return 1

    def _run_arrival_batch(self, ctx, job, event) -> int:
        """Absorb a batch ``JobStart`` whose device is busy: admit all."""
        sim = self.sim
        steps = job.steps
        vt = ctx.vt
        for step in steps:
            if not 0 <= step.logical_block < vt:
                # Mid-loop failure semantics are the scalar handler's;
                # nothing was committed yet, so let it run (and raise)
                # exactly as fast=off would.
                self.flush()
                sim._on_job_start(event)
                return 1
        t = sim.events.now_ms
        per_cyl = ctx.per_cyl
        res_start = ctx.res_start
        res_count = ctx.res_count
        reserved_of = ctx.reserved_of
        bpc = ctx.bpc
        rm = ctx.rm
        rm_enabled = rm.enabled
        rm_table = ctx.m_rm_table
        rm_cap = rm.capacity
        qpush = ctx.queue.push
        note = self._note_arrival
        ctx.state.outstanding += len(steps)
        for step in steps:
            lb = step.logical_block
            v_cyl, v_idx = divmod(lb, per_cyl)
            if v_cyl >= res_start:
                v_cyl += res_count
            physical = v_cyl * per_cyl + v_idx
            reserved = reserved_of(physical)
            if reserved >= 0:
                target = reserved
                redirected = True
            else:
                target = physical
                redirected = False
            is_read = step.op is READ_OP
            request = DiskRequest(lb, step.op, t)
            request.physical_block = physical
            request.home_cylinder = physical // bpc
            request.target_block = target
            request.redirected = redirected
            if rm_enabled:
                if len(rm_table) >= rm_cap:
                    rm.suspended_count += 1
                else:
                    rm_table.append(RequestRecord(lb, 1, is_read, t))
                    rm.recorded_count += 1
            note(ctx, request.home_cylinder, is_read)
            qpush(request, target // bpc)
        return 1

    @staticmethod
    def _note_arrival(ctx, home, is_read) -> None:
        """Inline ``PerformanceMonitor.note_arrival`` on the mirrors."""
        am = ctx.am
        la = ctx.last_all
        if la is not None:
            d = home - la
            if d < 0:
                d = -d
            ctx.a_b[0][d] += 1
            am[0] += 1
            am[1] += d
        ctx.last_all = home
        if is_read:
            dm = ctx.rmm
            ld = ctx.last_read
            if ld is not None:
                d = home - ld
                if d < 0:
                    d = -d
                ctx.r_b[0][d] += 1
                dm[0] += 1
                dm[1] += d
            ctx.last_read = home
        else:
            dm = ctx.wmm
            ld = ctx.last_write
            if ld is not None:
                d = home - ld
                if d < 0:
                    d = -d
                ctx.w_b[0][d] += 1
                dm[0] += 1
                dm[1] += d
            ctx.last_write = home
        am[20] += 1
        dm[20] += 1

    # ------------------------------------------------------------------
    # Completion drain (busy device, materialized queue)
    # ------------------------------------------------------------------

    def _run_drain(self, ctx, current, until_ms) -> int:
        """Absorb a ``DeviceComplete`` and drain the queue behind it.

        The queue here holds real :class:`DiskRequest` objects — admitted
        by the arrival path under contention, or materialized by a
        breached batch — so arrivals were already recorded; only the
        completion side (scheduled-seek/service/queueing and the next
        ``_start_next``) is replayed inline, in the scalar engine's exact
        order: complete the in-flight request, then pop-and-access the
        next at the same clock, then push the finished request's
        follow-up issue.  A follow-up push can move the horizon, so it is
        re-read after every push; a completion landing exactly on the
        horizon hands back to the scalar engine, which preserves the heap
        order of same-time events.
        """
        sim = self.sim
        events = sim.events
        heap = events._heap
        push = events.push
        f = events.now_ms  # completion time of the in-flight request
        horizon = heap[0][0] if heap else _INF
        waiting_pop = sim._waiting_jobs.pop

        disk = ctx.disk
        seek_table = ctx.seek_table
        ov = ctx.ov
        bpc = ctx.bpc
        spb = ctx.spb
        spt = ctx.spt
        stt = ctx.stt
        rott = ctx.rott
        btm = ctx.btm
        head = ctx.head
        mark_dirty = ctx.mark_dirty
        buf = ctx.buf
        if buf is not None:
            b_start = ctx.b_start
            b_end = ctx.b_end
            b_holes = ctx.b_holes
            b_cap = ctx.b_cap
            b_ht = ctx.b_ht
            b_hits = ctx.b_hits
            b_misses = ctx.b_misses

        am = ctx.am
        rmm = ctx.rmm
        wmm = ctx.wmm
        __, a_ss_b, a_sv_b, a_qu_b, a_ro_b, a_tr_b = ctx.a_b
        READ = READ_OP
        q_entries = ctx.q_entries
        qpop = ctx.queue.pop
        driver = ctx.driver
        driver._current = None
        ctx.state.completion_scheduled = False

        # The entry request's breakdown was fixed when it was started;
        # read it back off the request object for the first iteration.
        req = current
        is_read = req.op is READ
        distance = req.seek_distance
        rotation_ms = req.rotation_ms
        transfer_ms = req.transfer_ms
        hit = req.buffer_hit
        start = req.submit_ms
        arrival = req.arrival_ms

        completions = 0
        accessed = 0
        breached = False
        while True:
            # Complete `req` at time f (inline note_completion).
            sv = f - start
            qv = start - arrival
            bsv = int(sv)
            bqv = int(qv)
            bro = int(rotation_ms)
            btr = int(transfer_ms)
            if is_read:
                dm = rmm
                __, d_ss_b, d_sv_b, d_qu_b, d_ro_b, d_tr_b = ctx.r_b
            else:
                dm = wmm
                __, d_ss_b, d_sv_b, d_qu_b, d_ro_b, d_tr_b = ctx.w_b
            a_ss_b[distance] += 1
            am[2] += 1
            am[3] += distance
            a_sv_b[bsv] += 1
            am[4] += 1
            am[5] += sv
            am[6] += sv * sv
            if sv > am[7]:
                am[7] = sv
            a_qu_b[bqv] += 1
            am[8] += 1
            am[9] += qv
            am[10] += qv * qv
            if qv > am[11]:
                am[11] = qv
            a_ro_b[bro] += 1
            am[12] += 1
            am[13] += rotation_ms
            am[14] += rotation_ms * rotation_ms
            if rotation_ms > am[15]:
                am[15] = rotation_ms
            a_tr_b[btr] += 1
            am[16] += 1
            am[17] += transfer_ms
            am[18] += transfer_ms * transfer_ms
            if transfer_ms > am[19]:
                am[19] = transfer_ms
            d_ss_b[distance] += 1
            dm[2] += 1
            dm[3] += distance
            d_sv_b[bsv] += 1
            dm[4] += 1
            dm[5] += sv
            dm[6] += sv * sv
            if sv > dm[7]:
                dm[7] = sv
            d_qu_b[bqv] += 1
            dm[8] += 1
            dm[9] += qv
            dm[10] += qv * qv
            if qv > dm[11]:
                dm[11] = qv
            d_ro_b[bro] += 1
            dm[12] += 1
            dm[13] += rotation_ms
            dm[14] += rotation_ms * rotation_ms
            if rotation_ms > dm[15]:
                dm[15] = rotation_ms
            d_tr_b[btr] += 1
            dm[16] += 1
            dm[17] += transfer_ms
            dm[18] += transfer_ms * transfer_ms
            if transfer_ms > dm[19]:
                dm[19] = transfer_ms
            if hit:
                am[21] += 1
                dm[21] += 1
            completions += 1
            completed_req = req
            completed_f = f

            # Start the next queued request at the same clock — scalar
            # order: the pop-and-access happens inside complete(),
            # *before* the finished request's follow-up issue is pushed.
            if q_entries:
                req = qpop(head)
                if req.migration:  # pragma: no cover - sinks are gated
                    nxt = None
                else:
                    nxt = req
                target = req.target_block
                is_read = req.op is READ
                tcyl, tidx = divmod(target, bpc)
                if (
                    is_read
                    and buf is not None
                    and b_start <= target < b_end
                    and target not in b_holes
                ):
                    hit = True
                    distance = 0
                    seek_ms = 0.0
                    rotation_ms = 0.0
                    transfer_ms = b_ht
                    svc = ov + 0.0
                    svc = svc + 0.0
                    svc = svc + b_ht
                    b_hits += 1
                else:
                    hit = False
                    distance = tcyl - head
                    if distance < 0:
                        distance = -distance
                    seek_ms = seek_table[distance]
                    arr = f + ov
                    arr = arr + seek_ms
                    start_sector = (tidx * spb) % spt
                    angle = (arr / stt) % spt
                    rotation_ms = ((start_sector - angle) % spt) * stt
                    if rotation_ms >= rott:
                        rotation_ms -= rott
                    transfer_ms = btm
                    svc = ov + seek_ms
                    svc = svc + rotation_ms
                    svc = svc + btm
                    if buf is not None:
                        if is_read:
                            b_misses += 1
                            stop = (target // bpc + 1) * bpc
                            b_start = target
                            e = target + b_cap
                            b_end = e if e < stop else stop
                            if b_holes:
                                b_holes.clear()
                        elif b_start <= target < b_end:
                            b_holes.add(target)
                    head = tcyl
                    if not is_read:
                        if req.redirected:
                            mark_dirty(req.physical_block)
                        if req.tag is not None:
                            disk.write_data(target, req.tag)
                accessed += 1
                start = f
                arrival = req.arrival_ms
                f = f + svc
            else:
                nxt = None
                req = None

            # Follow-up issue of the just-finished request (closed loop).
            fu = waiting_pop(completed_req.request_id, None)
            if fu is not None:
                job, nidx, dev = fu
                push(
                    completed_f + job.steps[nidx].think_ms,
                    StepIssue(job, nidx, dev),
                )
                horizon = heap[0][0]
            if req is None:
                break
            if nxt is None or f >= horizon or f > until_ms:
                # Hand the started request back as scalar in-flight state.
                req.submit_ms = start
                req.seek_distance = distance
                req.seek_ms = seek_ms
                req.rotation_ms = rotation_ms
                req.transfer_ms = transfer_ms
                req.buffer_hit = hit
                driver._current = req
                breached = True
                break

        ctx.head = head
        ctx.accs += accessed
        if buf is not None:
            ctx.b_start = b_start
            ctx.b_end = b_end
            ctx.b_hits = b_hits
            ctx.b_misses = b_misses
        events.now_ms = completed_f
        sim.absorbed_completions += completions
        ctx.state.outstanding -= completions
        if breached:
            sim._schedule_completion(ctx.state, f)
        return completions

    # ------------------------------------------------------------------
    # Sequential (closed-loop) stretch
    # ------------------------------------------------------------------

    def _run_sequential(self, ctx, job, index, device, until_ms) -> int:
        """Absorb a run of closed-loop steps on an idle device.

        Each step is an arrival immediately followed by an access (the
        queue is empty); the completion is absorbed while it lands
        strictly before the horizon.  When a completion breaches, the
        arrival and access have already been committed — exactly the
        scalar order — so the request is materialized in flight with its
        service breakdown and its ``DeviceComplete`` is scheduled; the
        drain path (or the scalar engine) picks it up from there.  When
        the *next arrival* would land on or past the horizon, it is
        handed back as the ``StepIssue`` the scalar engine would have
        pushed at the same clock.
        """
        sim = self.sim
        events = sim.events
        heap = events._heap
        t = events.now_ms
        horizon = heap[0][0] if heap else _INF

        steps = job.steps
        n_steps = len(steps)
        vt = ctx.vt
        per_cyl = ctx.per_cyl
        res_start = ctx.res_start
        res_count = ctx.res_count
        reserved_of = ctx.reserved_of
        mark_dirty = ctx.mark_dirty

        seek_table = ctx.seek_table
        ov = ctx.ov
        bpc = ctx.bpc
        spb = ctx.spb
        spt = ctx.spt
        stt = ctx.stt
        rott = ctx.rott
        btm = ctx.btm
        head = ctx.head
        buf = ctx.buf
        if buf is not None:
            b_start = ctx.b_start
            b_end = ctx.b_end
            b_holes = ctx.b_holes
            b_cap = ctx.b_cap
            b_ht = ctx.b_ht
            b_hits = ctx.b_hits
            b_misses = ctx.b_misses

        rm = ctx.rm
        rm_enabled = rm.enabled
        rm_table = ctx.m_rm_table
        rm_cap = rm.capacity
        last_all = ctx.last_all
        last_read = ctx.last_read
        last_write = ctx.last_write
        am = ctx.am
        rmm = ctx.rmm
        wmm = ctx.wmm
        a_as_b, a_ss_b, a_sv_b, a_qu_b, a_ro_b, a_tr_b = ctx.a_b
        READ = READ_OP
        queue = ctx.queue
        asc = queue.ascending

        completed = 0
        last_f = t
        t_next = t
        bad = False
        started = False
        k = index
        while True:
            step = steps[k]
            lb = step.logical_block
            if not 0 <= lb < vt:
                bad = True  # the scalar strategy raises identically
                break
            v_cyl, v_idx = divmod(lb, per_cyl)
            if v_cyl >= res_start:
                v_cyl += res_count
            physical = v_cyl * per_cyl + v_idx
            reserved = reserved_of(physical)
            if reserved >= 0:
                target = reserved
                redirected = True
            else:
                target = physical
                redirected = False
            is_read = step.op is READ
            tcyl, tidx = divmod(target, bpc)
            home = physical // bpc

            # Commit the arrival (monitor tables, arrival-seek chains) —
            # the scalar path records it whether or not the completion
            # lands inside the horizon.
            if rm_enabled:
                if len(rm_table) >= rm_cap:
                    rm.suspended_count += 1
                else:
                    rm_table.append(RequestRecord(lb, 1, is_read, t))
                    rm.recorded_count += 1
            if is_read:
                dm = rmm
                d_as_b, d_ss_b, d_sv_b, d_qu_b, d_ro_b, d_tr_b = ctx.r_b
                if last_all is not None:
                    d = home - last_all
                    if d < 0:
                        d = -d
                    a_as_b[d] += 1
                    am[0] += 1
                    am[1] += d
                last_all = home
                if last_read is not None:
                    d = home - last_read
                    if d < 0:
                        d = -d
                    d_as_b[d] += 1
                    dm[0] += 1
                    dm[1] += d
                last_read = home
            else:
                dm = wmm
                d_as_b, d_ss_b, d_sv_b, d_qu_b, d_ro_b, d_tr_b = ctx.w_b
                if last_all is not None:
                    d = home - last_all
                    if d < 0:
                        d = -d
                    a_as_b[d] += 1
                    am[0] += 1
                    am[1] += d
                last_all = home
                if last_write is not None:
                    d = home - last_write
                    if d < 0:
                        d = -d
                    d_as_b[d] += 1
                    dm[0] += 1
                    dm[1] += d
                last_write = home
            am[20] += 1
            dm[20] += 1

            # Commit the disk effects.  Even an uncontended request rides
            # the queue in the scalar engine (push, then an immediate
            # single-entry pop in ``_start_next``), and that pop evolves
            # the SCAN direction flag: an ascending sweep flips down when
            # the sole entry is below the head, a descending sweep flips
            # up when it is above.  The flag decides within-cylinder
            # tie-breaks for later contended batches, so mirror it here.
            if asc:
                if tcyl < head:
                    asc = False
            elif tcyl > head:
                asc = True
            if (
                is_read
                and buf is not None
                and b_start <= target < b_end
                and target not in b_holes
            ):
                hit = True
                distance = 0
                seek_ms = 0.0
                rotation_ms = 0.0
                transfer_ms = b_ht
                svc = ov + 0.0
                svc = svc + 0.0
                svc = svc + b_ht
                b_hits += 1
            else:
                hit = False
                distance = tcyl - head
                if distance < 0:
                    distance = -distance
                seek_ms = seek_table[distance]
                arr = t + ov
                arr = arr + seek_ms
                start_sector = (tidx * spb) % spt
                angle = (arr / stt) % spt
                rotation_ms = ((start_sector - angle) % spt) * stt
                if rotation_ms >= rott:
                    rotation_ms -= rott
                transfer_ms = btm
                svc = ov + seek_ms
                svc = svc + rotation_ms
                svc = svc + btm
                if buf is not None:
                    if is_read:
                        b_misses += 1
                        stop = (target // bpc + 1) * bpc
                        b_start = target
                        e = target + b_cap
                        b_end = e if e < stop else stop
                        if b_holes:
                            b_holes.clear()
                    elif b_start <= target < b_end:
                        b_holes.add(target)
                head = tcyl
                if not is_read and redirected:
                    mark_dirty(physical)
            f = t + svc

            if f >= horizon or f > until_ms:
                # The completion crosses the horizon: the request goes in
                # flight exactly as the scalar ``StepIssue`` handler would
                # have put it, and its completion is scheduled for normal
                # (or drain) dispatch.
                request = DiskRequest(lb, step.op, t)
                request.physical_block = physical
                request.home_cylinder = home
                request.target_block = target
                request.redirected = redirected
                request.submit_ms = t
                request.seek_distance = distance
                request.seek_ms = seek_ms
                request.rotation_ms = rotation_ms
                request.transfer_ms = transfer_ms
                request.buffer_hit = hit
                nk = k + 1
                if nk < n_steps:
                    sim._waiting_jobs[request.request_id] = (job, nk, device)
                ctx.driver._current = request
                ctx.state.outstanding += 1
                sim._schedule_completion(ctx.state, f)
                started = True
                break

            # Commit the completion statistics (both scopes, in the
            # scalar engine's value order; service is complete - submit).
            sv = f - t
            bsv = int(sv)
            bro = int(rotation_ms)
            btr = int(transfer_ms)
            a_ss_b[distance] += 1
            am[2] += 1
            am[3] += distance
            a_sv_b[bsv] += 1
            am[4] += 1
            am[5] += sv
            am[6] += sv * sv
            if sv > am[7]:
                am[7] = sv
            a_qu_b[0] += 1
            am[8] += 1
            a_ro_b[bro] += 1
            am[12] += 1
            am[13] += rotation_ms
            am[14] += rotation_ms * rotation_ms
            if rotation_ms > am[15]:
                am[15] = rotation_ms
            a_tr_b[btr] += 1
            am[16] += 1
            am[17] += transfer_ms
            am[18] += transfer_ms * transfer_ms
            if transfer_ms > am[19]:
                am[19] = transfer_ms
            d_ss_b[distance] += 1
            dm[2] += 1
            dm[3] += distance
            d_sv_b[bsv] += 1
            dm[4] += 1
            dm[5] += sv
            dm[6] += sv * sv
            if sv > dm[7]:
                dm[7] = sv
            d_qu_b[0] += 1
            dm[8] += 1
            d_ro_b[bro] += 1
            dm[12] += 1
            dm[13] += rotation_ms
            dm[14] += rotation_ms * rotation_ms
            if rotation_ms > dm[15]:
                dm[15] = rotation_ms
            d_tr_b[btr] += 1
            dm[16] += 1
            dm[17] += transfer_ms
            dm[18] += transfer_ms * transfer_ms
            if transfer_ms > dm[19]:
                dm[19] = transfer_ms
            if hit:
                am[21] += 1
                dm[21] += 1

            completed += 1
            last_f = f
            k += 1
            if k >= n_steps:
                k = -1
                break
            t_next = f + steps[k].think_ms
            if t_next >= horizon or t_next > until_ms:
                break  # hand the next arrival back as a StepIssue
            t = t_next

        # Store the mirrors back into the context (they stay resident;
        # ``flush`` writes them to the live objects when scalar code is
        # about to run).  The SCAN flag is written back eagerly because
        # the drain/batch paths pop the real queue, which consults it.
        queue.ascending = asc
        ctx.head = head
        ctx.accs += completed + (1 if started else 0)
        if buf is not None:
            ctx.b_start = b_start
            ctx.b_end = b_end
            ctx.b_hits = b_hits
            ctx.b_misses = b_misses
        ctx.last_all = last_all
        ctx.last_read = last_read
        ctx.last_write = last_write
        sim.absorbed_completions += completed
        if bad:
            events.now_ms = t
            self.flush()
            sim._issue_step(job, k, device)  # raises BadAddressError
            return 2 * completed + 1  # pragma: no cover - always raises
        if started:
            events.now_ms = t
            return 2 * completed + 1
        events.now_ms = last_f
        if k >= 0:
            events.push(t_next, StepIssue(job, k, device))
        return 2 * completed

    # ------------------------------------------------------------------
    # Batch (cache-flush) drain
    # ------------------------------------------------------------------

    def _run_batch(self, ctx, job, event, until_ms) -> int:
        sim = self.sim
        events = sim.events
        heap = events._heap
        t0 = events.now_ms
        horizon = heap[0][0] if heap else _INF

        steps = job.steps
        n = len(steps)
        vt = ctx.vt
        for step in steps:
            if not 0 <= step.logical_block < vt:
                # Mid-loop failure semantics are the scalar handler's;
                # nothing was committed yet, so just let it run (and
                # raise) exactly as fast=off would.
                self.flush()
                sim._on_job_start(event)
                return 1
        per_cyl = ctx.per_cyl
        res_start = ctx.res_start
        res_count = ctx.res_count
        reserved_of = ctx.reserved_of
        mark_dirty = ctx.mark_dirty

        seek_table = ctx.seek_table
        ov = ctx.ov
        bpc = ctx.bpc
        spb = ctx.spb
        spt = ctx.spt
        stt = ctx.stt
        rott = ctx.rott
        btm = ctx.btm
        head = ctx.head
        buf = ctx.buf
        if buf is not None:
            b_start = ctx.b_start
            b_end = ctx.b_end
            b_holes = ctx.b_holes
            b_cap = ctx.b_cap
            b_ht = ctx.b_ht
            b_hits = ctx.b_hits
            b_misses = ctx.b_misses

        rm = ctx.rm
        rm_enabled = rm.enabled
        rm_table = ctx.m_rm_table
        rm_cap = rm.capacity
        last_all = ctx.last_all
        last_read = ctx.last_read
        last_write = ctx.last_write
        am = ctx.am
        rmm = ctx.rmm
        wmm = ctx.wmm
        a_as_b, a_ss_b, a_sv_b, a_qu_b, a_ro_b, a_tr_b = ctx.a_b
        READ = READ_OP

        # Admission: all steps arrive at t0, in index order.  The first
        # request starts the idle disk immediately (push, then pop — the
        # single-entry pop is what evolves the SCAN direction flag
        # exactly as the scalar path does); the rest only queue, as
        # integer step indices riding the real ScanQueue so cylinder
        # keys, per-queue sequence numbers and pop order are identical.
        ctx.state.outstanding += n
        queue = ctx.queue
        qpush = queue.push
        phys_arr: list[int] = []
        targ_arr: list[int] = []
        red_arr: list[bool] = []
        read_arr: list[bool] = []
        for i in range(n):
            step = steps[i]
            lb = step.logical_block
            v_cyl, v_idx = divmod(lb, per_cyl)
            if v_cyl >= res_start:
                v_cyl += res_count
            physical = v_cyl * per_cyl + v_idx
            reserved = reserved_of(physical)
            if reserved >= 0:
                target = reserved
                redirected = True
            else:
                target = physical
                redirected = False
            is_read = step.op is READ
            home = physical // bpc
            if rm_enabled:
                if len(rm_table) >= rm_cap:
                    rm.suspended_count += 1
                else:
                    rm_table.append(RequestRecord(lb, 1, is_read, t0))
                    rm.recorded_count += 1
            if is_read:
                dm = rmm
                d_as_b = ctx.r_b[0]
                if last_all is not None:
                    d = home - last_all
                    if d < 0:
                        d = -d
                    a_as_b[d] += 1
                    am[0] += 1
                    am[1] += d
                last_all = home
                if last_read is not None:
                    d = home - last_read
                    if d < 0:
                        d = -d
                    d_as_b[d] += 1
                    dm[0] += 1
                    dm[1] += d
                last_read = home
            else:
                dm = wmm
                d_as_b = ctx.w_b[0]
                if last_all is not None:
                    d = home - last_all
                    if d < 0:
                        d = -d
                    a_as_b[d] += 1
                    am[0] += 1
                    am[1] += d
                last_all = home
                if last_write is not None:
                    d = home - last_write
                    if d < 0:
                        d = -d
                    d_as_b[d] += 1
                    dm[0] += 1
                    dm[1] += d
                last_write = home
            am[20] += 1
            dm[20] += 1
            qpush(i, target // bpc)
            if i == 0:
                queue.pop(head)  # returns index 0: it goes in flight
            phys_arr.append(physical)
            targ_arr.append(target)
            red_arr.append(redirected)
            read_arr.append(is_read)
        ctx.last_all = last_all
        ctx.last_read = last_read
        ctx.last_write = last_write

        # Serial drain at the evolving head position.  Each iteration
        # holds the in-flight request `cur` (already accessed, finishing
        # at `f`); its completion is absorbed only if it lands strictly
        # before the next scheduled event and within the deadline.
        q_entries = ctx.q_entries
        qpop = queue.pop
        cur = 0
        start = t0
        completions = 0
        breached = False
        while True:
            target = targ_arr[cur]
            is_read = read_arr[cur]
            tcyl, tidx = divmod(target, bpc)
            if (
                is_read
                and buf is not None
                and b_start <= target < b_end
                and target not in b_holes
            ):
                hit = True
                distance = 0
                seek_ms = 0.0
                rotation_ms = 0.0
                transfer_ms = b_ht
                svc = ov + 0.0
                svc = svc + 0.0
                svc = svc + b_ht
                b_hits += 1
            else:
                hit = False
                distance = tcyl - head
                if distance < 0:
                    distance = -distance
                seek_ms = seek_table[distance]
                arr = start + ov
                arr = arr + seek_ms
                start_sector = (tidx * spb) % spt
                angle = (arr / stt) % spt
                rotation_ms = ((start_sector - angle) % spt) * stt
                if rotation_ms >= rott:
                    rotation_ms -= rott
                transfer_ms = btm
                svc = ov + seek_ms
                svc = svc + rotation_ms
                svc = svc + btm
                if buf is not None:
                    if is_read:
                        b_misses += 1
                        stop = (target // bpc + 1) * bpc
                        b_start = target
                        e = target + b_cap
                        b_end = e if e < stop else stop
                        if b_holes:
                            b_holes.clear()
                    elif b_start <= target < b_end:
                        b_holes.add(target)
                head = tcyl
                if not is_read and red_arr[cur]:
                    mark_dirty(phys_arr[cur])
            f = start + svc

            if f >= horizon or f > until_ms:
                # Materialize the in-flight request and the queued
                # remainder; the scalar engine resumes from here.
                step = steps[cur]
                request = DiskRequest(step.logical_block, step.op, t0)
                request.physical_block = phys_arr[cur]
                request.target_block = target
                request.home_cylinder = phys_arr[cur] // bpc
                request.redirected = red_arr[cur]
                request.submit_ms = start
                request.seek_distance = distance
                request.seek_ms = seek_ms
                request.rotation_ms = rotation_ms
                request.transfer_ms = transfer_ms
                request.buffer_hit = hit
                ctx.driver._current = request
                for j, (cyl, seq, idx) in enumerate(q_entries):
                    qstep = steps[idx]
                    queued = DiskRequest(qstep.logical_block, qstep.op, t0)
                    queued.physical_block = phys_arr[idx]
                    queued.target_block = targ_arr[idx]
                    queued.home_cylinder = phys_arr[idx] // bpc
                    queued.redirected = red_arr[idx]
                    q_entries[j] = (cyl, seq, queued)
                breached = True
                break

            # Absorb the completion of `cur` at time f.
            sv = f - start
            qv = start - t0
            bsv = int(sv)
            bqv = int(qv)
            bro = int(rotation_ms)
            btr = int(transfer_ms)
            if is_read:
                dm = rmm
                __, d_ss_b, d_sv_b, d_qu_b, d_ro_b, d_tr_b = ctx.r_b
            else:
                dm = wmm
                __, d_ss_b, d_sv_b, d_qu_b, d_ro_b, d_tr_b = ctx.w_b
            a_ss_b[distance] += 1
            am[2] += 1
            am[3] += distance
            a_sv_b[bsv] += 1
            am[4] += 1
            am[5] += sv
            am[6] += sv * sv
            if sv > am[7]:
                am[7] = sv
            a_qu_b[bqv] += 1
            am[8] += 1
            am[9] += qv
            am[10] += qv * qv
            if qv > am[11]:
                am[11] = qv
            a_ro_b[bro] += 1
            am[12] += 1
            am[13] += rotation_ms
            am[14] += rotation_ms * rotation_ms
            if rotation_ms > am[15]:
                am[15] = rotation_ms
            a_tr_b[btr] += 1
            am[16] += 1
            am[17] += transfer_ms
            am[18] += transfer_ms * transfer_ms
            if transfer_ms > am[19]:
                am[19] = transfer_ms
            d_ss_b[distance] += 1
            dm[2] += 1
            dm[3] += distance
            d_sv_b[bsv] += 1
            dm[4] += 1
            dm[5] += sv
            dm[6] += sv * sv
            if sv > dm[7]:
                dm[7] = sv
            d_qu_b[bqv] += 1
            dm[8] += 1
            dm[9] += qv
            dm[10] += qv * qv
            if qv > dm[11]:
                dm[11] = qv
            d_ro_b[bro] += 1
            dm[12] += 1
            dm[13] += rotation_ms
            dm[14] += rotation_ms * rotation_ms
            if rotation_ms > dm[15]:
                dm[15] = rotation_ms
            d_tr_b[btr] += 1
            dm[16] += 1
            dm[17] += transfer_ms
            dm[18] += transfer_ms * transfer_ms
            if transfer_ms > dm[19]:
                dm[19] = transfer_ms
            if hit:
                am[21] += 1
                dm[21] += 1
            completions += 1
            if not q_entries:
                break
            cur = qpop(head)
            start = f

        ctx.head = head
        ctx.accs += completions + (1 if breached else 0)
        if buf is not None:
            ctx.b_start = b_start
            ctx.b_end = b_end
            ctx.b_hits = b_hits
            ctx.b_misses = b_misses
        if completions:
            # The clock is the time of the last dispatched (absorbed)
            # completion: `start` carries it while a later request is in
            # flight; on a full drain it is the final `f` itself.
            events.now_ms = start if breached else f
            sim.absorbed_completions += completions
            ctx.state.outstanding -= completions
        if breached:
            # `f` crossed the horizon: the in-flight request completes
            # under scalar dispatch.
            sim._schedule_completion(ctx.state, f)
        return 1 + completions
