"""Several file systems sharing one adaptive disk.

Section 4.1.1: "A disk may have several partitions and consequently
several file systems on it.  However, only a single reserved region will
be implemented by the driver, and blocks from any of the file systems may
be copied there."  This module runs that configuration: multiple
workload generators, one per partition, feeding a single driver whose
analyzer/arranger operate on the merged request stream — so the hot block
list competes across file systems, exactly as on the paper's server when
it hosted both the *system* and *users* data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.analyzer import ReferenceStreamAnalyzer
from ..core.arranger import BlockArranger
from ..core.controller import RearrangementController
from ..core.placement import make_policy
from ..disk.disk import Disk
from ..disk.label import DiskLabel, Partition
from ..disk.models import disk_model
from ..driver.driver import AdaptiveDiskDriver
from ..driver.ioctl import IoctlInterface
from ..driver.queue import make_queue
from ..stats.metrics import DayMetrics
from ..workload.generator import WorkloadGenerator
from ..workload.profiles import WorkloadProfile
from .engine import Simulation


@dataclass(frozen=True)
class FileSystemSpec:
    """One file system to host: a profile and a share of the disk."""

    profile: WorkloadProfile
    fraction: float  # share of the virtual disk given to its partition
    seed: int = 1993

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")


@dataclass
class MultiFSDayResult:
    """One day's metrics, overall and attributed per file system."""

    metrics: DayMetrics
    per_fs_requests: dict[str, int]
    rearranged_blocks: int
    rearranged_per_fs: dict[str, int] = field(default_factory=dict)


class MultiFSExperiment:
    """One disk, one reserved area, several file systems."""

    def __init__(
        self,
        specs: list[FileSystemSpec],
        disk: str = "toshiba",
        reserved_cylinders: int | None = None,
        num_rearranged: int | None = None,
        placement_policy: str = "organ-pipe",
        queue_policy: str = "scan",
    ) -> None:
        if not specs:
            raise ValueError("need at least one file system")
        if sum(spec.fraction for spec in specs) > 1.0 + 1e-9:
            raise ValueError("partition fractions exceed the disk")
        self.model = disk_model(disk)
        from .experiment import PAPER_REARRANGED_BLOCKS, PAPER_RESERVED_CYLINDERS

        reserved = (
            reserved_cylinders
            if reserved_cylinders is not None
            else PAPER_RESERVED_CYLINDERS[disk]
        )
        self.num_rearranged = (
            num_rearranged
            if num_rearranged is not None
            else PAPER_REARRANGED_BLOCKS[disk]
        )
        self.label = DiskLabel(self.model.geometry, reserved_cylinders=reserved)
        self.disk = Disk(self.model)
        self.driver = AdaptiveDiskDriver(
            disk=self.disk, label=self.label, queue=make_queue(queue_policy)
        )
        self.ioctl = IoctlInterface(self.driver)
        self.controller = RearrangementController(
            ioctl=self.ioctl,
            analyzer=ReferenceStreamAnalyzer(),
            arranger=BlockArranger(
                self.ioctl, policy=make_policy(placement_policy)
            ),
        )

        total = self.label.virtual_total_blocks
        self.partitions: list[Partition] = []
        self.generators: list[WorkloadGenerator] = []
        for index, spec in enumerate(specs):
            size = int(total * spec.fraction)
            partition = self.label.add_partition(
                f"fs{index}-{spec.profile.name}", size
            )
            self.partitions.append(partition)
            self.generators.append(
                WorkloadGenerator(
                    spec.profile,
                    partition,
                    self.model.geometry.blocks_per_cylinder,
                    seed=spec.seed,
                )
            )
        self._day = 0

    # ------------------------------------------------------------------

    def _partition_of(self, logical_block: int) -> Partition | None:
        for partition in self.partitions:
            if partition.contains(logical_block):
                return partition
        return None

    def run_day(
        self, rearranged: bool, rearrange_tomorrow: bool
    ) -> MultiFSDayResult:
        """One day: merge every file system's jobs on the shared disk."""
        day = self._day
        self._day += 1

        per_fs_requests: dict[str, int] = {}
        simulation = Simulation(self.driver)
        self.controller.attach_to(simulation)
        for partition, generator in zip(self.partitions, self.generators):
            workload = generator.generate_day()
            per_fs_requests[partition.name] = workload.num_requests
            simulation.add_jobs(workload.jobs)
        simulation.run()

        metrics = DayMetrics.from_tables(
            self.ioctl.read_stats(),
            self.model.seek,
            day=day,
            rearranged=rearranged,
        )
        blocks_in_table = len(self.driver.block_table)
        rearranged_per_fs: dict[str, int] = {}
        for entry in self.driver.block_table.entries():
            logical = self.label.physical_to_virtual_block(
                entry.original_block
            )
            partition = self._partition_of(logical)
            if partition is not None:
                rearranged_per_fs[partition.name] = (
                    rearranged_per_fs.get(partition.name, 0) + 1
                )

        self.controller.end_of_day(
            now_ms=simulation.now_ms,
            rearrange_tomorrow=rearrange_tomorrow,
            num_blocks=self.num_rearranged,
        )
        return MultiFSDayResult(
            metrics=metrics,
            per_fs_requests=per_fs_requests,
            rearranged_blocks=blocks_in_table,
            rearranged_per_fs=rearranged_per_fs,
        )
