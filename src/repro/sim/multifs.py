"""Shared-media configurations: several file systems, several disks.

Two configurations from the paper's measured server live here:

* :class:`MultiFSExperiment` — Section 4.1.1: "A disk may have several
  partitions and consequently several file systems on it.  However, only
  a single reserved region will be implemented by the driver, and blocks
  from any of the file systems may be copied there."  Multiple workload
  generators, one per partition, feed a single driver whose
  analyzer/arranger operate on the merged request stream — so the hot
  block list competes across file systems.

* :class:`MultiDiskExperiment` — the measured system itself ran *two*
  disks (the Toshiba MK156F *system* disk and the Fujitsu M2266 *users*
  disk) behind one modified driver.  Here each physical disk gets its own
  adaptive driver, analyzer and arranger, and a single
  :class:`~repro.sim.engine.Simulation` clocks all of them concurrently,
  producing per-device metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._compat import removed_alias, removed_name
from ..core.analyzer import ReferenceStreamAnalyzer
from ..core.arranger import BlockArranger
from ..core.controller import RearrangementController
from ..core.placement import make_policy
from ..disk.disk import Disk
from ..disk.label import DiskLabel, Partition
from ..disk.models import DiskModel, disk_model
from ..driver.driver import AdaptiveDiskDriver
from ..driver.ioctl import IoctlInterface
from ..driver.queue import make_queue
from ..obs.tracer import NULL_TRACER, Tracer
from ..policy import RearrangementPolicy, resolve_policy
from ..stats.metrics import DayMetrics
from ..workload.generator import WorkloadGenerator
from ..workload.profiles import WorkloadProfile, profile_for_disk
from ..workload.tenancy import SharedHotSet
from .engine import Simulation


@dataclass(frozen=True)
class FileSystemSpec:
    """One file system to host: a profile and a share of the disk."""

    profile: WorkloadProfile
    fraction: float  # share of the virtual disk given to its partition
    seed: int = 1993

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")


@dataclass
class MultiFSDayResult:
    """One day's metrics, overall and attributed per file system."""

    metrics: DayMetrics
    per_fs_requests: dict[str, int]
    rearranged_blocks: int
    rearranged_per_fs: dict[str, int] = field(default_factory=dict)


class MultiFSExperiment:
    """One disk, one reserved area, several file systems."""

    @removed_alias(num_rearranged="num_blocks")
    def __init__(
        self,
        specs: list[FileSystemSpec],
        disk: str = "toshiba",
        reserved_cylinders: int | None = None,
        num_blocks: int | None = None,
        placement_policy: str = "organ-pipe",
        queue_policy: str = "scan",
        tracer: Tracer = NULL_TRACER,
        fast: bool = True,
    ) -> None:
        self.tracer = tracer
        self.fast = fast
        if not specs:
            raise ValueError("need at least one file system")
        if sum(spec.fraction for spec in specs) > 1.0 + 1e-9:
            raise ValueError("partition fractions exceed the disk")
        self.model = disk_model(disk)
        from .experiment import PAPER_REARRANGED_BLOCKS, PAPER_RESERVED_CYLINDERS

        reserved = (
            reserved_cylinders
            if reserved_cylinders is not None
            else PAPER_RESERVED_CYLINDERS[disk]
        )
        self.num_blocks = (
            num_blocks
            if num_blocks is not None
            else PAPER_REARRANGED_BLOCKS[disk]
        )
        self.label = DiskLabel(self.model.geometry, reserved_cylinders=reserved)
        self.disk = Disk(self.model)
        self.driver = AdaptiveDiskDriver(
            disk=self.disk, label=self.label, queue=make_queue(queue_policy)
        )
        self.ioctl = IoctlInterface(self.driver)
        self.controller = RearrangementController(
            ioctl=self.ioctl,
            analyzer=ReferenceStreamAnalyzer(),
            arranger=BlockArranger(
                self.ioctl, policy=make_policy(placement_policy)
            ),
        )

        total = self.label.virtual_total_blocks
        self.partitions: list[Partition] = []
        self.generators: list[WorkloadGenerator] = []
        for index, spec in enumerate(specs):
            size = int(total * spec.fraction)
            partition = self.label.add_partition(
                f"fs{index}-{spec.profile.name}", size
            )
            self.partitions.append(partition)
            self.generators.append(
                WorkloadGenerator(
                    spec.profile,
                    partition,
                    self.model.geometry.blocks_per_cylinder,
                    seed=spec.seed,
                )
            )
        self._day = 0

    # ------------------------------------------------------------------

    def _partition_of(self, logical_block: int) -> Partition | None:
        for partition in self.partitions:
            if partition.contains(logical_block):
                return partition
        return None

    @property
    def num_rearranged(self) -> int:
        raise removed_name(
            "MultiFSExperiment.num_rearranged", "MultiFSExperiment.num_blocks"
        )

    def run_day(
        self, rearranged: bool, rearrange_tomorrow: bool
    ) -> MultiFSDayResult:
        """One day: merge every file system's jobs on the shared disk."""
        day = self._day
        self._day += 1

        per_fs_requests: dict[str, int] = {}
        simulation = Simulation(
            self.driver, tracer=self.tracer, fast=self.fast
        )
        self.controller.attach_to(simulation)
        for partition, generator in zip(self.partitions, self.generators):
            workload = generator.generate_day()
            per_fs_requests[partition.name] = workload.num_requests
            simulation.add_jobs(workload.jobs)
        simulation.run()

        metrics = DayMetrics.from_tables(
            self.ioctl.read_stats(),
            self.model.seek,
            day=day,
            rearranged=rearranged,
        )
        blocks_in_table = len(self.driver.block_table)
        rearranged_per_fs: dict[str, int] = {}
        for entry in self.driver.block_table.entries():
            logical = self.label.physical_to_virtual_block(
                entry.original_block
            )
            partition = self._partition_of(logical)
            if partition is not None:
                rearranged_per_fs[partition.name] = (
                    rearranged_per_fs.get(partition.name, 0) + 1
                )

        self.controller.end_of_day(
            now_ms=simulation.now_ms,
            rearrange_tomorrow=rearrange_tomorrow,
            num_blocks=self.num_blocks,
        )
        simulation.close()
        return MultiFSDayResult(
            metrics=metrics,
            per_fs_requests=per_fs_requests,
            rearranged_blocks=blocks_in_table,
            rearranged_per_fs=rearranged_per_fs,
        )


# ----------------------------------------------------------------------
# Several physical disks behind one engine
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DiskSpec:
    """One physical disk in a multi-device simulation."""

    disk: str  # "toshiba", "fujitsu", or "modern"
    profile: WorkloadProfile
    name: str | None = None  # device name; default "<model><index>"
    seed: int = 1993
    reserved_cylinders: int | None = None  # default: the paper's choice
    num_blocks: int | None = None  # rearranged nightly; default: paper
    placement_policy: str = "organ-pipe"
    queue_policy: str = "scan"
    counter: str = "exact"
    """Analyzer counter strategy (``"exact"`` or ``"spacesaving"``); the
    fleet runner uses the bounded sketch so per-device analyzer state does
    not scale with the multi-million-block device size."""
    analyzer_capacity: int | None = None
    """Sketch size for ``counter="spacesaving"``; default is four times
    the nightly rearrangement count, as in
    :meth:`~repro.sim.experiment.ExperimentConfig.resolved_analyzer_capacity`."""
    shared_hot: SharedHotSet | None = None
    """Fleet-wide shared hot content overlaid on the device's private
    popularity draw (see :class:`repro.workload.tenancy.SharedHotSet`)."""
    policy: RearrangementPolicy | str | None = None
    """Rearrangement policy for this device (instance or shorthand);
    ``None`` keeps the nightly cycle."""

    @property
    def num_rearranged(self) -> int | None:
        raise removed_name("DiskSpec.num_rearranged", "DiskSpec.num_blocks")


DiskSpec.__init__ = removed_alias(num_rearranged="num_blocks")(
    DiskSpec.__init__
)


@dataclass
class _DiskRig:
    """Everything assembled around one physical disk."""

    name: str
    model: DiskModel
    driver: AdaptiveDiskDriver
    ioctl: IoctlInterface
    controller: RearrangementController
    generator: WorkloadGenerator
    num_blocks: int


@dataclass
class MultiDiskDayResult:
    """One day of a multi-disk run, attributed per device."""

    per_device: dict[str, DayMetrics]
    per_device_requests: dict[str, int]
    rearranged_blocks: dict[str, int]

    @property
    def total_requests(self) -> int:
        return sum(self.per_device_requests.values())


class MultiDiskExperiment:
    """N adaptive disks clocked concurrently by one simulation engine.

    Each spec builds an independent disk + driver + analyzer/arranger
    stack (its own reserved area, its own nightly cycle), mirroring the
    paper's two-disk server.  A single event loop interleaves their
    completions; a single tracer, if given, observes every device.
    """

    def __init__(
        self,
        specs: list[DiskSpec],
        tracer: Tracer = NULL_TRACER,
        fast: bool = True,
    ) -> None:
        from .experiment import (
            MIN_SKETCH_CAPACITY,
            PAPER_REARRANGED_BLOCKS,
            PAPER_RESERVED_CYLINDERS,
        )

        if not specs:
            raise ValueError("need at least one disk")
        self.tracer = tracer
        self.fast = fast
        self.rigs: dict[str, _DiskRig] = {}
        for index, spec in enumerate(specs):
            name = spec.name or f"{spec.disk}{index}"
            if name in self.rigs:
                raise ValueError(f"duplicate device name {name!r}")
            model = disk_model(spec.disk)
            reserved = (
                spec.reserved_cylinders
                if spec.reserved_cylinders is not None
                else PAPER_RESERVED_CYLINDERS[spec.disk]
            )
            num_blocks = (
                spec.num_blocks
                if spec.num_blocks is not None
                else PAPER_REARRANGED_BLOCKS[spec.disk]
            )
            capacity = spec.analyzer_capacity
            if capacity is None and spec.counter == "spacesaving":
                capacity = max(MIN_SKETCH_CAPACITY, 4 * num_blocks)
            label = DiskLabel(model.geometry, reserved_cylinders=reserved)
            driver = AdaptiveDiskDriver(
                disk=Disk(model),
                label=label,
                queue=make_queue(spec.queue_policy),
                name=name,
            )
            ioctl = IoctlInterface(driver)
            controller = RearrangementController(
                ioctl=ioctl,
                analyzer=ReferenceStreamAnalyzer(
                    counter=spec.counter, capacity=capacity
                ),
                arranger=BlockArranger(
                    ioctl, policy=make_policy(spec.placement_policy)
                ),
                policy=resolve_policy(spec.policy),
            )
            profile = profile_for_disk(spec.profile, spec.disk)
            partition = label.add_partition(
                f"{name}-fs", label.virtual_total_blocks
            )
            generator = WorkloadGenerator(
                profile,
                partition,
                model.geometry.blocks_per_cylinder,
                seed=spec.seed,
                shared_hot=spec.shared_hot,
            )
            self.rigs[name] = _DiskRig(
                name=name,
                model=model,
                driver=driver,
                ioctl=ioctl,
                controller=controller,
                generator=generator,
                num_blocks=num_blocks,
            )
        self._day = 0
        self.events_dispatched = 0
        """Simulation events processed across every day run so far."""

    @property
    def device_names(self) -> list[str]:
        return list(self.rigs)

    def run_day(
        self, rearranged: bool, rearrange_tomorrow: bool
    ) -> MultiDiskDayResult:
        """One day: every disk serves its own workload on a shared clock."""
        day = self._day
        self._day += 1

        simulation = Simulation(
            drivers={name: rig.driver for name, rig in self.rigs.items()},
            tracer=self.tracer,
            fast=self.fast,
        )
        per_device_requests: dict[str, int] = {}
        for name, rig in self.rigs.items():
            rig.controller.attach_to(simulation)
            workload = rig.generator.generate_day()
            per_device_requests[name] = workload.num_requests
            simulation.add_jobs(workload.jobs, device=name)
        simulation.run()
        end_of_day = simulation.now_ms
        self.events_dispatched += simulation.events_dispatched

        per_device: dict[str, DayMetrics] = {}
        rearranged_blocks: dict[str, int] = {}
        for name, rig in self.rigs.items():
            per_device[name] = DayMetrics.from_tables(
                rig.ioctl.read_stats(),
                rig.model.seek,
                day=day,
                rearranged=rearranged,
            )
            rearranged_blocks[name] = len(rig.driver.block_table)
        for rig in self.rigs.values():
            rig.controller.end_of_day(
                now_ms=end_of_day,
                rearrange_tomorrow=rearrange_tomorrow,
                num_blocks=rig.num_blocks,
            )
        simulation.close()
        return MultiDiskDayResult(
            per_device=per_device,
            per_device_requests=per_device_requests,
            rearranged_blocks=rearranged_blocks,
        )
