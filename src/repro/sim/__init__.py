"""Discrete-event simulation: the event loop, workload jobs, and the
paper's day-by-day experiment campaigns."""

from .engine import Simulation
from .events import Event, EventQueue
from .experiment import (
    CampaignResult,
    DayResult,
    Experiment,
    ExperimentConfig,
    PAPER_REARRANGED_BLOCKS,
    PAPER_RESERVED_CYLINDERS,
    alternating_schedule,
    run_block_count_sweep,
    run_campaign,
    run_onoff_campaign,
    run_policy_campaign,
)
from .jobs import Job, Step, batch_job, sequential_job
from .multifs import FileSystemSpec, MultiFSDayResult, MultiFSExperiment

__all__ = [
    "CampaignResult",
    "DayResult",
    "Event",
    "EventQueue",
    "Experiment",
    "ExperimentConfig",
    "FileSystemSpec",
    "Job",
    "MultiFSDayResult",
    "MultiFSExperiment",
    "PAPER_REARRANGED_BLOCKS",
    "PAPER_RESERVED_CYLINDERS",
    "Simulation",
    "Step",
    "alternating_schedule",
    "batch_job",
    "run_block_count_sweep",
    "run_campaign",
    "run_onoff_campaign",
    "run_policy_campaign",
    "sequential_job",
]
