"""Discrete-event simulation: the typed event bus, workload jobs, the
multi-device engine, and the paper's day-by-day experiment campaigns.

The core (events, jobs, engine) is imported eagerly.  The campaign layer
(:mod:`~repro.sim.experiment`, :mod:`~repro.sim.multifs`) is resolved
lazily on first attribute access: it depends on :mod:`repro.workload`,
which itself builds :mod:`~repro.sim.jobs` objects — loading it here
eagerly would make ``import repro.workload`` circular.
"""

from .engine import DeviceState, Simulation
from .events import (
    DeviceComplete,
    EventBus,
    EventQueue,
    JobStart,
    MachineCrash,
    PeriodicFire,
    SimEvent,
    StepIssue,
    UnhandledEventError,
)
from .jobs import Job, Step, batch_job, sequential_job

_EXPERIMENT_NAMES = {
    "CampaignResult",
    "DayResult",
    "Experiment",
    "ExperimentConfig",
    "PAPER_REARRANGED_BLOCKS",
    "PAPER_RESERVED_CYLINDERS",
    "alternating_schedule",
    "run_block_count_sweep",
    "run_block_count_sweep_parallel",
    "run_campaign",
    "run_campaigns_parallel",
    "run_onoff_campaign",
    "run_policy_campaign",
}
_MULTIFS_NAMES = {
    "DiskSpec",
    "FileSystemSpec",
    "MultiDiskDayResult",
    "MultiDiskExperiment",
    "MultiFSDayResult",
    "MultiFSExperiment",
}
_SSD_NAMES = {
    "SsdConfig",
    "SsdDayResult",
    "SsdExperiment",
}


def __getattr__(name: str):
    if name in _EXPERIMENT_NAMES:
        from . import experiment

        return getattr(experiment, name)
    if name in _MULTIFS_NAMES:
        from . import multifs

        return getattr(multifs, name)
    if name in _SSD_NAMES:
        from . import ssd

        return getattr(ssd, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))


__all__ = [
    "CampaignResult",
    "DayResult",
    "DeviceComplete",
    "DeviceState",
    "DiskSpec",
    "EventBus",
    "EventQueue",
    "Experiment",
    "ExperimentConfig",
    "FileSystemSpec",
    "Job",
    "JobStart",
    "MachineCrash",
    "MultiDiskDayResult",
    "MultiDiskExperiment",
    "MultiFSDayResult",
    "MultiFSExperiment",
    "PAPER_REARRANGED_BLOCKS",
    "PAPER_RESERVED_CYLINDERS",
    "PeriodicFire",
    "SimEvent",
    "Simulation",
    "SsdConfig",
    "SsdDayResult",
    "SsdExperiment",
    "Step",
    "StepIssue",
    "UnhandledEventError",
    "alternating_schedule",
    "batch_job",
    "run_block_count_sweep",
    "run_block_count_sweep_parallel",
    "run_campaign",
    "run_campaigns_parallel",
    "run_onoff_campaign",
    "run_policy_campaign",
    "sequential_job",
]
