"""The discrete-event simulation engine.

:class:`Simulation` connects a workload (a set of :class:`~repro.sim.jobs.Job`
objects) to one or more device drivers conforming to
:class:`~repro.driver.protocol.DeviceDriver`.  It owns the clock, the typed
event heap and the event bus; each driver reports completion times for its
disk operations and the engine turns them into :class:`DeviceComplete`
events — one pending completion per device, with the in-flight bookkeeping
kept per device so N disks can be clocked concurrently by one loop.
Periodic callbacks model the user-level daemons (the reference stream
analyzer polls the driver's request table every two minutes in the paper's
experiments).

Instrumentation: the engine holds a :class:`~repro.obs.tracer.Tracer` and
installs it on every registered driver that does not already carry one, so
a single tracer observes request lifecycles across all devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Callable, Iterable, Mapping

from .._compat import removed_alias
from ..driver.protocol import DeviceDriver
from ..driver.request import DiskRequest
from ..obs.tracer import NULL_TRACER, Tracer
from .events import (
    DeviceComplete,
    DeviceIdle,
    EventBus,
    EventQueue,
    JobStart,
    MachineCrash,
    PeriodicFire,
    StepIssue,
)
from .jobs import Job

DEFAULT_DEVICE = "disk0"
"""Name under which a driver without one is registered."""

_WORK_EVENTS = (JobStart, StepIssue, DeviceComplete)
"""Event kinds that represent outstanding workload (periodic daemon fires
do not keep the simulation alive by themselves)."""

FAST_OVERRIDE: bool | None = None
"""Process-wide override for :class:`Simulation`'s ``fast`` flag.

``None`` (the default) leaves each constructor's ``fast`` argument in
charge.  Setting ``True``/``False`` forces every subsequently constructed
simulation into or out of the batch kernel — the hook behind the bench
CLI's ``--no-fast`` flag, which must flip the whole scenario suite
without threading a knob through every config type.  Best-effort: fleet
scenarios that fork worker *processes* re-import this module fresh, so
workers keep their configured ``fast`` value.
"""

_RUN_WALL_NS = 0


def reset_run_wall() -> None:
    """Zero the :func:`run_wall_s` accumulator."""
    global _RUN_WALL_NS
    _RUN_WALL_NS = 0


def run_wall_s() -> float:
    """Seconds spent inside :meth:`Simulation.run` since the last
    :func:`reset_run_wall`, summed across every simulation in this
    process.  This isolates simulator throughput from workload
    generation, analysis and reporting, which is what the benchmark
    suite's ``sim_events_per_sec`` reports.  Simulations running in
    *worker processes* (fleet mode with ``workers > 1``) are not seen by
    this process-local accumulator.
    """
    return _RUN_WALL_NS / 1e9


@dataclass
class _PeriodicTask:
    interval_ms: float
    callback: Callable[[float], None]
    name: str


@dataclass
class DeviceState:
    """Per-device bookkeeping: one entry per registered driver."""

    name: str
    driver: DeviceDriver
    outstanding: int = 0
    completion_scheduled: bool = False
    completed: list[DiskRequest] = field(default_factory=list)
    epoch: int = 0
    """Crash epoch: bumped when the device loses its in-flight state, so
    stale completion events already in the heap are discarded."""


class Simulation:
    """Event loop joining jobs, one or more drivers, and their disks.

    ``Simulation(driver)`` registers a single device (the common
    single-disk configuration); ``Simulation(drivers={...})`` or repeated
    :meth:`add_device` calls clock several disks from the same event heap.
    """

    def __init__(
        self,
        driver: DeviceDriver | None = None,
        *,
        drivers: Mapping[str, DeviceDriver] | None = None,
        events: EventQueue | None = None,
        tracer: Tracer = NULL_TRACER,
        fast: bool = False,
    ) -> None:
        if driver is not None and drivers:
            raise ValueError("pass either one driver or a drivers mapping")
        self.events = events if events is not None else EventQueue()
        self.bus = EventBus()
        self.tracer = tracer
        self.fast = fast if FAST_OVERRIDE is None else FAST_OVERRIDE
        """Enable the batch kernel (:mod:`repro.sim.vector`): homogeneous
        event stretches are absorbed in a fused loop with bit-identical
        metrics, falling back to scalar dispatch at interaction points."""
        self.completed: list[DiskRequest] = []
        self.events_dispatched = 0
        """Total events this simulation has processed (all :meth:`run` calls)."""
        self.absorbed_completions = 0
        """Completions absorbed by the batch kernel (all :meth:`run` calls).
        Absorbed requests are never materialized, so they do not appear in
        :attr:`completed`; callers sizing results by ``len(run())`` must add
        the delta of this counter across the call."""
        self._devices: dict[str, DeviceState] = {}
        self._waiting_jobs: dict[int, tuple[Job, int, str]] = {}
        self._idle_events = False
        self._migration_sinks: dict[
            str, Callable[[DiskRequest, float], None]
        ] = {}
        self.bus.subscribe(JobStart, self._on_job_start)
        self.bus.subscribe(StepIssue, self._on_step_issue)
        self.bus.subscribe(DeviceComplete, self._on_device_complete)
        self.bus.subscribe(PeriodicFire, self._on_periodic_fire)
        self.bus.subscribe(MachineCrash, self._on_machine_crash)
        if driver is not None:
            self.add_device(driver)
        for name, drv in (drivers or {}).items():
            self.add_device(drv, device=name)

    @property
    def now_ms(self) -> float:
        return self.events.now_ms

    def close(self) -> None:
        """Release the devices and bus subscriptions of a finished run.

        The bus holds bound methods of this simulation, which is a
        reference cycle keeping every registered driver (and its block
        tables) alive until a garbage-collection pass; day-level wrappers
        call this once they have read the day's results so peak memory
        tracks one day's stack, not gc timing.  A closed simulation can
        no longer dispatch events — callers that resume ``run(until_ms)``
        must close only after the final segment.
        """
        self.bus.clear()
        self._devices.clear()
        self._waiting_jobs.clear()
        self._migration_sinks.clear()
        # Rebind rather than clear: run() hands the completed list to
        # callers, who may still be reading it.
        self.completed = []

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------

    @removed_alias(name="device")
    def add_device(
        self, driver: DeviceDriver, device: str | None = None
    ) -> DeviceState:
        """Register a driver under ``device`` (default: the driver's own
        name).

        The registered name becomes the driver's ``name`` so that tracer
        events are labeled consistently, and the engine's tracer is
        installed on the driver unless one was set explicitly.
        """
        device = device or getattr(driver, "name", None) or DEFAULT_DEVICE
        if device in self._devices:
            raise ValueError(f"device {device!r} is already registered")
        if getattr(driver, "name", None) != device:
            driver.name = device
        if (
            self.tracer is not NULL_TRACER
            and getattr(driver, "tracer", None) is NULL_TRACER
        ):
            driver.tracer = self.tracer
        state = DeviceState(name=device, driver=driver)
        self._devices[device] = state
        return state

    @property
    def devices(self) -> dict[str, DeviceState]:
        """Registered devices by name (read-only by convention)."""
        return self._devices

    @property
    def driver(self) -> DeviceDriver:
        """The sole registered driver (single-device configurations)."""
        if len(self._devices) != 1:
            raise ValueError(
                f"simulation has {len(self._devices)} devices; "
                "use .devices[name].driver"
            )
        return next(iter(self._devices.values())).driver

    def completed_on(self, device: str) -> list[DiskRequest]:
        """Requests completed by ``device``, in completion order."""
        return self._devices[device].completed

    def _default_device(self) -> str:
        if len(self._devices) != 1:
            raise ValueError(
                "several devices are registered; pass device= explicitly"
            )
        return next(iter(self._devices))

    # ------------------------------------------------------------------
    # Workload definition
    # ------------------------------------------------------------------

    def add_job(self, job: Job, device: str | None = None) -> None:
        target = device if device is not None else self._default_device()
        if target not in self._devices:
            raise KeyError(f"unknown device {target!r}")
        self.events.push(job.start_ms, JobStart(job, target))

    def add_jobs(self, jobs: Iterable[Job], device: str | None = None) -> None:
        for job in jobs:
            self.add_job(job, device=device)

    def add_periodic(
        self,
        interval_ms: float,
        callback: Callable[[float], None],
        start_offset_ms: float | None = None,
        name: str = "periodic",
    ) -> None:
        """Run ``callback(now_ms)`` every ``interval_ms``.

        The first firing is scheduled relative to the clock *at
        registration time* — for a task registered mid-drain (e.g. from
        another callback) that is the time of the event currently being
        processed, never a half-advanced peek time.  Periodic tasks stop
        firing automatically once no workload remains, so they never keep
        the simulation alive by themselves.
        """
        if not math.isfinite(interval_ms):
            raise ValueError(
                f"interval_ms must be finite, got {interval_ms}"
            )
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if start_offset_ms is not None and not math.isfinite(start_offset_ms):
            raise ValueError(
                f"start_offset_ms must be finite, got {start_offset_ms}"
            )
        task = _PeriodicTask(interval_ms, callback, name)
        base = self.now_ms
        first = start_offset_ms if start_offset_ms is not None else interval_ms
        self.events.push(base + first, PeriodicFire(task))

    # ------------------------------------------------------------------
    # Online migration (repro.core.online)
    # ------------------------------------------------------------------

    def emit_idle_events(self) -> None:
        """Publish a :class:`DeviceIdle` event whenever a device drains.

        Off by default — without a subscriber the completion path never
        pushes idle events, so runs with no online rearranger process an
        identical event sequence.  The caller (an idle detector) must
        have subscribed a :class:`DeviceIdle` handler before the next
        device drains, or dispatch will raise.
        """
        self._idle_events = True

    def set_migration_sink(
        self, device: str, sink: Callable[[DiskRequest, float], None]
    ) -> None:
        """Deliver completed migration steps on ``device`` to ``sink``.

        Migration requests never enter the completed lists nor resume
        waiting jobs; the sink — ``sink(request, now_ms)`` — is the only
        place their completions surface.
        """
        if device not in self._devices:
            raise KeyError(f"unknown device {device!r}")
        self._migration_sinks[device] = sink

    def submit_migration(self, device: str, request: DiskRequest) -> None:
        """Queue one constituent I/O of an online block move *now*.

        The request must carry a pre-resolved ``target_block``; it joins
        the device's ordinary disk queue as a low-priority job (foreground
        requests preempt it through SCAN ordering) and its completion is
        routed to the device's migration sink.
        """
        state = self._devices[device]
        request.migration = True
        state.outstanding += 1
        completion = state.driver.enqueue_migration(request, self.now_ms)
        if completion is not None:
            self._schedule_completion(state, completion)

    def schedule_crash(self, at_ms: float) -> None:
        """Crash the whole machine at simulation time ``at_ms``.

        Every registered driver must support the crash protocol
        (``crash``/``recover``/``resubmit``, as
        :class:`~repro.driver.driver.AdaptiveDiskDriver` does): volatile
        state is lost, the block table is recovered from its reserved-area
        disk copy with every entry dirty, and the requests that were
        queued or in flight are resubmitted once recovery completes —
        the stateless-client (NFS) retry semantics of the paper's server.
        """
        self.events.push(at_ms, MachineCrash())

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def run(self, until_ms: float | None = None) -> list[DiskRequest]:
        """Process events until the workload drains (or ``until_ms``).

        Returns the list of requests completed during this call, in
        completion order (across all devices).
        """
        global _RUN_WALL_NS
        start_ns = perf_counter_ns()
        try:
            return self._run_loop(until_ms)
        finally:
            _RUN_WALL_NS += perf_counter_ns() - start_ns

    def _run_loop(self, until_ms: float | None) -> list[DiskRequest]:
        completed_before = len(self.completed)
        dispatched = 0
        events = self.events
        heap = events._heap
        pop = events.pop
        dispatch = self.bus.dispatch
        absorb = None
        if self.fast:
            from .vector import BatchPlanner

            planner = BatchPlanner(self)
            if planner.eligible:
                absorb = planner.absorb
        if until_ms is None:
            if absorb is not None:
                # Fast path: let the kernel absorb homogeneous stretches;
                # anything it declines dispatches through the scalar spec.
                # The kernel keeps monitor/disk mirrors resident between
                # stretches (it flushes them itself before declining), so
                # flush on every exit — normal or raising — before any
                # caller reads the live state.
                try:
                    while heap:
                        n = absorb(math.inf)
                        if n:
                            dispatched += n
                            continue
                        dispatch(pop())
                        dispatched += 1
                finally:
                    planner.flush()
            else:
                # Drain-everything loop: no deadline checks, locals prebound.
                while heap:
                    dispatch(pop())
                    dispatched += 1
        elif absorb is not None:
            try:
                while heap:
                    if heap[0][0] > until_ms:
                        break
                    n = absorb(until_ms)
                    if n:
                        dispatched += n
                        continue
                    dispatch(pop())
                    dispatched += 1
            finally:
                planner.flush()
        else:
            while heap:
                if heap[0][0] > until_ms:
                    break
                dispatch(pop())
                dispatched += 1
        self.events_dispatched += dispatched
        return self.completed[completed_before:]

    @property
    def has_pending_work(self) -> bool:
        """True while requests are in flight or jobs are still scheduled."""
        if any(state.outstanding > 0 for state in self._devices.values()):
            return True
        return self.events.any_pending(_WORK_EVENTS)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _on_job_start(self, event: JobStart) -> None:
        job = event.job
        if job.sequential:
            first_think = job.steps[0].think_ms
            self.events.push(
                self.now_ms + first_think, StepIssue(job, 0, event.device)
            )
        else:
            # Batch admission: all steps arrive at once, so resolve the
            # device and bulk-update the bookkeeping a single time.  Only
            # the first strategy call can start the idle disk (yielding a
            # completion); the rest just queue, exactly as the one-by-one
            # loop behaved.
            state = self._devices[event.device]
            now = self.now_ms
            strategy = state.driver.strategy
            request_for = job.request_for
            count = len(job.steps)
            state.outstanding += count
            for index in range(count):
                completion = strategy(request_for(index, now), now)
                if completion is not None:
                    self._schedule_completion(state, completion)

    def _on_step_issue(self, event: StepIssue) -> None:
        self._issue_step(event.job, event.index, event.device)

    def _issue_step(self, job: Job, index: int, device: str) -> None:
        state = self._devices[device]
        request = job.request_for(index, self.now_ms)
        state.outstanding += 1
        if job.sequential and index + 1 < len(job.steps):
            self._waiting_jobs[request.request_id] = (job, index + 1, device)
        completion = state.driver.strategy(request, self.now_ms)
        if completion is not None:
            self._schedule_completion(state, completion)

    def _on_device_complete(self, event: DeviceComplete) -> None:
        state = self._devices[event.device]
        if event.epoch != state.epoch:
            return  # completion of an operation lost in a crash
        state.completion_scheduled = False
        request, next_completion = state.driver.complete(self.now_ms)
        state.outstanding -= 1
        if request.migration:
            # Migration steps surface only through the sink (which may
            # immediately submit the next step of the move) — they are
            # not workload completions.
            if next_completion is not None:
                self._schedule_completion(state, next_completion)
            sink = self._migration_sinks.get(event.device)
            if sink is not None:
                sink(request, self.now_ms)
            if self._idle_events and not state.completion_scheduled:
                self.events.push(self.now_ms, DeviceIdle(state.name))
            return
        state.completed.append(request)
        self.completed.append(request)
        follow_up = self._waiting_jobs.pop(request.request_id, None)
        if follow_up is not None:
            job, next_index, device = follow_up
            think = job.steps[next_index].think_ms
            self.events.push(
                self.now_ms + think, StepIssue(job, next_index, device)
            )
        if next_completion is not None:
            self._schedule_completion(state, next_completion)
        elif self._idle_events:
            self.events.push(self.now_ms, DeviceIdle(state.name))

    def _schedule_completion(self, state: DeviceState, time_ms: float) -> None:
        if state.completion_scheduled:  # pragma: no cover - defensive
            raise RuntimeError(
                f"device {state.name!r} has two operations in flight"
            )
        self.events.push(time_ms, DeviceComplete(state.name, state.epoch))
        state.completion_scheduled = True

    def _on_machine_crash(self, event: MachineCrash) -> None:
        now = self.now_ms
        for state in self._devices.values():
            driver = state.driver
            if not hasattr(driver, "crash"):
                raise RuntimeError(
                    f"device {state.name!r} does not support the crash "
                    "protocol (crash/recover/resubmit)"
                )
            lost = driver.crash(now)
            state.epoch += 1
            state.completion_scheduled = False
            clock = driver.recover(now)
            for request in lost:
                if request.migration:
                    # An interrupted block move is abandoned, not
                    # retried: its table entry was never committed, so
                    # the home copy stays authoritative (the online
                    # arranger observes the crash and resets its state).
                    state.outstanding -= 1
                    continue
                completion = driver.resubmit(request, clock)
                if completion is not None:
                    self._schedule_completion(state, completion)

    def _on_periodic_fire(self, event: PeriodicFire) -> None:
        task = event.task
        task.callback(self.now_ms)
        if self.has_pending_work:
            self.events.push(self.now_ms + task.interval_ms, PeriodicFire(task))
