"""The discrete-event simulation engine.

:class:`Simulation` connects a workload (a set of :class:`~repro.sim.jobs.Job`
objects) to one :class:`~repro.driver.AdaptiveDiskDriver`.  It owns the
clock and the event heap; the driver reports completion times for disk
operations and the engine turns them into events.  Periodic callbacks model
the user-level daemons (the reference stream analyzer polls the driver's
request table every two minutes in the paper's experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..driver.driver import AdaptiveDiskDriver
from ..driver.request import DiskRequest
from .events import EventQueue
from .jobs import Job

JOB_START = "job-start"
STEP_ISSUE = "step-issue"
DISK_COMPLETE = "disk-complete"
PERIODIC = "periodic"


@dataclass
class _PeriodicTask:
    interval_ms: float
    callback: Callable[[float], None]
    name: str


@dataclass
class Simulation:
    """Event loop joining jobs, driver and disk."""

    driver: AdaptiveDiskDriver
    events: EventQueue = field(default_factory=EventQueue)
    completed: list[DiskRequest] = field(default_factory=list)
    _outstanding: int = 0
    _waiting_jobs: dict[int, tuple[Job, int]] = field(default_factory=dict)
    _completion_scheduled: bool = False

    @property
    def now_ms(self) -> float:
        return self.events.now_ms

    # ------------------------------------------------------------------
    # Workload definition
    # ------------------------------------------------------------------

    def add_job(self, job: Job) -> None:
        self.events.push(job.start_ms, JOB_START, job)

    def add_jobs(self, jobs: list[Job]) -> None:
        for job in jobs:
            self.add_job(job)

    def add_periodic(
        self,
        interval_ms: float,
        callback: Callable[[float], None],
        start_offset_ms: float | None = None,
        name: str = "periodic",
    ) -> None:
        """Run ``callback(now_ms)`` every ``interval_ms``.

        Periodic tasks stop firing automatically once no workload remains,
        so they never keep the simulation alive by themselves.
        """
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        task = _PeriodicTask(interval_ms, callback, name)
        first = start_offset_ms if start_offset_ms is not None else interval_ms
        self.events.push(self.now_ms + first, PERIODIC, task)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def run(self, until_ms: float | None = None) -> list[DiskRequest]:
        """Process events until the workload drains (or ``until_ms``).

        Returns the list of requests completed during this call, in
        completion order.
        """
        completed_before = len(self.completed)
        while self.events:
            next_time = self.events.peek_time()
            assert next_time is not None
            if until_ms is not None and next_time > until_ms:
                break
            event = self.events.pop()
            if event.kind == JOB_START:
                self._start_job(event.payload)
            elif event.kind == STEP_ISSUE:
                job, index = event.payload
                self._issue_step(job, index)
            elif event.kind == DISK_COMPLETE:
                self._complete_disk()
            elif event.kind == PERIODIC:
                self._run_periodic(event.payload)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {event.kind!r}")
        return self.completed[completed_before:]

    @property
    def has_pending_work(self) -> bool:
        """True while requests are in flight or jobs are still scheduled."""
        if self._outstanding > 0:
            return True
        work_kinds = (JOB_START, STEP_ISSUE, DISK_COMPLETE)
        return any(
            event.kind in work_kinds for __, __, event in self.events._heap
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _start_job(self, job: Job) -> None:
        if job.sequential:
            first_think = job.steps[0].think_ms
            self.events.push(
                self.now_ms + first_think, STEP_ISSUE, (job, 0)
            )
        else:
            for index in range(len(job.steps)):
                self._issue_step(job, index)

    def _issue_step(self, job: Job, index: int) -> None:
        request = job.request_for(index, self.now_ms)
        self._outstanding += 1
        if job.sequential and index + 1 < len(job.steps):
            self._waiting_jobs[request.request_id] = (job, index + 1)
        completion = self.driver.strategy(request, self.now_ms)
        if completion is not None:
            self._schedule_completion(completion)

    def _complete_disk(self) -> None:
        self._completion_scheduled = False
        request, next_completion = self.driver.complete(self.now_ms)
        self._outstanding -= 1
        self.completed.append(request)
        follow_up = self._waiting_jobs.pop(request.request_id, None)
        if follow_up is not None:
            job, next_index = follow_up
            think = job.steps[next_index].think_ms
            self.events.push(self.now_ms + think, STEP_ISSUE, (job, next_index))
        if next_completion is not None:
            self._schedule_completion(next_completion)

    def _schedule_completion(self, time_ms: float) -> None:
        if self._completion_scheduled:  # pragma: no cover - defensive
            raise RuntimeError("two disk operations in flight")
        self.events.push(time_ms, DISK_COMPLETE)
        self._completion_scheduled = True

    def _run_periodic(self, task: _PeriodicTask) -> None:
        task.callback(self.now_ms)
        if self.has_pending_work:
            self.events.push(self.now_ms + task.interval_ms, PERIODIC, task)
