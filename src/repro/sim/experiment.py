"""Experiment campaigns: the paper's measurement methodology (Section 5).

A campaign simulates consecutive measurement days on one disk + file
system.  Each day:

1. the day's workload is generated and run through the adaptive driver,
   with the reference stream analyzer polling the request table every two
   minutes;
2. the driver's performance tables are read and reduced to
   :class:`~repro.stats.metrics.DayMetrics`;
3. at the end of the day the nightly cycle runs: the reserved area is
   cleaned and — if the *next* day is an "on" day — repopulated from
   today's reference counts ("block reference counts measured during one
   day were used (at the end of the day) to rearrange blocks for the next
   day's requests", Section 5.1).

The module also provides the specific experiment shapes of the paper:
on/off alternation (Tables 2–6), the placement-policy comparison (Tables
7–10) and the rearranged-block-count sweep (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .._compat import removed_alias, removed_name
from ..parallel import fan_out, spawn_seeds
from ..parallel import resolve_workers as resolve_workers  # re-export
from ..core.analyzer import ReferenceStreamAnalyzer
from ..core.counters import COUNTER_STRATEGIES, DEFAULT_FADING
from ..core.arranger import BlockArranger
from ..core.controller import RearrangementController
from ..core.placement import make_policy
from ..disk.disk import Disk
from ..disk.label import DiskLabel
from ..disk.models import DiskModel, disk_model
from ..driver.driver import AdaptiveDiskDriver
from ..driver.ioctl import IoctlInterface
from ..driver.queue import make_queue
from ..faults.plan import FaultPlan
from ..obs.tracer import NULL_TRACER, Tracer
from ..policy import RearrangementPolicy, resolve_policy
from ..stats.metrics import DayMetrics
from ..workload.generator import DayWorkload, WorkloadGenerator
from ..workload.profiles import WorkloadProfile, profile_for_disk
from .engine import Simulation

PAPER_RESERVED_CYLINDERS = {"toshiba": 48, "fujitsu": 80, "modern": 64}
PAPER_REARRANGED_BLOCKS = {"toshiba": 1018, "fujitsu": 3500, "modern": 8000}

# Default Space-Saving sketch size: generously above the number of blocks
# rearranged nightly, so the top-num_blocks ranking is trustworthy (the
# sketch's error bound shrinks as capacity / distinct-blocks grows).
MIN_SKETCH_CAPACITY = 4096


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything that defines a campaign."""

    profile: WorkloadProfile
    disk: str = "toshiba"
    reserved_cylinders: int | None = None  # default: the paper's choice
    num_blocks: int | None = None  # blocks rearranged nightly; default: paper
    placement_policy: str = "organ-pipe"
    queue_policy: str = "scan"
    analyzer_capacity: int | None = None
    analyzer_heuristic: str = "space-saving"
    counter: str = "exact"
    """Analyzer counter strategy: ``"exact"`` (the paper's full per-block
    counts) or ``"spacesaving"`` (bounded top-k sketch with day-to-day
    count fading; see :mod:`repro.core.counters`)."""
    counter_fading: float | None = None
    """Day-to-day count-aging factor for the ``spacesaving`` counter;
    ``None`` uses the default (:data:`repro.core.counters.DEFAULT_FADING`).
    Ignored by the ``exact`` counter."""
    monitor_capacity: int = 65536
    seed: int = 1993
    reserved_center: bool = True  # False: reserved area at the disk edge
    faults: FaultPlan | None = None
    """Deterministic fault injection; ``None`` (or an empty plan) keeps
    the fault machinery entirely off the driver's hot path."""
    policy: RearrangementPolicy | str | None = None
    """*When* rearrangement runs: a :class:`~repro.policy
    .RearrangementPolicy` instance or shorthand (``"nightly"``,
    ``"online"``, ``"off"``).  ``None`` means the paper's nightly cycle."""
    fast: bool = True
    """Run each day through the batch simulation kernel
    (:mod:`repro.sim.vector`).  Metrics are bit-identical either way —
    the kernel falls back to the scalar engine at every interaction
    point — so this is purely a throughput knob, on by default and
    exposed as ``--no-fast`` on the bench CLI for A/B verification."""

    def __post_init__(self) -> None:
        if self.counter not in COUNTER_STRATEGIES:
            raise ValueError(
                f"unknown counter strategy {self.counter!r}; "
                f"known: {', '.join(COUNTER_STRATEGIES)}"
            )
        resolve_policy(self.policy)  # validate early; resolved per use

    def resolved_reserved_cylinders(self) -> int:
        if self.reserved_cylinders is not None:
            return self.reserved_cylinders
        return PAPER_RESERVED_CYLINDERS[self.disk]

    def resolved_num_blocks(self) -> int:
        if self.num_blocks is not None:
            return self.num_blocks
        return PAPER_REARRANGED_BLOCKS[self.disk]

    def resolved_policy(self) -> RearrangementPolicy:
        """The :attr:`policy` as a policy instance (``None`` → nightly)."""
        return resolve_policy(self.policy)

    def resolved_analyzer_capacity(self) -> int | None:
        """The analyzer's list/sketch size.

        The exact counter defaults to unbounded (the paper's setup); the
        ``spacesaving`` sketch needs a bound, defaulting to four times the
        nightly rearrangement count (at least ``MIN_SKETCH_CAPACITY``).
        """
        if self.analyzer_capacity is not None:
            return self.analyzer_capacity
        if self.counter == "spacesaving":
            return max(MIN_SKETCH_CAPACITY, 4 * self.resolved_num_blocks())
        return None

    def __getattr__(self, name: str):
        if name == "num_rearranged":
            raise removed_name(
                "ExperimentConfig.num_rearranged", "ExperimentConfig.num_blocks"
            )
        if name == "resolved_num_rearranged":
            raise removed_name(
                "ExperimentConfig.resolved_num_rearranged()",
                "ExperimentConfig.resolved_num_blocks()",
            )
        raise AttributeError(name)


ExperimentConfig.__init__ = removed_alias(num_rearranged="num_blocks")(
    ExperimentConfig.__init__
)


def make_partition(label: DiskLabel, profile: WorkloadProfile):
    """Lay out the file system's partition per the profile's band.

    ``"full"`` covers the whole virtual disk.  ``"center"`` is a home
    partition occupying the middle 40% of the virtual disk — the slice
    whose physical cylinders bracket the reserved area — with outer
    dummy partitions standing in for root and swap.

    Shared by the disk :class:`Experiment` and the SSD experiment
    (:mod:`repro.sim.ssd`): both must carve the identical partition from
    the identical virtual span so one workload stream drives both
    backends.
    """
    total = label.virtual_total_blocks
    if profile.partition_band == "center":
        per_cyl = label.geometry.blocks_per_cylinder
        # Start two cylinder groups below the hidden reserved area so
        # that a first-fit-growing file system surrounds it.
        assert label.reserved_start_cylinder is not None
        start_cyl = max(
            0,
            label.reserved_start_cylinder - 2 * profile.cylinders_per_group,
        )
        if start_cyl > 0:
            label.add_partition("root", start_cyl * per_cyl)
        return label.add_partition("home", total - start_cyl * per_cyl)
    return label.add_partition("fs0", total)


@dataclass
class DayResult:
    """Metrics plus workload context for one simulated day."""

    metrics: DayMetrics
    workload_requests: int
    workload_reads: int
    read_counts: dict[int, int] = field(repr=False, default_factory=dict)
    all_counts: dict[int, int] = field(repr=False, default_factory=dict)
    rearranged_blocks: int = 0


@dataclass
class CampaignResult:
    """All days of one campaign."""

    config: ExperimentConfig
    days: list[DayResult]

    def metrics(self) -> list[DayMetrics]:
        return [day.metrics for day in self.days]

    def on_days(self) -> list[DayResult]:
        return [day for day in self.days if day.metrics.rearranged]

    def off_days(self) -> list[DayResult]:
        return [day for day in self.days if not day.metrics.rearranged]


class Experiment:
    """One assembled disk + driver + workload, run day by day."""

    def __init__(
        self, config: ExperimentConfig, tracer: Tracer = NULL_TRACER
    ) -> None:
        self.config = config
        self.tracer = tracer
        self.model: DiskModel = disk_model(config.disk)
        geometry = self.model.geometry
        reserved = config.resolved_reserved_cylinders()
        start_cylinder = None
        if not config.reserved_center:
            start_cylinder = geometry.cylinders - reserved
        self.label = DiskLabel(
            geometry=geometry,
            reserved_cylinders=reserved,
            reserved_start_cylinder=start_cylinder,
        )
        profile = profile_for_disk(config.profile, config.disk)
        partition = self._make_partition(profile)
        self.disk = Disk(self.model)
        plan = config.faults
        if plan is not None and plan.is_empty:
            plan = None  # an empty plan must behave exactly like no plan
        self.driver = AdaptiveDiskDriver(
            disk=self.disk,
            label=self.label,
            queue=make_queue(config.queue_policy),
            faults=plan.injector() if plan is not None else None,
        )
        self.driver.request_monitor.capacity = config.monitor_capacity
        self.ioctl = IoctlInterface(self.driver)
        self.controller = RearrangementController(
            ioctl=self.ioctl,
            policy=config.resolved_policy(),
            analyzer=ReferenceStreamAnalyzer(
                capacity=config.resolved_analyzer_capacity(),
                heuristic=config.analyzer_heuristic,
                counter=config.counter,
                fading=(
                    config.counter_fading
                    if config.counter_fading is not None
                    else DEFAULT_FADING
                ),
            ),
            arranger=BlockArranger(
                self.ioctl, policy=make_policy(config.placement_policy)
            ),
            max_error_rate=(
                plan.degrade_threshold if plan is not None else None
            ),
            degrade_action=(
                plan.degrade_action if plan is not None else "clean"
            ),
        )
        self.generator = WorkloadGenerator(
            profile=profile,
            partition=partition,
            blocks_per_cylinder=geometry.blocks_per_cylinder,
            seed=config.seed,
        )
        self._day_index = 0
        self.events_dispatched = 0
        """Simulation events processed across every day run so far."""

    def _make_partition(self, profile: WorkloadProfile):
        return make_partition(self.label, profile)

    # ------------------------------------------------------------------
    # One day
    # ------------------------------------------------------------------

    def run_day(
        self,
        rearranged: bool,
        rearrange_tomorrow: bool,
        num_blocks_tomorrow: int | None = None,
        keep_arrangement: bool = False,
    ) -> DayResult:
        """Simulate one measurement day and run the nightly cycle.

        ``rearranged`` records whether blocks are currently in the reserved
        area (for labeling only — the driver state was prepared by
        yesterday's nightly cycle).  With ``keep_arrangement`` the nightly
        cycle is skipped entirely: the current arrangement stays in place
        and ages (used by the rearrangement-period ablation).
        """
        day = self._day_index
        self._day_index += 1
        workload: DayWorkload = self.generator.generate_day()

        simulation = Simulation(
            self.driver, tracer=self.tracer, fast=self.config.fast
        )
        self.controller.attach_to(simulation)
        simulation.add_jobs(workload.jobs)
        if self.driver.faults is not None:
            # Each day is a fresh Simulation starting at t=0, so timed
            # crashes are (day, offset) pairs claimed day by day.
            for offset in self.driver.faults.claim_crash_times(day):
                simulation.schedule_crash(offset)
        simulation.run()
        end_of_day = simulation.now_ms
        self.events_dispatched += simulation.events_dispatched

        tables = self.ioctl.read_stats()
        metrics = DayMetrics.from_tables(
            tables, self.model.seek, day=day, rearranged=rearranged
        )
        blocks_in_table = len(self.driver.block_table)
        blocks = (
            num_blocks_tomorrow
            if num_blocks_tomorrow is not None
            else self.config.resolved_num_blocks()
        )
        if keep_arrangement:
            self.controller.final_poll()
            self.controller.analyzer.reset()
        else:
            self.controller.end_of_day(
                now_ms=end_of_day,
                rearrange_tomorrow=rearrange_tomorrow,
                num_blocks=blocks,
            )
        # The bus subscriptions keep the day's Simulation (and through it
        # the driver stack) in a reference cycle; close it so long serial
        # campaigns free each day by refcount instead of gc timing.
        simulation.close()
        return DayResult(
            metrics=metrics,
            workload_requests=workload.num_requests,
            workload_reads=workload.num_reads,
            read_counts=workload.read_counts,
            all_counts=workload.all_counts,
            rearranged_blocks=blocks_in_table,
        )


# ----------------------------------------------------------------------
# The paper's experiment shapes
# ----------------------------------------------------------------------


def alternating_schedule(days: int, first_on_day: int = 1) -> list[bool]:
    """The on/off alternation of Sections 5.2 and 5.3.

    Day 0 must be off (there are no reference counts before the first
    measurement day); by default odd days are "on".
    """
    if days < 2:
        raise ValueError("an on/off campaign needs at least two days")
    schedule = []
    for day in range(days):
        on = day >= first_on_day and (day - first_on_day) % 2 == 0
        schedule.append(on)
    return schedule


def run_campaign(
    config: ExperimentConfig,
    schedule: list[bool],
    tracer: Tracer = NULL_TRACER,
) -> CampaignResult:
    """Run a multi-day campaign with an explicit on/off schedule."""
    if schedule and schedule[0]:
        raise ValueError(
            "day 0 cannot be an 'on' day: no reference counts exist yet"
        )
    experiment = Experiment(config, tracer=tracer)
    results: list[DayResult] = []
    for day, on_today in enumerate(schedule):
        on_tomorrow = schedule[day + 1] if day + 1 < len(schedule) else False
        results.append(
            experiment.run_day(
                rearranged=on_today,
                rearrange_tomorrow=on_tomorrow,
            )
        )
    return CampaignResult(config=config, days=results)


def run_onoff_campaign(
    config: ExperimentConfig, days: int = 10, tracer: Tracer = NULL_TRACER
) -> CampaignResult:
    """Alternating on/off days (Tables 2-6)."""
    return run_campaign(config, alternating_schedule(days), tracer=tracer)


def run_policy_campaign(
    config: ExperimentConfig, policy: str, days: int = 4
) -> CampaignResult:
    """One training (off) day followed by ``days - 1`` rearranged days
    under the given placement policy (Tables 7-10)."""
    policy_config = replace(config, placement_policy=policy)
    schedule = [False] + [True] * (days - 1)
    return run_campaign(policy_config, schedule)


def run_block_count_sweep(
    config: ExperimentConfig, block_counts: list[int]
) -> list[tuple[int, DayResult]]:
    """The Figure 8 sweep: one day per rearranged-block count.

    Day 0 trains (off); each subsequent day runs with the next count,
    rearranged from the previous day's reference counts, mirroring the
    paper's "different number of blocks being rearranged each day".
    """
    experiment = Experiment(config)
    results: list[tuple[int, DayResult]] = []
    counts = list(block_counts)
    first_count = counts[0] if counts else 0
    experiment.run_day(
        rearranged=False,
        rearrange_tomorrow=bool(counts),
        num_blocks_tomorrow=first_count,
    )
    for index, count in enumerate(counts):
        next_count = counts[index + 1] if index + 1 < len(counts) else 0
        day = experiment.run_day(
            rearranged=count > 0,
            rearrange_tomorrow=index + 1 < len(counts),
            num_blocks_tomorrow=next_count,
        )
        results.append((count, day))
    return results


# ----------------------------------------------------------------------
# Parallel campaign running
# ----------------------------------------------------------------------
#
# The multiprocessing machinery itself lives in :mod:`repro.parallel`
# (shared with the fleet shard runner); this section only defines the
# campaign-shaped task types.  ``resolve_workers`` is re-exported for
# callers that historically imported it from here.

CampaignTask = tuple[str, ExperimentConfig, Sequence[bool]]
"""One unit of parallel work: ``(key, config, on/off schedule)``."""


def _campaign_worker(task: CampaignTask) -> tuple[str, CampaignResult]:
    key, config, schedule = task
    return key, run_campaign(config, list(schedule))


def run_campaigns_parallel(
    tasks: Sequence[CampaignTask],
    workers: int | None = None,
    seed_from: int | None = None,
) -> list[tuple[str, CampaignResult]]:
    """Fan independent campaigns across ``multiprocessing`` workers.

    Each task is a fully self-contained ``(key, config, schedule)``
    triple; campaigns share nothing, so the results are identical to
    running them serially — just wall-clock faster.  Results come back in
    task order, and a worker failure is re-raised as
    :class:`~repro.parallel.WorkerTaskError` naming the campaign key and
    seed.  Tracers are deliberately not supported here: a tracer is
    process-local state, so traced runs should use :func:`run_campaign`
    directly.

    ``seed_from`` replaces each task's seed with a
    ``numpy.random.SeedSequence``-spawned child seed (one per task, in
    task order).  Use it when fanning out *replicas* of one config:
    spawned children are statistically independent, unlike the ad-hoc
    ``seed + i`` arithmetic this replaces, and identical at every worker
    count.
    """
    tasks = list(tasks)
    if seed_from is not None:
        seeds = spawn_seeds(seed_from, len(tasks))
        tasks = [
            (key, replace(config, seed=seed), schedule)
            for (key, config, schedule), seed in zip(tasks, seeds)
        ]
    return fan_out(
        _campaign_worker,
        tasks,
        workers,
        label=lambda i, task: (
            f"campaign {task[0]!r} (seed {task[1].seed})"
        ),
        what="campaign",
    )


def _sweep_point_worker(
    item: tuple[ExperimentConfig, int],
) -> tuple[int, DayResult]:
    config, count = item
    return run_block_count_sweep(config, [count])[0]


def run_block_count_sweep_parallel(
    config: ExperimentConfig,
    block_counts: list[int],
    workers: int | None = None,
) -> list[tuple[int, DayResult]]:
    """The Figure 8 sweep with mutually independent points.

    Unlike :func:`run_block_count_sweep` — where day *k* is trained on day
    *k-1*'s workload, chaining every point through one long campaign —
    each point here is its own two-day experiment (day 0 trains, day 1
    measures with ``count`` blocks rearranged), so all points share the
    same training day and can run concurrently.  The curves agree in
    shape; individual points differ slightly from the chained variant
    because the training workload is day 0's for every count.
    """
    items = [(config, count) for count in block_counts]
    return fan_out(
        _sweep_point_worker,
        items,
        workers,
        label=lambda i, item: (
            f"sweep point count={item[1]} (seed {item[0].seed})"
        ),
        what="sweep point",
    )
