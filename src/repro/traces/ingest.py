"""The ingest pipeline: raw trace file → simulator-ready workload.

``ingest_trace`` chains the subsystem's stages — streaming parse
(:mod:`.formats`), address mapping (:mod:`.mapping`), time rescaling and
loop conversion (:mod:`.rescale`), characterization
(:mod:`.characterize`) — and returns an :class:`IngestResult` whose jobs
drop straight into the existing experiment harness.
:func:`write_ingested` persists them in the internal workload-trace
format (``J``/``S`` lines, see :mod:`repro.workload.trace`) with a
provenance header, so ``repro replay`` and :func:`~repro.workload.trace.
load_trace` consume ingested traces exactly like generated ones.

Determinism guarantee: every stage is a pure function of the input bytes
and the options — no clocks, no RNG — so ingesting the same file twice
yields byte-identical output, and replaying it yields bit-identical
metrics (the property the ``trace_replay`` benchmark digest pins).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TextIO

from ..disk.label import DiskLabel
from ..disk.models import disk_model
from ..sim.jobs import Job
from ..workload.generator import DayWorkload
from ..workload.trace import dump_jobs
from .characterize import TraceCharacter, characterize_records
from .formats import BLOCK_BYTES, BlockIO, iter_trace
from .mapping import AddressMapper, make_mapper
from .rescale import DEFAULT_GAP_MS, jobs_from_records

#: Reserved-cylinder counts matching the replay harness's disk labels
#: (the paper's choices; see ``repro.sim.experiment``).
_RESERVED_CYLINDERS = {"toshiba": 48, "fujitsu": 80}

#: ``disk="ssd"`` replays through the page-mapped FTL, whose logical
#: span mirrors this reference disk's label — the same convention as
#: :class:`repro.sim.ssd.SsdExperiment`, so one ingested trace addresses
#: both backends identically.
_SSD_REFERENCE_DISK = "toshiba"


@dataclass
class IngestResult:
    """Everything one ingest run produced."""

    source: str
    format: str
    mapping: str
    target_blocks: int
    time_scale: float
    loop: str
    jobs: list[Job]
    character: TraceCharacter
    """Statistics of the *source* trace (pre-mapping address space)."""
    records: int
    working_set_blocks: int
    wrapped: bool = False
    """True when compaction overflowed the target disk and wrapped."""
    block_bytes: int = BLOCK_BYTES
    gap_ms: float = DEFAULT_GAP_MS

    @property
    def requests(self) -> int:
        return sum(job.num_requests for job in self.jobs)

    def workload(self, day: int = 0) -> DayWorkload:
        """The jobs as a :class:`~repro.workload.generator.DayWorkload`,
        with per-block reference counts rebuilt — so the analysis layer
        (:func:`repro.analysis.characterize`,
        :func:`repro.analysis.cylinder_reference_distribution`) treats an
        ingested trace exactly like a generated day."""
        read_counts: dict[int, int] = {}
        all_counts: dict[int, int] = {}
        for job in self.jobs:
            for step in job.steps:
                block = step.logical_block
                all_counts[block] = all_counts.get(block, 0) + 1
                if step.op.is_read:
                    read_counts[block] = read_counts.get(block, 0) + 1
        return DayWorkload(
            day=day,
            jobs=self.jobs,
            read_counts=read_counts,
            all_counts=all_counts,
        )


def default_target_blocks(disk: str) -> int:
    """Virtual (file-system-visible) blocks of the named disk model,
    with the paper's reserved area hidden — the address space ``repro
    replay`` exposes to a trace.  ``"ssd"`` uses the FTL's reference
    disk label (the flash backend serves the same logical span)."""
    if disk == "ssd":
        disk = _SSD_REFERENCE_DISK
    model = disk_model(disk)
    label = DiskLabel(
        model.geometry, reserved_cylinders=_RESERVED_CYLINDERS[disk]
    )
    return label.virtual_total_blocks


def _measure_span(
    path: str | Path,
    format: str,
    limit: int | None,
    block_bytes: int,
) -> int:
    """Streaming pre-pass: the exclusive upper bound of the block space."""
    span = 0
    for record in iter_trace(
        path, format, limit=limit, block_bytes=block_bytes
    ):
        if record.end_block > span:
            span = record.end_block
    return span


def ingest_trace(
    path: str | Path,
    *,
    format: str = "auto",
    mapping: str = "compact",
    disk: str = "toshiba",
    target_blocks: int | None = None,
    source_span: int | None = None,
    time_scale: float = 1.0,
    loop: str = "open",
    gap_ms: float = DEFAULT_GAP_MS,
    limit: int | None = None,
    block_bytes: int = BLOCK_BYTES,
) -> IngestResult:
    """Parse, map and rescale one raw trace file.

    ``target_blocks`` defaults to the virtual size of ``disk``'s
    file-system partition (so mapped blocks are always valid replay
    addresses).  The ``linear`` strategy measures the source span with a
    streaming pre-pass when ``source_span`` is not given.  ``limit``
    ingests only the first N records.
    """
    path = Path(path)
    if target_blocks is None:
        target_blocks = default_target_blocks(disk)
    if mapping == "linear" and source_span is None:
        source_span = _measure_span(path, format, limit, block_bytes)
        if source_span == 0:
            raise ValueError(f"{path}: no records to ingest")
    mapper: AddressMapper = make_mapper(
        mapping, target_blocks, source_span=source_span
    )
    records: list[BlockIO] = list(
        iter_trace(path, format, limit=limit, block_bytes=block_bytes)
    )
    if not records:
        raise ValueError(f"{path}: no records to ingest")
    character = characterize_records(records)
    jobs = jobs_from_records(
        records,
        mapper,
        time_scale=time_scale,
        loop=loop,
        gap_ms=gap_ms,
        name_prefix=path.stem,
    )
    return IngestResult(
        source=str(path),
        format=format,
        mapping=mapper.name,
        target_blocks=target_blocks,
        time_scale=time_scale,
        loop=loop,
        jobs=jobs,
        character=character,
        records=len(records),
        working_set_blocks=character.working_set_blocks,
        wrapped=bool(getattr(mapper, "wrapped", False)),
        block_bytes=block_bytes,
        gap_ms=gap_ms,
    )


def dump_ingested(result: IngestResult, stream: TextIO) -> int:
    """Write an ingested trace with its provenance header."""
    stream.write("# repro block-request trace (ingested)\n")
    stream.write(f"# source: {os.path.basename(result.source)}\n")
    stream.write(
        f"# format={result.format} mapping={result.mapping} "
        f"target_blocks={result.target_blocks} "
        f"time_scale={result.time_scale!r} loop={result.loop} "
        f"gap_ms={result.gap_ms!r} block_bytes={result.block_bytes}\n"
    )
    return dump_jobs(result.jobs, stream)


def write_ingested(result: IngestResult, path: str | Path) -> int:
    """Persist an ingested trace; returns the number of jobs written.

    The output is the internal workload-trace format — ``repro replay``
    and :func:`repro.workload.trace.load_trace` read it directly.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as stream:
        return dump_ingested(result, stream)


def fixture_path(name: str) -> Path:
    """Locate a bundled fixture trace (``tests/fixtures/<name>``).

    Checked in order: ``$REPRO_FIXTURES``, the current directory's
    ``tests/fixtures``, and the repository root relative to this source
    tree (works for editable installs and ``PYTHONPATH=src`` runs).
    """
    candidates = []
    env = os.environ.get("REPRO_FIXTURES")
    if env:
        candidates.append(Path(env) / name)
    candidates.append(Path("tests/fixtures") / name)
    candidates.append(
        Path(__file__).resolve().parents[3] / "tests" / "fixtures" / name
    )
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    raise FileNotFoundError(
        f"fixture trace {name!r} not found (looked in "
        + ", ".join(str(c.parent) for c in candidates)
        + ")"
    )
