"""Real-world block-trace ingestion and replay.

The paper's headline results come from live NFS request streams; this
package closes the same gap for the reproduction by replaying *real*
block traces through the experiment harness:

* :mod:`~repro.traces.formats` — streaming parsers for ``blkparse`` text
  output and MSR-Cambridge-style CSV;
* :mod:`~repro.traces.mapping` — address mappers (modulo, linear,
  working-set compaction) onto the simulated disk;
* :mod:`~repro.traces.rescale` — inter-arrival rescaling and open- vs
  closed-loop conversion into :class:`~repro.sim.jobs.Job` objects;
* :mod:`~repro.traces.characterize` — trace statistics plus synthesis of
  a matching synthetic :class:`~repro.workload.profiles.WorkloadProfile`;
* :mod:`~repro.traces.ingest` / :mod:`~repro.traces.replay` — the
  end-to-end pipeline behind ``repro ingest``, ``repro replay`` and
  :func:`repro.api.replay_trace`.

See ``docs/traces.md`` for formats, mapping semantics and the
determinism guarantees.
"""

from .characterize import (
    TraceCharacter,
    characterize_records,
    matching_profile,
    render_trace_character,
)
from .formats import (
    BLOCK_BYTES,
    FORMATS,
    BlockIO,
    TraceParseError,
    iter_trace,
    parse_blkparse,
    parse_msr,
    sniff_format,
)
from .ingest import (
    IngestResult,
    default_target_blocks,
    dump_ingested,
    fixture_path,
    ingest_trace,
    write_ingested,
)
from .mapping import (
    MAPPING_STRATEGIES,
    AddressMapper,
    CompactMapper,
    LinearMapper,
    ModuloMapper,
    make_mapper,
)
from .replay import TraceReplayResult, replay_jobs
from .rescale import DEFAULT_GAP_MS, jobs_from_records, rebase_and_scale

__all__ = [
    "AddressMapper",
    "BLOCK_BYTES",
    "BlockIO",
    "CompactMapper",
    "DEFAULT_GAP_MS",
    "FORMATS",
    "IngestResult",
    "LinearMapper",
    "MAPPING_STRATEGIES",
    "ModuloMapper",
    "TraceCharacter",
    "TraceParseError",
    "TraceReplayResult",
    "characterize_records",
    "default_target_blocks",
    "dump_ingested",
    "fixture_path",
    "ingest_trace",
    "iter_trace",
    "jobs_from_records",
    "make_mapper",
    "matching_profile",
    "parse_blkparse",
    "parse_msr",
    "rebase_and_scale",
    "render_trace_character",
    "replay_jobs",
    "sniff_format",
    "write_ingested",
]
