"""Replay ingested (or generated) jobs through the adaptive driver.

One assembled disk + driver + simulation, fed a fixed job list instead
of the workload generator.  This is the execution half of the trace
pipeline: :func:`repro.traces.ingest.ingest_trace` produces the jobs,
:func:`replay_jobs` runs them and reduces the driver's performance
tables to the same :class:`~repro.stats.metrics.DayMetrics` every other
experiment reports — so traced and generated workloads are compared in
one vocabulary.

With ``rearrange=True`` the replay is *pre-trained*: the reference
stream analyzer observes the whole trace first, the arranger moves the
hot blocks into the reserved area, the performance tables are cleared,
and only then does the trace run — the trace-driven analogue of the
paper's "train on yesterday, measure today".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.analyzer import ReferenceStreamAnalyzer
from ..core.arranger import BlockArranger
from ..core.hotlist import HotBlockList
from ..disk.disk import Disk
from ..disk.label import DiskLabel
from ..disk.models import DiskModel, disk_model
from ..driver.driver import AdaptiveDiskDriver
from ..driver.ioctl import IoctlInterface
from ..driver.queue import make_queue
from ..obs.tracer import NULL_TRACER, Tracer
from ..sim.engine import Simulation
from ..sim.jobs import Job
from ..stats.metrics import DayMetrics
from .ingest import _RESERVED_CYLINDERS, IngestResult

#: Default nightly rearrangement sizes (the paper's choices).
_PAPER_BLOCKS = {"toshiba": 1018, "fujitsu": 3500}


@dataclass
class TraceReplayResult:
    """What one replay produced."""

    metrics: DayMetrics
    completed: int
    """Requests the simulation completed."""
    events: int
    """Simulation events dispatched."""
    rearranged_blocks: int
    """Blocks moved by pre-training (0 without ``rearrange``)."""
    disk: str
    queue: str
    model: DiskModel
    ingest: IngestResult | None = None
    """The ingest stage's output, when the replay came from a raw trace
    (:func:`repro.api.replay_trace`); ``None`` for bare job lists."""

    @property
    def requests(self) -> int:
        return self.metrics.all.requests


def replay_jobs(
    jobs: Sequence[Job] | Iterable[Job],
    *,
    disk: str = "toshiba",
    queue: str = "scan",
    rearrange: bool = False,
    num_blocks: int | None = None,
    tracer: Tracer = NULL_TRACER,
) -> TraceReplayResult:
    """Run a job list through a freshly assembled driver.

    Fully deterministic: the same jobs, disk and queue produce the same
    metrics on every run (there is no randomness anywhere in the replay
    path), which is what lets the ``trace_replay`` benchmark pin its
    metrics digest.
    """
    jobs = list(jobs)
    model = disk_model(disk)
    label = DiskLabel(
        model.geometry, reserved_cylinders=_RESERVED_CYLINDERS[disk]
    )
    driver = AdaptiveDiskDriver(
        disk=Disk(model), label=label, queue=make_queue(queue)
    )
    rearranged_blocks = 0
    if rearrange:
        analyzer = ReferenceStreamAnalyzer()
        for job in jobs:
            for step in job.steps:
                analyzer.observe(step.logical_block)
        arranger = BlockArranger(IoctlInterface(driver))
        hot = HotBlockList.from_pairs(analyzer.hot_blocks())
        blocks = num_blocks if num_blocks is not None else _PAPER_BLOCKS[disk]
        plan, __ = arranger.rearrange(hot, blocks, now_ms=0.0)
        rearranged_blocks = len(plan)
        driver.perf_monitor.read_and_clear()
    simulation = Simulation(driver, tracer=tracer)
    simulation.add_jobs(jobs)
    completed = simulation.run()
    metrics = DayMetrics.from_tables(
        IoctlInterface(driver).read_stats(),
        model.seek,
        day=0,
        rearranged=rearrange,
    )
    events = simulation.events_dispatched
    simulation.close()
    return TraceReplayResult(
        metrics=metrics,
        completed=len(completed),
        events=events,
        rearranged_blocks=rearranged_blocks,
        disk=disk,
        queue=queue,
        model=model,
    )
