"""Replay ingested (or generated) jobs through the adaptive driver.

One assembled disk + driver + simulation, fed a fixed job list instead
of the workload generator.  This is the execution half of the trace
pipeline: :func:`repro.traces.ingest.ingest_trace` produces the jobs,
:func:`replay_jobs` runs them and reduces the driver's performance
tables to the same :class:`~repro.stats.metrics.DayMetrics` every other
experiment reports — so traced and generated workloads are compared in
one vocabulary.

With ``rearrange=True`` the replay is *pre-trained*: the reference
stream analyzer observes the whole trace first, the arranger moves the
hot blocks into the reserved area, the performance tables are cleared,
and only then does the trace run — the trace-driven analogue of the
paper's "train on yesterday, measure today".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.analyzer import ReferenceStreamAnalyzer
from ..core.arranger import BlockArranger
from ..core.hotlist import HotBlockList
from ..disk.disk import Disk
from ..disk.label import DiskLabel
from ..disk.models import DiskModel, disk_model
from ..driver.driver import AdaptiveDiskDriver
from ..driver.ioctl import IoctlInterface
from ..driver.queue import make_queue
from ..obs.tracer import NULL_TRACER, Tracer
from ..sim.engine import Simulation
from ..sim.jobs import Job
from ..stats.metrics import DayMetrics
from .ingest import _RESERVED_CYLINDERS, _SSD_REFERENCE_DISK, IngestResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..driver.ftl import FtlStats

#: Default nightly rearrangement sizes (the paper's choices).
_PAPER_BLOCKS = {"toshiba": 1018, "fujitsu": 3500}

#: Fixed preconditioning seed for FTL replays: ages the drive so the
#: replayed trace garbage-collects, while keeping the replay fully
#: deterministic (same trace, same options, same counters every run).
_SSD_PRECONDITION_SEED = 1993


@dataclass
class TraceReplayResult:
    """What one replay produced."""

    metrics: DayMetrics
    completed: int
    """Requests the simulation completed."""
    events: int
    """Simulation events dispatched."""
    rearranged_blocks: int
    """Blocks moved by pre-training (0 without ``rearrange``)."""
    disk: str
    queue: str
    model: DiskModel
    ingest: IngestResult | None = None
    """The ingest stage's output, when the replay came from a raw trace
    (:func:`repro.api.replay_trace`); ``None`` for bare job lists."""

    @property
    def requests(self) -> int:
        return self.metrics.all.requests


@dataclass
class SsdReplayResult:
    """What one FTL replay produced (``replay_trace(disk="ssd")``).

    Flash has no seek arm, so there is no :class:`DayMetrics` here; the
    interesting outcome is the FTL's own accounting — write
    amplification, GC activity, mapping-cache behaviour — plus the
    host-visible response times, mirroring
    :class:`~repro.sim.ssd.SsdDayResult`.
    """

    completed: int
    """Requests the simulation completed."""
    events: int
    """Simulation events dispatched."""
    mean_response_ms: float
    mean_service_ms: float
    stats: FtlStats
    """The drive's counters over the replay window (preconditioning
    clears them, so these cover the trace itself)."""
    separation: bool
    """Whether hot/cold write separation was pre-trained on the trace."""
    flash: str
    disk: str = "ssd"
    queue: str = "fifo"
    ingest: IngestResult | None = None
    """The ingest stage's output, when the replay came from a raw trace."""

    @property
    def requests(self) -> int:
        return self.completed

    def payload(self) -> dict:
        """Canonical JSON-ready form for digests."""
        return {
            "completed": self.completed,
            "mean_response_ms": round(self.mean_response_ms, 6),
            "mean_service_ms": round(self.mean_service_ms, 6),
            "separation": self.separation,
            "flash": self.flash,
            **self.stats.payload(),
        }


def replay_jobs(
    jobs: Sequence[Job] | Iterable[Job],
    *,
    disk: str = "toshiba",
    queue: str = "scan",
    rearrange: bool = False,
    num_blocks: int | None = None,
    tracer: Tracer = NULL_TRACER,
    fast: bool = True,
) -> TraceReplayResult | SsdReplayResult:
    """Run a job list through a freshly assembled driver.

    Fully deterministic: the same jobs, disk and queue produce the same
    metrics on every run (there is no randomness anywhere in the replay
    path), which is what lets the ``trace_replay`` benchmark pin its
    metrics digest.  ``fast`` enables the batch simulation kernel
    (:mod:`repro.sim.vector`); metrics are bit-identical either way.

    ``disk="ssd"`` replays the jobs through the page-mapped FTL backend
    instead (the trace must have been mapped onto the SSD's logical span
    — :func:`repro.traces.ingest.default_target_blocks` handles this for
    ``replay_trace``) and returns an :class:`SsdReplayResult`; there
    ``queue`` is ignored (the FTL serves FIFO) and ``rearrange=True``
    pre-trains hot/cold write separation on the trace rather than moving
    blocks.
    """
    jobs = list(jobs)
    if disk == "ssd":
        return _replay_jobs_ssd(
            jobs, rearrange=rearrange, tracer=tracer, fast=fast
        )
    model = disk_model(disk)
    label = DiskLabel(
        model.geometry, reserved_cylinders=_RESERVED_CYLINDERS[disk]
    )
    driver = AdaptiveDiskDriver(
        disk=Disk(model), label=label, queue=make_queue(queue)
    )
    rearranged_blocks = 0
    if rearrange:
        analyzer = ReferenceStreamAnalyzer()
        for job in jobs:
            for step in job.steps:
                analyzer.observe(step.logical_block)
        arranger = BlockArranger(IoctlInterface(driver))
        hot = HotBlockList.from_pairs(analyzer.hot_blocks())
        blocks = num_blocks if num_blocks is not None else _PAPER_BLOCKS[disk]
        plan, __ = arranger.rearrange(hot, blocks, now_ms=0.0)
        rearranged_blocks = len(plan)
        driver.perf_monitor.read_and_clear()
    simulation = Simulation(driver, tracer=tracer, fast=fast)
    simulation.add_jobs(jobs)
    completed = simulation.run()
    metrics = DayMetrics.from_tables(
        IoctlInterface(driver).read_stats(),
        model.seek,
        day=0,
        rearranged=rearrange,
    )
    events = simulation.events_dispatched
    # The batch kernel never materializes the requests it absorbs, so
    # the completed count is the list plus the absorbed tally.
    completed_count = len(completed) + simulation.absorbed_completions
    simulation.close()
    return TraceReplayResult(
        metrics=metrics,
        completed=completed_count,
        events=events,
        rearranged_blocks=rearranged_blocks,
        disk=disk,
        queue=queue,
        model=model,
    )


def _replay_jobs_ssd(
    jobs: list[Job],
    *,
    rearrange: bool,
    tracer: Tracer,
    fast: bool,
    flash: str = "ssd",
) -> SsdReplayResult:
    """Replay a job list through a freshly assembled FTL.

    The drive's logical span mirrors the reference disk label used by
    :class:`~repro.sim.ssd.SsdExperiment`, so traces ingested for
    ``disk="ssd"`` address valid pages.  The drive is preconditioned
    with a fixed seed (aged drives garbage-collect; fresh ones do not),
    keeping the replay deterministic end to end.
    """
    # Imported here: repro.driver.ftl reaches back into repro.core, which
    # drags in this module through the analysis layer at package init.
    from ..core.counters import SpaceSavingSketch
    from ..driver.ftl import FtlDriver, flash_model

    reference = disk_model(_SSD_REFERENCE_DISK)
    label = DiskLabel(
        reference.geometry,
        reserved_cylinders=_RESERVED_CYLINDERS[_SSD_REFERENCE_DISK],
    )
    separation = rearrange
    sketch = None
    if separation:
        # The trace-driven analogue of pre-training: the frequency
        # sketch observes the whole trace before any page is written.
        sketch = SpaceSavingSketch(capacity=4096)
        for job in jobs:
            for step in job.steps:
                if not step.op.is_read:
                    sketch.observe(step.logical_block)
    driver = FtlDriver(
        geometry=flash_model(flash),
        logical_pages=label.virtual_total_blocks,
        separation=separation,
        sketch=sketch,
        name="ssd0",
    )
    driver.attach()
    driver.precondition(seed=_SSD_PRECONDITION_SEED)
    simulation = Simulation(driver, tracer=tracer, fast=fast)
    simulation.add_jobs(jobs)
    completed = simulation.run()
    events = simulation.events_dispatched
    count = len(completed)
    responses = sum(r.response_ms for r in completed)
    services = sum(r.service_ms for r in completed)
    simulation.close()
    return SsdReplayResult(
        completed=count,
        events=events,
        mean_response_ms=responses / count if count else 0.0,
        mean_service_ms=services / count if count else 0.0,
        stats=driver.stats,
        separation=separation,
        flash=flash,
        ingest=None,
    )
