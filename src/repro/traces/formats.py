"""Streaming parsers for external block-trace formats.

The paper's measurements come from live request streams; ours come from
generated workloads — or, through this module, from *real* block traces.
Two public formats are supported:

``blkparse``
    The text output of Linux ``blktrace``'s ``blkparse`` tool, one event
    per line::

        8,0    1      42     0.000104572  1203  Q   R 5439488 + 8 [cc1]

    Only queue-insertion events (action ``Q`` by default) carry the
    arrival stream the simulator wants; completion and driver-internal
    events are skipped.  Sector addresses and sector counts are converted
    to file-system blocks (4 KB by default).

``msr``
    MSR-Cambridge-style CSV, one request per line::

        128166372003061629,src1,0,Read,8192,4096,1331

    Columns: Windows-filetime timestamp (100 ns ticks), hostname, disk
    number, ``Read``/``Write``, byte offset, byte length, response time.
    A header line is tolerated.

Both parsers are **streaming**: they accept any iterable of lines (an
open file, a generator, ...) and yield :class:`BlockIO` records one at a
time without ever materializing the input.  Malformed input raises
:class:`TraceParseError` naming the source, the 1-based line number and
the offending field.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..driver.request import Op

SECTOR_BYTES = 512
"""blktrace sector size (fixed by the kernel ABI)."""

BLOCK_BYTES = 4096
"""Default file-system block size foreign addresses are converted to."""

FILETIME_TICKS_PER_MS = 10_000
"""Windows filetime ticks (100 ns) per millisecond (MSR timestamps)."""


class TraceParseError(ValueError):
    """A trace line could not be parsed.

    Carries enough context to find the bad input: ``source`` (file name
    or stream label), ``line_no`` (1-based) and ``field`` (which part of
    the record was wrong).
    """

    def __init__(
        self, source: str, line_no: int, field: str, message: str
    ) -> None:
        self.source = source
        self.line_no = line_no
        self.field = field
        super().__init__(
            f"{source}, line {line_no}: bad {field}: {message}"
        )


@dataclass(frozen=True, slots=True)
class BlockIO:
    """One normalized trace record: a block-aligned request arrival."""

    time_ms: float
    """Arrival time in the trace's own clock (not yet rebased)."""
    block: int
    """First file-system block touched, in the source address space."""
    num_blocks: int
    """Blocks touched (>= 1; sub-block requests round up to one)."""
    op: Op
    line_no: int = 0
    """Line of the source file this record came from (for diagnostics)."""

    @property
    def end_block(self) -> int:
        return self.block + self.num_blocks


# ----------------------------------------------------------------------
# blkparse text output
# ----------------------------------------------------------------------


def parse_blkparse(
    lines: Iterable[str],
    source: str = "<blkparse>",
    *,
    action: str = "Q",
    block_bytes: int = BLOCK_BYTES,
) -> Iterator[BlockIO]:
    """Yield :class:`BlockIO` records from ``blkparse`` text output.

    Lines whose action is not ``action`` (default ``Q``, the arrival
    stream), whose RWBS field carries no data direction (pure flushes,
    barriers), or that are not event lines at all (summary sections,
    blank lines) are skipped.  Event lines with the right action but a
    broken sector/size field raise :class:`TraceParseError`.
    """
    if block_bytes % SECTOR_BYTES != 0:
        raise ValueError("block_bytes must be a multiple of 512")
    sectors_per_block = block_bytes // SECTOR_BYTES
    for line_no, raw in enumerate(lines, start=1):
        fields = raw.split()
        # Event lines start with a "major,minor" device field; anything
        # else (blkparse's trailing summary, CPU headers, blanks) is not
        # an event and is skipped wholesale.
        if len(fields) < 7 or "," not in fields[0]:
            continue
        if fields[5] != action:
            continue
        rwbs = fields[6]
        is_read = "R" in rwbs
        is_write = "W" in rwbs
        if is_read == is_write:  # flush/barrier-only (or malformed RWBS)
            continue
        try:
            time_ms = float(fields[3]) * 1000.0
        except ValueError:
            raise TraceParseError(
                source, line_no, "timestamp", repr(fields[3])
            ) from None
        if not math.isfinite(time_ms) or time_ms < 0:
            raise TraceParseError(
                source, line_no, "timestamp", f"{fields[3]!r} (negative or non-finite)"
            )
        if len(fields) < 10 or fields[8] != "+":
            raise TraceParseError(
                source, line_no, "sector extent",
                "expected '<sector> + <count>' after the RWBS field",
            )
        try:
            sector = int(fields[7])
        except ValueError:
            raise TraceParseError(
                source, line_no, "sector", repr(fields[7])
            ) from None
        try:
            num_sectors = int(fields[9])
        except ValueError:
            raise TraceParseError(
                source, line_no, "sector count", repr(fields[9])
            ) from None
        if sector < 0 or num_sectors < 0:
            raise TraceParseError(
                source, line_no, "sector extent",
                f"negative extent {sector} + {num_sectors}",
            )
        if num_sectors == 0:  # zero-length (flush with data flags)
            continue
        first = sector // sectors_per_block
        last = (sector + num_sectors - 1) // sectors_per_block
        yield BlockIO(
            time_ms=time_ms,
            block=first,
            num_blocks=last - first + 1,
            op=Op.READ if is_read else Op.WRITE,
            line_no=line_no,
        )


# ----------------------------------------------------------------------
# MSR-Cambridge-style CSV
# ----------------------------------------------------------------------


def parse_msr(
    lines: Iterable[str],
    source: str = "<msr>",
    *,
    block_bytes: int = BLOCK_BYTES,
) -> Iterator[BlockIO]:
    """Yield :class:`BlockIO` records from MSR-Cambridge-style CSV.

    Expected columns: ``Timestamp,Hostname,DiskNumber,Type,Offset,Size``
    (a trailing response-time column — and anything after it — is
    ignored).  A header line is tolerated; blank lines are skipped.
    """
    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(",")
        if len(fields) < 6:
            raise TraceParseError(
                source, line_no, "record",
                f"expected >= 6 comma-separated fields, got {len(fields)}",
            )
        if line_no == 1 and not fields[0].strip().isdigit():
            continue  # header row
        try:
            ticks = int(fields[0])
        except ValueError:
            raise TraceParseError(
                source, line_no, "timestamp", repr(fields[0])
            ) from None
        kind = fields[3].strip().lower()
        if kind == "read":
            op = Op.READ
        elif kind == "write":
            op = Op.WRITE
        else:
            raise TraceParseError(
                source, line_no, "type",
                f"{fields[3]!r} (expected 'Read' or 'Write')",
            )
        try:
            offset = int(fields[4])
        except ValueError:
            raise TraceParseError(
                source, line_no, "offset", repr(fields[4])
            ) from None
        try:
            size = int(fields[5])
        except ValueError:
            raise TraceParseError(
                source, line_no, "size", repr(fields[5])
            ) from None
        if offset < 0 or size < 0:
            raise TraceParseError(
                source, line_no, "extent",
                f"negative extent {offset} + {size}",
            )
        if size == 0:
            continue
        first = offset // block_bytes
        last = (offset + size - 1) // block_bytes
        yield BlockIO(
            time_ms=ticks / FILETIME_TICKS_PER_MS,
            block=first,
            num_blocks=last - first + 1,
            op=op,
            line_no=line_no,
        )


# ----------------------------------------------------------------------
# Format registry and sniffing
# ----------------------------------------------------------------------

PARSERS = {
    "blkparse": parse_blkparse,
    "msr": parse_msr,
}

FORMATS = ("auto", *PARSERS)


def sniff_format(sample_line: str) -> str:
    """Guess the trace format from one (non-blank) line.

    blkparse event lines open with a ``major,minor`` device field and are
    whitespace-separated; MSR records are comma-separated with a numeric
    first column.  Raises :class:`ValueError` when neither shape matches.
    """
    stripped = sample_line.strip()
    fields = stripped.split()
    if len(fields) >= 7 and "," in fields[0]:
        return "blkparse"
    columns = stripped.split(",")
    if len(columns) >= 6:
        return "msr"
    raise ValueError(
        f"cannot determine trace format from line {stripped[:60]!r}; "
        f"pass an explicit format ({', '.join(PARSERS)})"
    )


def iter_trace(
    path: str | Path,
    format: str = "auto",
    *,
    limit: int | None = None,
    block_bytes: int = BLOCK_BYTES,
) -> Iterator[BlockIO]:
    """Stream :class:`BlockIO` records from a trace file.

    ``format="auto"`` sniffs from the first non-blank, non-comment line.
    ``limit`` stops after that many records (useful for quick looks at
    multi-gigabyte traces) — the file is still read lazily, so only the
    consumed prefix is ever touched.
    """
    path = Path(path)
    if format not in FORMATS:
        known = ", ".join(FORMATS)
        raise ValueError(f"unknown trace format {format!r}; known: {known}")
    with path.open("r", encoding="utf-8", errors="replace") as stream:
        if format == "auto":
            head: list[str] = []
            sample = None
            for line in stream:
                head.append(line)
                if line.strip() and not line.lstrip().startswith("#"):
                    sample = line
                    break
            if sample is None:
                raise ValueError(f"{path}: empty trace file")
            format = sniff_format(sample)
            lines: Iterable[str] = _chain_lines(head, stream)
        else:
            lines = stream
        parser = PARSERS[format]
        produced = 0
        for record in parser(lines, str(path), block_bytes=block_bytes):
            yield record
            produced += 1
            if limit is not None and produced >= limit:
                return


def _chain_lines(
    head: list[str], rest: Iterable[str]
) -> Iterator[str]:
    yield from head
    yield from rest
