"""Time rescaling: turn trace arrival times into simulator jobs.

A trace records *when* each request arrived on the traced system; the
simulator wants :class:`~repro.sim.jobs.Job` objects.  Two conversion
disciplines are offered:

**open loop** (``loop="open"``)
    Every record becomes a one-shot batch job at its (rebased, scaled)
    arrival time.  The simulated disk has no say in the arrival stream —
    exactly what the trace observed, and the right choice when the trace
    comes from a system whose clients did not wait for this disk.

**closed loop** (``loop="closed"``)
    Consecutive records closer than ``gap_ms`` (after scaling) fold into
    one closed-loop sequential job whose steps carry the scaled
    inter-arrival gaps as think times: each request is issued *gap* ms
    after the previous one **completes**.  This converts the trace's
    timing into client think time, so a faster simulated disk finishes
    the day sooner — the conversion the paper's NFS clients effectively
    implement, and the one that lets rearrangement shorten sequential
    sessions.  Gaps of ``gap_ms`` or more start a new job.

``time_scale`` multiplies every rebased timestamp (and therefore every
inter-arrival gap): 0.1 compresses a day's trace into a tenth of the
time, 10.0 stretches it.  Rebasements, scaling and grouping are pure
float arithmetic over the record stream — deterministic for a given
input, so two conversions of the same trace are identical.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..sim.jobs import Job, Step
from .formats import BlockIO
from .mapping import AddressMapper

DEFAULT_GAP_MS = 50.0
"""Closed-loop session break: gaps this long or longer start a new job."""


def rebase_and_scale(
    records: Sequence[BlockIO], time_scale: float = 1.0
) -> list[BlockIO]:
    """Sort records by arrival and rebase the clock to zero, scaled.

    Traces merged from several CPUs (blkparse) are only approximately
    ordered; sorting first makes the rebased stream monotone.  Ties keep
    their file order (``sorted`` is stable), so the result is
    deterministic.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    ordered = sorted(records, key=lambda r: r.time_ms)
    if not ordered:
        return []
    base = ordered[0].time_ms
    return [
        BlockIO(
            time_ms=(record.time_ms - base) * time_scale,
            block=record.block,
            num_blocks=record.num_blocks,
            op=record.op,
            line_no=record.line_no,
        )
        for record in ordered
    ]


def _steps_for(
    record: BlockIO, mapper: AddressMapper, first_think_ms: float
) -> list[Step]:
    """One step per touched block; the lead step carries the think time."""
    steps = []
    for index in range(record.num_blocks):
        steps.append(
            Step(
                logical_block=mapper.map(record.block + index),
                op=record.op,
                think_ms=first_think_ms if index == 0 else 0.0,
            )
        )
    return steps


def jobs_from_records(
    records: Iterable[BlockIO],
    mapper: AddressMapper,
    *,
    time_scale: float = 1.0,
    loop: str = "open",
    gap_ms: float = DEFAULT_GAP_MS,
    name_prefix: str = "trace",
) -> list[Job]:
    """Convert normalized trace records into simulator jobs.

    Records are rebased to t=0 and scaled by ``time_scale`` first; the
    ``loop`` discipline then decides how timing is carried (see the
    module docstring).  Multi-block records expand into one step per
    block, mapped individually so compaction keeps runs contiguous.
    """
    if loop not in ("open", "closed"):
        raise ValueError(f"loop must be 'open' or 'closed', not {loop!r}")
    if gap_ms <= 0:
        raise ValueError("gap_ms must be positive")
    ordered = rebase_and_scale(list(records), time_scale)
    jobs: list[Job] = []
    if loop == "open":
        for index, record in enumerate(ordered):
            jobs.append(
                Job(
                    start_ms=record.time_ms,
                    steps=_steps_for(record, mapper, 0.0),
                    sequential=False,
                    name=f"{name_prefix}-{index}",
                )
            )
        return jobs

    # Closed loop: fold bursts into sequential jobs with think times.
    session_steps: list[Step] = []
    session_start = 0.0
    previous_ms = 0.0

    def finish() -> None:
        if session_steps:
            jobs.append(
                Job(
                    start_ms=session_start,
                    steps=list(session_steps),
                    sequential=True,
                    name=f"{name_prefix}-{len(jobs)}",
                )
            )
            session_steps.clear()

    for record in ordered:
        gap = record.time_ms - previous_ms
        if not session_steps or gap >= gap_ms:
            finish()
            session_start = record.time_ms
            session_steps.extend(_steps_for(record, mapper, 0.0))
        else:
            session_steps.extend(_steps_for(record, mapper, max(gap, 0.0)))
        previous_ms = record.time_ms
    finish()
    return jobs
