"""Trace characterization and synthetic-profile matching.

:func:`characterize_records` reduces a trace to the statistics the paper
reasons with — reference skew, read/write mix, working-set size,
sequentiality — in one streaming pass (memory proportional to the
working set, never to the trace length).

:func:`matching_profile` then bends a preset
:class:`~repro.workload.profiles.WorkloadProfile` until the *generator*
produces a day with the same gross character: same duration, read/write
mix, skew exponent and sequential-run structure.  That gives an
apples-to-apples comparison — replay the real trace, then run the
synthetic twin through the identical experiment harness and compare what
rearrangement buys on each.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable

from ..workload.distributions import top_k_share
from ..workload.profiles import PROFILES, WorkloadProfile
from .formats import BlockIO


@dataclass(frozen=True)
class TraceCharacter:
    """One trace, summarized the way Section 5 talks about workloads."""

    requests: int
    """Trace records (I/O requests, possibly multi-block)."""
    block_requests: int
    """Single-block accesses after expansion (what the simulator sees)."""
    reads: int
    writes: int
    working_set_blocks: int
    """Distinct blocks touched."""
    span_blocks: int
    """Address-space extent: max touched block - min touched block + 1."""
    duration_ms: float
    sequential_fraction: float
    """Fraction of requests starting exactly where the previous ended."""
    mean_run_blocks: float
    """Mean length (in blocks) of a maximal sequential run."""
    mean_request_blocks: float
    top_100_share: float
    top_1018_share: float
    zipf_exponent: float
    """Slope of the log-log rank/frequency line over per-block counts."""

    @property
    def read_fraction(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.reads / self.requests

    @property
    def write_fraction(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.writes / self.requests


def _fit_zipf_exponent(counts: list[int], max_ranks: int = 1000) -> float:
    """Least-squares slope of log(count) against log(rank), negated.

    Pure-Python closed-form accumulation: deterministic across platforms
    (no BLAS), which keeps the characterizer usable inside digest-hashed
    benchmark payloads.  Returns 0.0 when fewer than two distinct ranks
    exist.
    """
    ordered = sorted(counts, reverse=True)[:max_ranks]
    points = [
        (math.log(rank), math.log(count))
        for rank, count in enumerate(ordered, start=1)
        if count > 0
    ]
    n = len(points)
    if n < 2:
        return 0.0
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    sum_xx = sum(x * x for x, _ in points)
    sum_xy = sum(x * y for x, y in points)
    denom = n * sum_xx - sum_x * sum_x
    if denom == 0:
        return 0.0
    slope = (n * sum_xy - sum_x * sum_y) / denom
    return max(0.0, -slope)


def characterize_records(records: Iterable[BlockIO]) -> TraceCharacter:
    """Summarize a record stream in one pass."""
    counts: dict[int, int] = {}
    requests = 0
    block_requests = 0
    reads = 0
    first_ms: float | None = None
    last_ms = 0.0
    min_block: int | None = None
    max_block = 0
    sequential = 0
    prev_end: int | None = None
    run_blocks = 0
    runs = 0
    total_run_blocks = 0

    for record in records:
        requests += 1
        block_requests += record.num_blocks
        if record.op.is_read:
            reads += 1
        if first_ms is None:
            first_ms = record.time_ms
        last_ms = record.time_ms
        if min_block is None or record.block < min_block:
            min_block = record.block
        if record.end_block - 1 > max_block:
            max_block = record.end_block - 1
        for offset in range(record.num_blocks):
            block = record.block + offset
            counts[block] = counts.get(block, 0) + 1
        if prev_end is not None and record.block == prev_end:
            sequential += 1
            run_blocks += record.num_blocks
        else:
            if run_blocks:
                runs += 1
                total_run_blocks += run_blocks
            run_blocks = record.num_blocks
        prev_end = record.end_block
    if run_blocks:
        runs += 1
        total_run_blocks += run_blocks

    all_counts = list(counts.values())
    return TraceCharacter(
        requests=requests,
        block_requests=block_requests,
        reads=reads,
        writes=requests - reads,
        working_set_blocks=len(counts),
        span_blocks=(max_block - min_block + 1) if min_block is not None else 0,
        duration_ms=(last_ms - first_ms) if first_ms is not None else 0.0,
        sequential_fraction=sequential / requests if requests else 0.0,
        mean_run_blocks=total_run_blocks / runs if runs else 0.0,
        mean_request_blocks=block_requests / requests if requests else 0.0,
        top_100_share=top_k_share(all_counts, 100),
        top_1018_share=top_k_share(all_counts, 1018),
        zipf_exponent=_fit_zipf_exponent(all_counts),
    )


def matching_profile(
    character: TraceCharacter,
    base: str | WorkloadProfile = "system",
    *,
    name: str | None = None,
) -> WorkloadProfile:
    """A :class:`WorkloadProfile` whose generated day matches ``character``.

    The mapping is deliberately coarse — it matches the statistics the
    rearrangement result depends on, not the trace microstructure:

    * day length = trace duration;
    * popularity skew = the fitted Zipf exponent (floored at 0.5 so the
      generator's weighting stays well-defined);
    * sequentiality: ``single_block_read_prob`` is the trace's isolated-
      request fraction, ``multi_run_mean`` its mean run length;
    * read volume: sessions/hour chosen so sessions × mean run length
      reproduces the traced read count;
    * write volume: open sessions/hour chosen so the periodic-update
      machinery emits roughly the traced write count (writes reach the
      disk deduplicated through the cache, so this matches volume, not
      burst shape).

    The synthetic twin is a *generator* workload: its blocks live on the
    simulated file system, not at the trace's addresses — that is the
    point (same statistics, native layout).
    """
    if isinstance(base, str):
        try:
            base = PROFILES[base]
        except KeyError:
            known = ", ".join(sorted(PROFILES))
            raise KeyError(
                f"unknown profile {base!r}; known: {known}"
            ) from None
    hours = max(character.duration_ms / 3_600_000.0, 0.01)
    run_mean = max(character.mean_run_blocks, 1.0)
    read_sessions = character.reads / run_mean / hours
    write_sessions = character.writes / hours
    return replace(
        base,
        name=name or f"{base.name}-matched",
        day_hours=hours,
        file_popularity_exponent=max(character.zipf_exponent, 0.5),
        single_block_read_prob=min(
            max(1.0 - character.sequential_fraction, 0.0), 1.0
        ),
        multi_run_mean=max(run_mean, 2.0),
        read_sessions_per_hour=max(read_sessions, 1.0),
        open_sessions_per_hour=max(write_sessions, 0.0),
        edit_session_fraction=0.0,
        new_files_per_day=0,
        extend_sessions_per_day=0,
        popularity_reshuffle_fraction=0.0,
    )


def render_trace_character(character: TraceCharacter, title: str) -> str:
    """One-screen text summary (mirrors ``analysis.render_character``)."""
    lines = [
        title,
        "=" * max(len(title), 44),
        f"requests:            {character.requests:>10}"
        f"  (reads {character.reads}, writes {character.writes},"
        f" {character.write_fraction:.0%} writes)",
        f"block accesses:      {character.block_requests:>10}"
        f"  (mean {character.mean_request_blocks:.1f} blocks/request)",
        f"working set:         {character.working_set_blocks:>10} blocks"
        f"  (span {character.span_blocks})",
        f"duration:            {character.duration_ms / 1000.0:>10.1f} s",
        f"sequential fraction: {character.sequential_fraction:>10.1%}"
        f"  (mean run {character.mean_run_blocks:.1f} blocks)",
        f"top-100 share:       {character.top_100_share:>10.1%}",
        f"top-1018 share:      {character.top_1018_share:>10.1%}",
        f"zipf exponent:       {character.zipf_exponent:>10.2f}",
    ]
    return "\n".join(lines)
