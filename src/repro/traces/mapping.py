"""Address mappers: rescale foreign LBA spaces onto the simulated disk.

A real trace addresses a disk the simulator does not model — usually a
much larger one.  An :class:`AddressMapper` turns each source block
number into a virtual block on the simulated disk's file-system
partition.  Three strategies trade locality preservation against
working-set preservation:

``modulo``
    ``block % target_blocks``.  Cheap and stateless; preserves short
    sequential runs (until they hit the wrap point) but folds distant
    regions of the source disk on top of each other, which manufactures
    artificial locality for very large source spans.

``linear``
    ``block * target_blocks // source_span``.  Preserves the *shape* of
    the source address distribution — hot regions stay in proportionally
    the same place — but a source span much larger than the target disk
    collapses distinct neighboring blocks into one, shrinking the
    working set.

``compact``
    Working-set compaction: blocks get dense target addresses in order
    of first touch, so the k-th distinct source block lands at virtual
    block k (modulo the target size).  Preserves the working-set size
    and the re-reference structure exactly — the right default for
    rearrangement experiments, where what matters is *which* blocks are
    hot, not where the original disk kept them.  Costs one dict entry
    per distinct source block.

All mappers are deterministic: the same record stream maps to the same
virtual blocks on every run, which is what makes ingested traces (and
their replay digests) bit-reproducible.
"""

from __future__ import annotations

from typing import Protocol


class AddressMapper(Protocol):
    """Maps source block numbers into ``[0, target_blocks)``."""

    name: str
    target_blocks: int

    def map(self, block: int) -> int:
        """Virtual block for ``block``; always in ``[0, target_blocks)``."""
        ...


def _require_target(target_blocks: int) -> None:
    if target_blocks <= 0:
        raise ValueError("target_blocks must be positive")


class ModuloMapper:
    """``block % target_blocks``."""

    name = "modulo"

    def __init__(self, target_blocks: int) -> None:
        _require_target(target_blocks)
        self.target_blocks = target_blocks

    def map(self, block: int) -> int:
        return block % self.target_blocks


class LinearMapper:
    """Linear rescale of ``[0, source_span)`` onto ``[0, target_blocks)``.

    ``source_span`` must cover every block in the trace (use the maximum
    end block; :func:`repro.traces.ingest.ingest_trace` measures it with
    a streaming pre-pass when the caller does not know it).  Integer
    arithmetic keeps the mapping exact and platform-independent.
    """

    name = "linear"

    def __init__(self, target_blocks: int, source_span: int) -> None:
        _require_target(target_blocks)
        if source_span <= 0:
            raise ValueError("source_span must be positive")
        self.target_blocks = target_blocks
        self.source_span = source_span

    def map(self, block: int) -> int:
        if not 0 <= block < self.source_span:
            raise ValueError(
                f"source block {block} outside the declared span "
                f"[0, {self.source_span})"
            )
        return block * self.target_blocks // self.source_span


class CompactMapper:
    """First-touch compaction of the working set."""

    name = "compact"

    def __init__(self, target_blocks: int) -> None:
        _require_target(target_blocks)
        self.target_blocks = target_blocks
        self._ids: dict[int, int] = {}

    def map(self, block: int) -> int:
        virtual = self._ids.get(block)
        if virtual is None:
            virtual = len(self._ids) % self.target_blocks
            self._ids[block] = virtual
        return virtual

    @property
    def working_set(self) -> int:
        """Distinct source blocks seen so far."""
        return len(self._ids)

    @property
    def wrapped(self) -> bool:
        """True when the working set overflowed the target disk."""
        return len(self._ids) > self.target_blocks


MAPPING_STRATEGIES = ("modulo", "linear", "compact")


def make_mapper(
    strategy: str,
    target_blocks: int,
    *,
    source_span: int | None = None,
) -> AddressMapper:
    """Build the named mapping strategy.

    ``linear`` needs ``source_span`` (the exclusive upper bound of the
    source block space); the other strategies ignore it.
    """
    if strategy == "modulo":
        return ModuloMapper(target_blocks)
    if strategy == "compact":
        return CompactMapper(target_blocks)
    if strategy == "linear":
        if source_span is None:
            raise ValueError(
                "the linear strategy needs source_span (the source "
                "address-space size in blocks)"
            )
        return LinearMapper(target_blocks, source_span)
    known = ", ".join(MAPPING_STRATEGIES)
    raise ValueError(f"unknown mapping strategy {strategy!r}; known: {known}")
