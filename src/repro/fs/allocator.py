"""FFS-style block allocation: cylinder groups and rotational interleave.

The paper's layouts are produced by the SunOS UFS file system, which is
"closely related to the Berkeley UNIX Fast File System" (Section 3.1).  The
two FFS behaviours that matter to the experiments are reproduced here:

* **Cylinder groups** — the partition is divided into groups of consecutive
  cylinders; a file's inode and data live in one group when possible, and
  different directories land in different groups.  This spreads hot blocks
  of *different* files widely over the disk (Section 1.1: "hot blocks from
  different files may be spread widely over the disk's surface"), which is
  precisely why rearrangement pays off.

* **Rotational interleave** — "the SunOS UNIX file system ... tries to
  place successive blocks of a file interleaved by gaps" (Section 4.2).
  Successive blocks of a file are placed ``1 + interleave`` block slots
  apart so that, after per-block processing time, the next block arrives
  under the head without a full-rotation wait.  The interleaved placement
  policy of the rearranger exists to preserve exactly this property.

Addresses produced here are *partition-relative* block numbers; the file
system layer (:mod:`repro.fs.ufs`) shifts them by the partition offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_CYLINDERS_PER_GROUP = 16
DEFAULT_INODE_BLOCKS_PER_GROUP = 2
DEFAULT_INTERLEAVE = 1


class AllocationError(Exception):
    """Raised when the allocator cannot satisfy a request."""


class FreeMap:
    """Byte-per-block free map for one group's data area.

    Replaces the old ``set[int]`` of free block numbers: membership, add,
    and remove stay O(1), but the footprint is one byte per block instead
    of a hashed ``int`` object — the difference between ~150 MB and ~2 MB
    of allocator state on a two-million-block device.
    """

    __slots__ = ("_first", "_bits", "count")

    def __init__(self, first_block: int, size: int) -> None:
        self._first = first_block
        self._bits = bytearray(b"\x01" * size)
        self.count = size

    def __contains__(self, block: int) -> bool:
        index = block - self._first
        return 0 <= index < len(self._bits) and bool(self._bits[index])

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def remove(self, block: int) -> None:
        self._bits[block - self._first] = 0
        self.count -= 1

    def add(self, block: int) -> None:
        self._bits[block - self._first] = 1
        self.count += 1

    def next_free_index(self, start: int, stop: int | None = None) -> int:
        """Index (relative to the map start) of the first free block at or
        after ``start`` (and before ``stop``), or -1 if there is none.

        Runs as a C-level byte search, which is what keeps the forward
        scan of ``allocate_near`` affordable on million-block groups."""
        if stop is None:
            stop = len(self._bits)
        return self._bits.find(1, start, stop)


@dataclass
class CylinderGroup:
    """One cylinder group: an inode area followed by a data area."""

    index: int
    first_block: int
    num_blocks: int
    inode_blocks: int

    free: FreeMap = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.inode_blocks >= self.num_blocks:
            raise ValueError("inode area must leave room for data blocks")
        if self.free is None:
            self.free = FreeMap(
                self.data_first_block, self.num_blocks - self.inode_blocks
            )

    @property
    def data_first_block(self) -> int:
        return self.first_block + self.inode_blocks

    @property
    def end_block(self) -> int:
        return self.first_block + self.num_blocks

    @property
    def free_count(self) -> int:
        return self.free.count

    def inode_block_numbers(self) -> list[int]:
        return list(range(self.first_block, self.first_block + self.inode_blocks))

    def allocate_near(self, position: int, interleave: int) -> int:
        """Allocate the first free block at or after ``position`` plus the
        rotational gap, scanning forward with wrap-around within the group.

        ``position`` is the previously allocated block (or the start of the
        data area for a file's first block).
        """
        if not self.free:
            raise AllocationError(f"cylinder group {self.index} is full")
        data_first = self.data_first_block
        data_span = self.num_blocks - self.inode_blocks
        start = (position + 1 + interleave - data_first) % data_span
        # First free slot at or after the rotational gap, else wrap around
        # to the start of the data area — the same order the old
        # block-by-block scan probed, found in two C-level byte searches.
        index = self.free.next_free_index(start)
        if index < 0:
            index = self.free.next_free_index(0, start)
        if index < 0:
            raise AllocationError(f"cylinder group {self.index} is full")
        candidate = data_first + index
        self.free.remove(candidate)
        return candidate

    def release(self, block: int) -> None:
        if not self.data_first_block <= block < self.end_block:
            raise ValueError(f"block {block} is not in group {self.index}")
        if block in self.free:
            raise ValueError(f"block {block} is already free")
        self.free.add(block)


@dataclass
class FFSAllocator:
    """Cylinder-group allocator over a partition of ``total_blocks``."""

    total_blocks: int
    blocks_per_cylinder: int
    cylinders_per_group: int = DEFAULT_CYLINDERS_PER_GROUP
    inode_blocks_per_group: int = DEFAULT_INODE_BLOCKS_PER_GROUP
    interleave: int = DEFAULT_INTERLEAVE
    groups: list[CylinderGroup] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_blocks <= 0:
            raise ValueError("partition must contain at least one block")
        if self.groups:
            return
        group_blocks = self.blocks_per_cylinder * self.cylinders_per_group
        if group_blocks <= self.inode_blocks_per_group:
            raise ValueError("cylinder group too small for its inode area")
        first = 0
        index = 0
        while first < self.total_blocks:
            size = min(group_blocks, self.total_blocks - first)
            if size <= self.inode_blocks_per_group:
                break  # tail too small to be a group; leave unallocated
            self.groups.append(
                CylinderGroup(
                    index=index,
                    first_block=first,
                    num_blocks=size,
                    inode_blocks=self.inode_blocks_per_group,
                )
            )
            first += size
            index += 1
        if not self.groups:
            raise ValueError("partition too small for any cylinder group")

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def group_of_block(self, block: int) -> CylinderGroup:
        for group in self.groups:
            if group.first_block <= block < group.end_block:
                return group
        raise ValueError(f"block {block} is outside every cylinder group")

    def _group_with_space(self, preferred: int, needed: int) -> CylinderGroup:
        """Preferred group if it has room, else the next group that does."""
        order = range(preferred, preferred + self.num_groups)
        for raw_index in order:
            group = self.groups[raw_index % self.num_groups]
            if group.free_count >= needed:
                return group
        raise AllocationError("file system is full")

    def allocate_file_blocks(
        self, num_blocks: int, group_hint: int = 0
    ) -> list[int]:
        """Allocate ``num_blocks`` for a new file, interleaved, preferring
        the hinted cylinder group and spilling to later groups when full."""
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        blocks: list[int] = []
        remaining = num_blocks
        hint = group_hint % self.num_groups
        position: int | None = None
        while remaining > 0:
            group = self._group_with_space(hint, 1)
            if position is None or not (
                group.data_first_block <= position < group.end_block
            ):
                position = group.data_first_block - 1 - self.interleave
            take = min(remaining, group.free_count)
            for __ in range(take):
                position = group.allocate_near(position, self.interleave)
                blocks.append(position)
            remaining -= take
            hint = (group.index + 1) % self.num_groups
        return blocks

    def extend_file(self, last_block: int, num_blocks: int) -> list[int]:
        """Allocate blocks appended to a file whose tail is ``last_block``."""
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        blocks: list[int] = []
        position = last_block
        group = self.group_of_block(last_block)
        remaining = num_blocks
        while remaining > 0:
            if group.free_count == 0:
                group = self._group_with_space(group.index + 1, 1)
                position = group.data_first_block - 1 - self.interleave
            position = group.allocate_near(position, self.interleave)
            blocks.append(position)
            remaining -= 1
        return blocks

    def release_blocks(self, blocks: list[int]) -> None:
        for block in blocks:
            self.group_of_block(block).release(block)

    @property
    def free_blocks(self) -> int:
        return sum(group.free_count for group in self.groups)
