"""FFS-style block allocation: cylinder groups and rotational interleave.

The paper's layouts are produced by the SunOS UFS file system, which is
"closely related to the Berkeley UNIX Fast File System" (Section 3.1).  The
two FFS behaviours that matter to the experiments are reproduced here:

* **Cylinder groups** — the partition is divided into groups of consecutive
  cylinders; a file's inode and data live in one group when possible, and
  different directories land in different groups.  This spreads hot blocks
  of *different* files widely over the disk (Section 1.1: "hot blocks from
  different files may be spread widely over the disk's surface"), which is
  precisely why rearrangement pays off.

* **Rotational interleave** — "the SunOS UNIX file system ... tries to
  place successive blocks of a file interleaved by gaps" (Section 4.2).
  Successive blocks of a file are placed ``1 + interleave`` block slots
  apart so that, after per-block processing time, the next block arrives
  under the head without a full-rotation wait.  The interleaved placement
  policy of the rearranger exists to preserve exactly this property.

Addresses produced here are *partition-relative* block numbers; the file
system layer (:mod:`repro.fs.ufs`) shifts them by the partition offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_CYLINDERS_PER_GROUP = 16
DEFAULT_INODE_BLOCKS_PER_GROUP = 2
DEFAULT_INTERLEAVE = 1


class AllocationError(Exception):
    """Raised when the allocator cannot satisfy a request."""


@dataclass
class CylinderGroup:
    """One cylinder group: an inode area followed by a data area."""

    index: int
    first_block: int
    num_blocks: int
    inode_blocks: int

    free: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.inode_blocks >= self.num_blocks:
            raise ValueError("inode area must leave room for data blocks")
        if not self.free:
            self.free = set(
                range(
                    self.first_block + self.inode_blocks,
                    self.first_block + self.num_blocks,
                )
            )

    @property
    def data_first_block(self) -> int:
        return self.first_block + self.inode_blocks

    @property
    def end_block(self) -> int:
        return self.first_block + self.num_blocks

    @property
    def free_count(self) -> int:
        return len(self.free)

    def inode_block_numbers(self) -> list[int]:
        return list(range(self.first_block, self.first_block + self.inode_blocks))

    def allocate_near(self, position: int, interleave: int) -> int:
        """Allocate the first free block at or after ``position`` plus the
        rotational gap, scanning forward with wrap-around within the group.

        ``position`` is the previously allocated block (or the start of the
        data area for a file's first block).
        """
        if not self.free:
            raise AllocationError(f"cylinder group {self.index} is full")
        start = position + 1 + interleave
        span = self.num_blocks
        for offset in range(span):
            candidate = self.data_first_block + (
                (start - self.data_first_block + offset) % (span - self.inode_blocks)
            )
            if candidate in self.free:
                self.free.remove(candidate)
                return candidate
        raise AllocationError(f"cylinder group {self.index} is full")

    def release(self, block: int) -> None:
        if not self.data_first_block <= block < self.end_block:
            raise ValueError(f"block {block} is not in group {self.index}")
        if block in self.free:
            raise ValueError(f"block {block} is already free")
        self.free.add(block)


@dataclass
class FFSAllocator:
    """Cylinder-group allocator over a partition of ``total_blocks``."""

    total_blocks: int
    blocks_per_cylinder: int
    cylinders_per_group: int = DEFAULT_CYLINDERS_PER_GROUP
    inode_blocks_per_group: int = DEFAULT_INODE_BLOCKS_PER_GROUP
    interleave: int = DEFAULT_INTERLEAVE
    groups: list[CylinderGroup] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_blocks <= 0:
            raise ValueError("partition must contain at least one block")
        if self.groups:
            return
        group_blocks = self.blocks_per_cylinder * self.cylinders_per_group
        if group_blocks <= self.inode_blocks_per_group:
            raise ValueError("cylinder group too small for its inode area")
        first = 0
        index = 0
        while first < self.total_blocks:
            size = min(group_blocks, self.total_blocks - first)
            if size <= self.inode_blocks_per_group:
                break  # tail too small to be a group; leave unallocated
            self.groups.append(
                CylinderGroup(
                    index=index,
                    first_block=first,
                    num_blocks=size,
                    inode_blocks=self.inode_blocks_per_group,
                )
            )
            first += size
            index += 1
        if not self.groups:
            raise ValueError("partition too small for any cylinder group")

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def group_of_block(self, block: int) -> CylinderGroup:
        for group in self.groups:
            if group.first_block <= block < group.end_block:
                return group
        raise ValueError(f"block {block} is outside every cylinder group")

    def _group_with_space(self, preferred: int, needed: int) -> CylinderGroup:
        """Preferred group if it has room, else the next group that does."""
        order = range(preferred, preferred + self.num_groups)
        for raw_index in order:
            group = self.groups[raw_index % self.num_groups]
            if group.free_count >= needed:
                return group
        raise AllocationError("file system is full")

    def allocate_file_blocks(
        self, num_blocks: int, group_hint: int = 0
    ) -> list[int]:
        """Allocate ``num_blocks`` for a new file, interleaved, preferring
        the hinted cylinder group and spilling to later groups when full."""
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        blocks: list[int] = []
        remaining = num_blocks
        hint = group_hint % self.num_groups
        position: int | None = None
        while remaining > 0:
            group = self._group_with_space(hint, 1)
            if position is None or not (
                group.data_first_block <= position < group.end_block
            ):
                position = group.data_first_block - 1 - self.interleave
            take = min(remaining, group.free_count)
            for __ in range(take):
                position = group.allocate_near(position, self.interleave)
                blocks.append(position)
            remaining -= take
            hint = (group.index + 1) % self.num_groups
        return blocks

    def extend_file(self, last_block: int, num_blocks: int) -> list[int]:
        """Allocate blocks appended to a file whose tail is ``last_block``."""
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        blocks: list[int] = []
        position = last_block
        group = self.group_of_block(last_block)
        remaining = num_blocks
        while remaining > 0:
            if group.free_count == 0:
                group = self._group_with_space(group.index + 1, 1)
                position = group.data_first_block - 1 - self.interleave
            position = group.allocate_near(position, self.interleave)
            blocks.append(position)
            remaining -= 1
        return blocks

    def release_blocks(self, blocks: list[int]) -> None:
        for block in blocks:
            self.group_of_block(block).release(block)

    @property
    def free_blocks(self) -> int:
        return sum(group.free_count for group in self.groups)
