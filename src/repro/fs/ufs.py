"""A simplified UFS: files, directories, inodes, and their block layout.

This is the minimal slice of the SunOS UFS semantics the experiments
depend on (Section 3.1):

* files are arrays of logical blocks located through an **i-node**;
* i-nodes live in per-cylinder-group inode blocks, many i-nodes per block,
  so metadata writes concentrate on very few blocks;
* reading a file updates its i-node's access time — "the operating system
  itself may generate write requests to the logical device that holds a
  read-only file system.  Such requests normally represent updates to
  bookkeeping information (e.g., time stamps) in the i-nodes" — which is
  the source of the *system* file system's highly skewed write stream;
* directories steer their files' inodes to a common cylinder group.

All block numbers exposed by :class:`FileSystem` are *logical device*
(virtual-disk) addresses: partition offset plus partition-relative address.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..disk.label import Partition
from .allocator import FFSAllocator

INODES_PER_BLOCK = 64
"""I-nodes per 8 KB inode block (128-byte on-disk inodes)."""


@dataclass
class Inode:
    """File metadata: where the inode itself and the file's data live."""

    inumber: int
    inode_block: int  # logical device block holding this inode
    data_blocks: list[int] = field(default_factory=list)

    @property
    def size_blocks(self) -> int:
        return len(self.data_blocks)


@dataclass
class Directory:
    """A directory: a name and the cylinder group its files prefer."""

    name: str
    group_hint: int
    files: dict[str, Inode] = field(default_factory=dict)


class FileSystemError(Exception):
    """Raised on file-system misuse (duplicate names, missing files...)."""


@dataclass
class FileSystem:
    """One file system occupying one partition (Section 3.1).

    ``partition`` gives the virtual-disk placement; the allocator works in
    partition-relative addresses and this class translates.
    """

    partition: Partition
    blocks_per_cylinder: int
    cylinders_per_group: int = 16
    inode_blocks_per_group: int = 2
    interleave: int = 1
    read_only: bool = False
    directory_placement: str = "scatter"
    """How new directories pick a cylinder group: ``"scatter"`` spreads
    them over the whole disk (a long-lived, full file system such as the
    paper's *system* FS); ``"first-fit"`` prefers the emptiest (lowest)
    group, clustering a young, mostly-empty file system's data near the
    start of the partition (the paper's *users* FS)."""

    directories: dict[str, Directory] = field(default_factory=dict)
    _allocator: FFSAllocator = field(init=False, repr=False)
    _next_inumber: int = 0
    _next_group: int = 0

    def __post_init__(self) -> None:
        self._allocator = FFSAllocator(
            total_blocks=self.partition.num_blocks,
            blocks_per_cylinder=self.blocks_per_cylinder,
            cylinders_per_group=self.cylinders_per_group,
            inode_blocks_per_group=self.inode_blocks_per_group,
            interleave=self.interleave,
        )
        # A directory's own inode block is fixed at creation (group hint
        # and group layout never change), so the lookup is cacheable.
        self._dir_inode_cache: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Address translation
    # ------------------------------------------------------------------

    def _to_logical(self, partition_block: int) -> int:
        return self.partition.start_block + partition_block

    def _inode_block_for(self, inumber: int, group_hint: int) -> int:
        """Logical block holding inode ``inumber``.

        Inodes are packed :data:`INODES_PER_BLOCK` per block within their
        cylinder group's inode area, round-robin across the group's inode
        blocks as the group fills.
        """
        group = self._allocator.groups[group_hint % self._allocator.num_groups]
        inode_blocks = group.inode_block_numbers()
        slot = (inumber // INODES_PER_BLOCK) % len(inode_blocks)
        return self._to_logical(inode_blocks[slot])

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------

    def make_directory(self, name: str) -> Directory:
        """Create a directory; FFS places each new directory in a new
        cylinder group to spread unrelated data apart.

        Groups are chosen by a golden-ratio stride so that any number of
        directories spreads across the *whole* disk — this is what makes
        "hot blocks from different files ... spread widely over the disk's
        surface" (Section 1.1).
        """
        if name in self.directories:
            raise FileSystemError(f"directory {name!r} exists")
        groups = self._allocator.num_groups
        if self.directory_placement == "first-fit":
            # The emptiest group, lowest index first: young file systems
            # cluster near the start of the partition.
            hint = max(
                range(groups),
                key=lambda g: (self._allocator.groups[g].free_count, -g),
            )
        else:
            hint = int(
                ((self._next_group * 0.6180339887498949) % 1.0) * groups
            )
        directory = Directory(name=name, group_hint=hint % groups)
        self._next_group += 1
        self.directories[name] = directory
        return directory

    def create_file(
        self, directory: str, name: str, num_blocks: int
    ) -> Inode:
        """Create a file of ``num_blocks`` blocks in ``directory``."""
        if self.read_only:
            raise FileSystemError("file system is mounted read-only")
        return self._create(directory, name, num_blocks)

    def populate_file(
        self, directory: str, name: str, num_blocks: int
    ) -> Inode:
        """Create a file ignoring the read-only flag (initial mkfs load)."""
        return self._create(directory, name, num_blocks)

    def _create(self, directory: str, name: str, num_blocks: int) -> Inode:
        try:
            dir_entry = self.directories[directory]
        except KeyError:
            raise FileSystemError(f"no directory {directory!r}") from None
        if name in dir_entry.files:
            raise FileSystemError(f"file {directory}/{name} exists")
        inumber = self._next_inumber
        self._next_inumber += 1
        data = self._allocator.allocate_file_blocks(
            num_blocks, group_hint=dir_entry.group_hint
        )
        inode = Inode(
            inumber=inumber,
            inode_block=self._inode_block_for(inumber, dir_entry.group_hint),
            data_blocks=[self._to_logical(block) for block in data],
        )
        dir_entry.files[name] = inode
        return inode

    def extend_file(self, directory: str, name: str, num_blocks: int) -> list[int]:
        """Append blocks to an existing file; returns the new blocks."""
        if self.read_only:
            raise FileSystemError("file system is mounted read-only")
        inode = self.lookup(directory, name)
        if not inode.data_blocks:
            new = self._allocator.allocate_file_blocks(
                num_blocks, group_hint=self.directories[directory].group_hint
            )
        else:
            last = inode.data_blocks[-1] - self.partition.start_block
            new = self._allocator.extend_file(last, num_blocks)
        logical = [self._to_logical(block) for block in new]
        inode.data_blocks.extend(logical)
        return logical

    def delete_file(self, directory: str, name: str) -> None:
        if self.read_only:
            raise FileSystemError("file system is mounted read-only")
        inode = self.lookup(directory, name)
        partition_blocks = [
            block - self.partition.start_block for block in inode.data_blocks
        ]
        self._allocator.release_blocks(partition_blocks)
        del self.directories[directory].files[name]

    def rename(self, directory: str, old_name: str, new_name: str) -> Inode:
        """Rename a file within its directory (atomic save-by-rename)."""
        if self.read_only:
            raise FileSystemError("file system is mounted read-only")
        files = self.directories[directory].files
        if old_name not in files:
            raise FileSystemError(f"no file {directory}/{old_name}")
        if new_name in files:
            raise FileSystemError(f"file {directory}/{new_name} exists")
        inode = files.pop(old_name)
        files[new_name] = inode
        return inode

    def lookup(self, directory: str, name: str) -> Inode:
        try:
            return self.directories[directory].files[name]
        except KeyError:
            raise FileSystemError(f"no file {directory}/{name}") from None

    # ------------------------------------------------------------------
    # Metadata blocks written by the periodic update policy
    # ------------------------------------------------------------------

    def superblock(self) -> int:
        """Logical block of the superblock (written on every sync)."""
        return self.partition.start_block

    def directory_inode_block(self, name: str) -> int:
        """Logical block holding ``name``'s own inode.

        Directory inodes take the first slot of their group's inode area;
        path lookups update their access times, so these blocks are among
        the hottest write targets.
        """
        block = self._dir_inode_cache.get(name)
        if block is not None:
            return block
        try:
            directory = self.directories[name]
        except KeyError:
            raise FileSystemError(f"no directory {name!r}") from None
        group = self._allocator.groups[
            directory.group_hint % self._allocator.num_groups
        ]
        block = self._to_logical(group.inode_block_numbers()[0])
        self._dir_inode_cache[name] = block
        return block

    def metadata_block_of(self, logical_block: int) -> int:
        """The cylinder-group summary block covering ``logical_block``.

        FFS updates a per-group summary whenever blocks in the group
        change; we model it as the group's first block.
        """
        relative = logical_block - self.partition.start_block
        group = self._allocator.group_of_block(relative)
        return self._to_logical(group.first_block)

    # ------------------------------------------------------------------
    # Introspection used by the workload generator
    # ------------------------------------------------------------------

    def all_files(self) -> list[tuple[str, str, Inode]]:
        return [
            (dir_name, file_name, inode)
            for dir_name, directory in self.directories.items()
            for file_name, inode in directory.files.items()
        ]

    def inode_blocks_in_use(self) -> list[int]:
        """Distinct logical blocks holding live inodes."""
        return sorted(
            {inode.inode_block for __, __, inode in self.all_files()}
        )

    @property
    def free_blocks(self) -> int:
        return self._allocator.free_blocks

    @property
    def num_groups(self) -> int:
        return self._allocator.num_groups
