"""File-system substrate: FFS-style allocation, a simplified UFS, and the
buffer cache with its periodic update policy (Section 3.1)."""

from .allocator import (
    AllocationError,
    CylinderGroup,
    FFSAllocator,
)
from .buffercache import BufferCache
from .ufs import (
    Directory,
    FileSystem,
    FileSystemError,
    INODES_PER_BLOCK,
    Inode,
)

__all__ = [
    "AllocationError",
    "BufferCache",
    "CylinderGroup",
    "Directory",
    "FFSAllocator",
    "FileSystem",
    "FileSystemError",
    "INODES_PER_BLOCK",
    "Inode",
]
