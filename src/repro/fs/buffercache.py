"""The main-memory buffer cache with a periodic update (sync) policy.

Section 3.1: "All file I/O goes through the buffer cache ... a read request
is forwarded to the disk only in case the block is not found in the cache
... the system does not immediately write modified blocks back to the disk
... periodically, all dirty blocks are copied back to the disk."

That periodic flush is what makes the measured write arrival pattern
bursty, which in turn drives the paper's waiting-time results (Section
5.2).  :class:`BufferCache` is an LRU write-back cache over logical blocks;
:meth:`sync` returns (and cleans) the dirty set, which the workload
generator turns into a batch arrival at the driver.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class BufferCache:
    """LRU write-back cache of logical device blocks."""

    capacity_blocks: int
    hits: int = 0
    misses: int = 0
    write_backs: int = 0
    _entries: OrderedDict[int, bool] = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        if self.capacity_blocks <= 0:
            raise ValueError("cache must hold at least one block")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block: int) -> bool:
        return block in self._entries

    # ------------------------------------------------------------------
    # The file-system-facing operations
    # ------------------------------------------------------------------

    def read(self, block: int) -> bool:
        """Probe for a read.  Returns True on a hit.

        On a miss the block is brought into the cache (the caller is
        responsible for issuing the disk read); an evicted dirty block is
        counted as an immediate write-back and returned by the *next*
        :meth:`sync` — real systems write it out at eviction, and
        :meth:`read_with_eviction` exposes that variant.
        """
        hit, __ = self.read_with_eviction(block)
        return hit

    def read_with_eviction(self, block: int) -> tuple[bool, int | None]:
        """Probe for a read; also report an evicted dirty block, if any."""
        if block in self._entries:
            self._entries.move_to_end(block)
            self.hits += 1
            return True, None
        self.misses += 1
        evicted = self._insert(block, dirty=False)
        return False, evicted

    def write(self, block: int) -> int | None:
        """Dirty ``block`` in the cache (write-back, no disk I/O yet).

        Returns an evicted dirty block if the insertion displaced one.
        """
        if block in self._entries:
            self._entries.move_to_end(block)
            self._entries[block] = True
            self.hits += 1
            return None
        self.misses += 1
        return self._insert(block, dirty=True)

    def _insert(self, block: int, dirty: bool) -> int | None:
        evicted_dirty: int | None = None
        if len(self._entries) >= self.capacity_blocks:
            old_block, old_dirty = self._entries.popitem(last=False)
            if old_dirty:
                self.write_backs += 1
                evicted_dirty = old_block
        self._entries[block] = dirty
        return evicted_dirty

    # ------------------------------------------------------------------
    # The periodic update policy
    # ------------------------------------------------------------------

    def dirty_blocks(self) -> list[int]:
        return [block for block, dirty in self._entries.items() if dirty]

    def sync(self) -> list[int]:
        """Flush: return every dirty block (in LRU order) and mark it clean.

        The caller issues the returned blocks to the driver as one burst.
        """
        dirty = self.dirty_blocks()
        for block in dirty:
            self._entries[block] = False
        self.write_backs += len(dirty)
        return dirty

    def invalidate(self, block: int) -> None:
        self._entries.pop(block, None)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
