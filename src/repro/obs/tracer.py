"""The tracer hook interface: how the simulation is observed.

Every layer of the simulation core reports request-lifecycle milestones to
a :class:`Tracer`:

* the **driver** reports ``request_enqueued`` when the strategy routine
  accepts a request, ``seek_started`` when the disk arm starts moving for
  it, and ``service_complete`` when the disk returns it;
* the **rearrangement controller** brackets the nightly block moves with
  ``rearrangement_begin`` / ``rearrangement_end``.

The engine owns one tracer per :class:`~repro.sim.engine.Simulation` and
threads it down to every registered device driver and attached controller,
so a single tracer observes the whole machine.  The default is
:data:`NULL_TRACER`, whose hooks are all no-ops — the hot path pays only
an attribute lookup and an empty call.

This module is a leaf: it imports nothing from the rest of ``repro`` so
that the driver, engine and controller can all depend on it without
cycles.  Concrete tracers with heavier dependencies live in
:mod:`repro.obs.metrics` (histogram/counting) and :mod:`repro.obs.jsonl`
(trace files).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..driver.request import DiskRequest


class Tracer:
    """Observation hooks for the request lifecycle.

    Subclass and override any subset; the base implementations do nothing,
    so a tracer only pays for the events it cares about.  ``device`` is the
    name under which the driver is registered with the simulation engine,
    which is what makes multi-device traces attributable.
    """

    def request_enqueued(
        self,
        device: str,
        request: DiskRequest,
        now_ms: float,
        queue_depth: int,
    ) -> None:
        """The driver's strategy routine accepted ``request``."""

    def seek_started(
        self,
        device: str,
        request: DiskRequest,
        now_ms: float,
        seek_distance: int,
    ) -> None:
        """The disk started moving its arm to service ``request``."""

    def service_complete(
        self, device: str, request: DiskRequest, now_ms: float
    ) -> None:
        """The disk finished ``request`` (all timestamps are filled in)."""

    def rearrangement_begin(
        self, device: str, now_ms: float, num_blocks: int
    ) -> None:
        """The nightly cycle started (``num_blocks`` requested; 0 = clean)."""

    def rearrangement_end(
        self, device: str, now_ms: float, moved_blocks: int
    ) -> None:
        """The nightly cycle finished after moving ``moved_blocks``."""

    def fault_injected(
        self,
        device: str,
        now_ms: float,
        block: int,
        kind: str,
        is_read: bool,
    ) -> None:
        """The injector faulted an access to ``block`` (``kind`` is
        ``"transient"`` or ``"media"``)."""

    def retry(
        self,
        device: str,
        now_ms: float,
        block: int,
        attempt: int,
        is_read: bool,
    ) -> None:
        """The driver started bounded retry ``attempt`` for ``block``."""

    def idle_window(
        self, device: str, now_ms: float, budget_moves: int
    ) -> None:
        """The online rearranger opened a migration window on an idle
        ``device`` (at most ``budget_moves`` block moves this window)."""

    def migration_move(
        self,
        device: str,
        now_ms: float,
        logical_block: int,
        reserved_block: int,
        ios: int,
    ) -> None:
        """One incremental block move committed: ``logical_block`` now
        lives at ``reserved_block`` after ``ios`` queued migration I/Os."""

    def gc_run(
        self,
        device: str,
        now_ms: float,
        victim_block: int,
        policy: str,
        moved_pages: int,
        erase_count: int,
    ) -> None:
        """The FTL collected ``victim_block`` under ``policy``, migrating
        ``moved_pages`` live pages before the erase (the block's
        ``erase_count`` includes this one)."""

    def mapping_writeback(
        self, device: str, now_ms: float, tvpn: int, entries: int
    ) -> None:
        """The FTL flushed ``entries`` dirty mapping entries of
        translation page ``tvpn`` to flash (a mapping-cache eviction or
        a GC-driven rewrite)."""

    def wear_level(
        self, device: str, now_ms: float, max_erase: int, mean_erase: float
    ) -> None:
        """End-of-day wear snapshot: per-block erase-count maximum and
        mean across the whole device."""

    def recovery_begin(
        self, device: str, now_ms: float, disk_entries: int
    ) -> None:
        """Post-crash recovery started (``disk_entries`` in the on-disk
        block-table copy about to be re-read)."""

    def recovery_end(
        self, device: str, now_ms: float, recovered_entries: int
    ) -> None:
        """Recovery finished with ``recovered_entries`` rebuilt, all
        conservatively dirty."""

    def close(self) -> None:
        """Release any resources (files, sockets).  Default: nothing."""


class NullTracer(Tracer):
    """The do-nothing tracer; inherits every no-op hook."""


NULL_TRACER = NullTracer()
"""Shared default tracer.  Layers treat *identity* with this object as
"no tracer installed", which lets the engine thread its own tracer into
drivers and controllers without clobbering one set explicitly."""


class MulticastTracer(Tracer):
    """Fan every event out to several tracers, in registration order."""

    def __init__(self, tracers: Iterable[Tracer]) -> None:
        self.tracers: list[Tracer] = list(tracers)

    def request_enqueued(self, device, request, now_ms, queue_depth):
        for tracer in self.tracers:
            tracer.request_enqueued(device, request, now_ms, queue_depth)

    def seek_started(self, device, request, now_ms, seek_distance):
        for tracer in self.tracers:
            tracer.seek_started(device, request, now_ms, seek_distance)

    def service_complete(self, device, request, now_ms):
        for tracer in self.tracers:
            tracer.service_complete(device, request, now_ms)

    def rearrangement_begin(self, device, now_ms, num_blocks):
        for tracer in self.tracers:
            tracer.rearrangement_begin(device, now_ms, num_blocks)

    def rearrangement_end(self, device, now_ms, moved_blocks):
        for tracer in self.tracers:
            tracer.rearrangement_end(device, now_ms, moved_blocks)

    def fault_injected(self, device, now_ms, block, kind, is_read):
        for tracer in self.tracers:
            tracer.fault_injected(device, now_ms, block, kind, is_read)

    def retry(self, device, now_ms, block, attempt, is_read):
        for tracer in self.tracers:
            tracer.retry(device, now_ms, block, attempt, is_read)

    def idle_window(self, device, now_ms, budget_moves):
        for tracer in self.tracers:
            tracer.idle_window(device, now_ms, budget_moves)

    def migration_move(
        self, device, now_ms, logical_block, reserved_block, ios
    ):
        for tracer in self.tracers:
            tracer.migration_move(
                device, now_ms, logical_block, reserved_block, ios
            )

    def gc_run(
        self, device, now_ms, victim_block, policy, moved_pages, erase_count
    ):
        for tracer in self.tracers:
            tracer.gc_run(
                device, now_ms, victim_block, policy, moved_pages, erase_count
            )

    def mapping_writeback(self, device, now_ms, tvpn, entries):
        for tracer in self.tracers:
            tracer.mapping_writeback(device, now_ms, tvpn, entries)

    def wear_level(self, device, now_ms, max_erase, mean_erase):
        for tracer in self.tracers:
            tracer.wear_level(device, now_ms, max_erase, mean_erase)

    def recovery_begin(self, device, now_ms, disk_entries):
        for tracer in self.tracers:
            tracer.recovery_begin(device, now_ms, disk_entries)

    def recovery_end(self, device, now_ms, recovered_entries):
        for tracer in self.tracers:
            tracer.recovery_end(device, now_ms, recovered_entries)

    def close(self):
        for tracer in self.tracers:
            tracer.close()
