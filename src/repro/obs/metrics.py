"""Counting/histogram tracer: in-memory metrics from lifecycle events.

:class:`MetricsTracer` is the observability counterpart of the driver's
own performance tables — it rebuilds the same per-class seek/service/
queueing distributions, but from tracer events, keeping one
:class:`~repro.driver.monitor.PerformanceMonitor` per device plus plain
event counters.  Feeding :mod:`repro.stats.metrics` from it therefore
yields the *same* :class:`~repro.stats.metrics.DayMetrics` the driver
reports through ``DKIOCREADSTATS``, which is what makes traces (live or
replayed from JSONL) directly comparable with the paper's tables.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from ..driver.monitor import PerformanceMonitor
from ..stats.metrics import DayMetrics
from .tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..disk.seek import SeekModel


class MetricsTracer(Tracer):
    """Accumulate per-device event counts and performance histograms."""

    def __init__(self) -> None:
        self.event_counts: Counter[tuple[str, str]] = Counter()
        self._monitors: dict[str, PerformanceMonitor] = {}
        self.max_queue_depth: dict[str, int] = {}
        self.rearranged_blocks: Counter[str] = Counter()

    def _monitor(self, device: str) -> PerformanceMonitor:
        if device not in self._monitors:
            self._monitors[device] = PerformanceMonitor()
        return self._monitors[device]

    # -- hook implementations -------------------------------------------

    def request_enqueued(self, device, request, now_ms, queue_depth):
        self.event_counts[(device, "request-enqueued")] += 1
        if queue_depth > self.max_queue_depth.get(device, 0):
            self.max_queue_depth[device] = queue_depth
        self._monitor(device).note_arrival(request)

    def seek_started(self, device, request, now_ms, seek_distance):
        self.event_counts[(device, "seek-started")] += 1

    def service_complete(self, device, request, now_ms):
        self.event_counts[(device, "service-complete")] += 1
        self._monitor(device).note_completion(request)

    def rearrangement_begin(self, device, now_ms, num_blocks):
        self.event_counts[(device, "rearrangement-begin")] += 1

    def rearrangement_end(self, device, now_ms, moved_blocks):
        self.event_counts[(device, "rearrangement-end")] += 1
        self.rearranged_blocks[device] += moved_blocks

    def fault_injected(self, device, now_ms, block, kind, is_read):
        self.event_counts[(device, "fault-injected")] += 1
        self._monitor(device).note_fault(is_read)

    def retry(self, device, now_ms, block, attempt, is_read):
        self.event_counts[(device, "retry")] += 1
        self._monitor(device).note_retry(is_read)

    def recovery_begin(self, device, now_ms, disk_entries):
        self.event_counts[(device, "recovery-begin")] += 1

    def recovery_end(self, device, now_ms, recovered_entries):
        self.event_counts[(device, "recovery-end")] += 1

    # -- reductions ------------------------------------------------------

    @property
    def devices(self) -> list[str]:
        return sorted(self._monitors)

    def counts(self, device: str) -> dict[str, int]:
        """Event counts for one device, keyed by event kind."""
        return {
            kind: count
            for (dev, kind), count in sorted(self.event_counts.items())
            if dev == device
        }

    def monitor(self, device: str) -> PerformanceMonitor:
        """The accumulating performance monitor for ``device``."""
        return self._monitor(device)

    def day_metrics(
        self,
        device: str,
        seek_model: SeekModel,
        day: int = 0,
        rearranged: bool = False,
    ) -> DayMetrics:
        """Reduce one device's accumulated tables to :class:`DayMetrics`.

        Reads and clears the device's tables, mirroring the
        ``DKIOCREADSTATS`` semantics of the driver path.
        """
        return DayMetrics.from_tables(
            self._monitor(device).read_and_clear(),
            seek_model,
            day=day,
            rearranged=rearranged,
        )
