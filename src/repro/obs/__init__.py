"""Instrumentation layer: tracer hooks, metrics tracers, JSONL traces.

The simulation core (engine, drivers, rearrangement controller) reports
request-lifecycle milestones to a :class:`Tracer`.  This package provides
the hook interface, the default no-op tracer, a counting/histogram tracer
that feeds :mod:`repro.stats.metrics`, and a JSONL trace writer whose
files replay into the same :class:`~repro.stats.metrics.DayMetrics` the
live run produced.
"""

from .jsonl import (
    JsonlTraceWriter,
    TraceScanStats,
    iter_trace,
    replay_day_metrics,
    replay_monitors,
)
from .metrics import MetricsTracer
from .progress import ShardProgress
from .tracer import NULL_TRACER, MulticastTracer, NullTracer, Tracer

__all__ = [
    "JsonlTraceWriter",
    "MetricsTracer",
    "MulticastTracer",
    "NULL_TRACER",
    "NullTracer",
    "ShardProgress",
    "Tracer",
    "TraceScanStats",
    "iter_trace",
    "replay_day_metrics",
    "replay_monitors",
]
