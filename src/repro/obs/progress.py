"""Progress reporting for long fan-outs (fleet shards, campaigns).

:class:`ShardProgress` is shaped to plug straight into
:func:`repro.parallel.fan_out`'s hooks: the parent process calls it in
task order as each unit of work completes (``on_result``), and its
:meth:`note_retry` / :meth:`note_failure` methods attach to the
executor's ``on_retry`` / ``on_failure`` hooks so retried attempts and
permanently failed shards show up in the heartbeat the moment they
happen — a 1,000-device fleet run shows steady forward motion, and a
degrading one shows exactly which shard is burning attempts, instead of
minutes of silence.
"""

from __future__ import annotations

import sys
import time
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel import TaskFailure

__all__ = ["ShardProgress"]


class ShardProgress:
    """Line-per-completion progress writer for parallel runs."""

    def __init__(
        self,
        total: int,
        stream: IO[str] | None = None,
        what: str = "shard",
    ) -> None:
        if total < 1:
            raise ValueError("total must be positive")
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.what = what
        self.completed = 0
        self.retried = 0
        self.failed = 0
        self._started = time.monotonic()

    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def _counters(self) -> str:
        """``", 2 retried, 1 failed"`` — empty while nothing went wrong."""
        parts = []
        if self.retried:
            parts.append(f"{self.retried} retried")
        if self.failed:
            parts.append(f"{self.failed} failed")
        return (", " + ", ".join(parts)) if parts else ""

    def __call__(self, index: int, result: object) -> None:
        self.completed += 1
        requests = getattr(result, "requests", None)
        detail = f", {requests} requests" if requests is not None else ""
        self.stream.write(
            f"[{self.completed}/{self.total}] {self.what} {index} done"
            f"{detail} ({self.elapsed_s():.1f}s elapsed{self._counters()})\n"
        )
        self.stream.flush()

    def note_retry(self, failure: "TaskFailure") -> None:
        """``on_retry`` hook: one attempt failed and will be re-run."""
        self.retried += 1
        self.stream.write(
            f"[retry] {failure.context}: attempt {failure.attempts} "
            f"{failure.kind} ({failure.cause}); re-dispatching\n"
        )
        self.stream.flush()

    def note_failure(self, failure: "TaskFailure") -> None:
        """``on_failure`` hook: a task exhausted its attempts."""
        self.completed += 1
        self.failed += 1
        self.stream.write(
            f"[{self.completed}/{self.total}] {failure.context} FAILED "
            f"after {failure.attempts} attempt(s): {failure.kind} "
            f"({failure.cause})\n"
        )
        self.stream.flush()
