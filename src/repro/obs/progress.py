"""Progress reporting for long fan-outs (fleet shards, campaigns).

:class:`ShardProgress` is shaped to plug straight into
:func:`repro.parallel.fan_out`'s ``on_result`` hook: the parent process
calls it in task order as each unit of work completes, and it writes a
one-line heartbeat per completion — which shard finished, how many are
done, elapsed wall time, and the unit's request count when it has one.
A 1,000-device fleet run then shows steady forward motion instead of
minutes of silence.
"""

from __future__ import annotations

import sys
import time
from typing import IO

__all__ = ["ShardProgress"]


class ShardProgress:
    """Line-per-completion progress writer for parallel runs."""

    def __init__(
        self,
        total: int,
        stream: IO[str] | None = None,
        what: str = "shard",
    ) -> None:
        if total < 1:
            raise ValueError("total must be positive")
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.what = what
        self.completed = 0
        self._started = time.monotonic()

    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def __call__(self, index: int, result: object) -> None:
        self.completed += 1
        requests = getattr(result, "requests", None)
        detail = f", {requests} requests" if requests is not None else ""
        self.stream.write(
            f"[{self.completed}/{self.total}] {self.what} {index} done"
            f"{detail} ({self.elapsed_s():.1f}s elapsed)\n"
        )
        self.stream.flush()
