"""JSONL request-lifecycle traces: write, read, and replay into metrics.

:class:`JsonlTraceWriter` is a :class:`~repro.obs.tracer.Tracer` that
appends one JSON object per event to a file.  Every field the driver's
performance tables depend on is captured, so a trace can be *replayed*
through a fresh :class:`~repro.driver.monitor.PerformanceMonitor` and
reduced to the exact same :class:`~repro.stats.metrics.DayMetrics` the
live run produced (Python's JSON float round-trip is exact, and events
are written in the order the monitors consumed them).

Line shapes (``event`` discriminates)::

    {"event": "request-enqueued", "device": ..., "t": ..., "rid": ...,
     "lbn": ..., "op": "read"|"write", "arrival_ms": ..., "home_cyl": ...,
     "target": ..., "redirected": ..., "depth": ...}
    {"event": "seek-started", "device": ..., "t": ..., "rid": ...,
     "distance": ...}
    {"event": "service-complete", "device": ..., "t": ..., "rid": ...,
     "op": ..., "arrival_ms": ..., "submit_ms": ..., "complete_ms": ...,
     "distance": ..., "seek_ms": ..., "rotation_ms": ..., "transfer_ms": ...,
     "buffer_hit": ...}
    {"event": "rearrangement-begin"|"rearrangement-end", "device": ...,
     "t": ..., "blocks": ...}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterator, Mapping

from ..driver.monitor import PerformanceMonitor
from ..driver.request import DiskRequest, Op
from ..stats.metrics import DayMetrics
from .tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..disk.seek import SeekModel


class JsonlTraceWriter(Tracer):
    """Write request-lifecycle events to a JSONL file (or open stream).

    A closed writer silently drops further events rather than raising:
    simulations may outlive the tracer observing them (e.g. one traced
    day of a longer campaign), and instrumentation must never crash the
    system it observes.
    """

    def __init__(self, destination: str | Path | IO[str]) -> None:
        if hasattr(destination, "write"):
            self._stream: IO[str] = destination  # type: ignore[assignment]
            self._owns_stream = False
        else:
            self._stream = open(destination, "w", encoding="utf-8")
            self._owns_stream = True
        self.events_written = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def _emit(self, record: dict) -> None:
        if self._closed:
            return
        self._stream.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.events_written += 1

    # -- hook implementations -------------------------------------------

    def request_enqueued(self, device, request, now_ms, queue_depth):
        self._emit(
            {
                "event": "request-enqueued",
                "device": device,
                "t": now_ms,
                "rid": request.request_id,
                "lbn": request.logical_block,
                "op": request.op.value,
                "arrival_ms": request.arrival_ms,
                "home_cyl": request.home_cylinder,
                "target": request.target_block,
                "redirected": request.redirected,
                "depth": queue_depth,
            }
        )

    def seek_started(self, device, request, now_ms, seek_distance):
        self._emit(
            {
                "event": "seek-started",
                "device": device,
                "t": now_ms,
                "rid": request.request_id,
                "distance": seek_distance,
            }
        )

    def service_complete(self, device, request, now_ms):
        self._emit(
            {
                "event": "service-complete",
                "device": device,
                "t": now_ms,
                "rid": request.request_id,
                "op": request.op.value,
                "arrival_ms": request.arrival_ms,
                "submit_ms": request.submit_ms,
                "complete_ms": request.complete_ms,
                "distance": request.seek_distance,
                "seek_ms": request.seek_ms,
                "rotation_ms": request.rotation_ms,
                "transfer_ms": request.transfer_ms,
                "buffer_hit": request.buffer_hit,
            }
        )

    def rearrangement_begin(self, device, now_ms, num_blocks):
        self._emit(
            {
                "event": "rearrangement-begin",
                "device": device,
                "t": now_ms,
                "blocks": num_blocks,
            }
        )

    def rearrangement_end(self, device, now_ms, moved_blocks):
        self._emit(
            {
                "event": "rearrangement-end",
                "device": device,
                "t": now_ms,
                "blocks": moved_blocks,
            }
        )

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        if self._owns_stream and not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_trace(path: str | Path) -> Iterator[dict]:
    """Yield trace records from a JSONL file, skipping blank lines."""
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                yield json.loads(line)


def replay_monitors(path: str | Path) -> dict[str, PerformanceMonitor]:
    """Re-drive per-device performance monitors from a JSONL trace.

    ``request-enqueued`` records feed arrivals (in their original strategy
    order, which the arrival-order/FCFS seek distribution depends on) and
    ``service-complete`` records feed completions, so the reconstructed
    tables match the live driver's bit for bit.
    """
    monitors: dict[str, PerformanceMonitor] = {}
    for record in iter_trace(path):
        device = record["device"]
        kind = record["event"]
        if kind == "request-enqueued":
            request = DiskRequest(
                logical_block=record["lbn"],
                op=Op(record["op"]),
                arrival_ms=record["arrival_ms"],
            )
            request.home_cylinder = record["home_cyl"]
            monitors.setdefault(device, PerformanceMonitor()).note_arrival(
                request
            )
        elif kind == "service-complete":
            request = DiskRequest(
                logical_block=-1,  # not used by completion accounting
                op=Op(record["op"]),
                arrival_ms=record["arrival_ms"],
            )
            request.submit_ms = record["submit_ms"]
            request.complete_ms = record["complete_ms"]
            request.seek_distance = record["distance"]
            request.seek_ms = record["seek_ms"]
            request.rotation_ms = record["rotation_ms"]
            request.transfer_ms = record["transfer_ms"]
            request.buffer_hit = record["buffer_hit"]
            monitors.setdefault(device, PerformanceMonitor()).note_completion(
                request
            )
    return monitors


def replay_day_metrics(
    path: str | Path,
    seek_model: SeekModel | Mapping[str, SeekModel],
    day: int = 0,
    rearranged: bool = False,
) -> dict[str, DayMetrics]:
    """Replay a JSONL trace into per-device :class:`DayMetrics`.

    ``seek_model`` is either one model shared by every device in the
    trace or a ``{device: model}`` mapping when the devices differ (the
    FCFS counterfactual converts home-cylinder seek distances to times,
    which is geometry-specific).
    """
    models: Mapping[str, SeekModel] | None = (
        seek_model if isinstance(seek_model, Mapping) else None
    )
    metrics: dict[str, DayMetrics] = {}
    for device, monitor in replay_monitors(path).items():
        model = models[device] if models is not None else seek_model
        metrics[device] = DayMetrics.from_tables(
            monitor.read_and_clear(), model, day=day, rearranged=rearranged
        )
    return metrics
