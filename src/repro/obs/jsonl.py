"""JSONL request-lifecycle traces: write, read, and replay into metrics.

:class:`JsonlTraceWriter` is a :class:`~repro.obs.tracer.Tracer` that
appends one JSON object per event to a file.  Every field the driver's
performance tables depend on is captured, so a trace can be *replayed*
through a fresh :class:`~repro.driver.monitor.PerformanceMonitor` and
reduced to the exact same :class:`~repro.stats.metrics.DayMetrics` the
live run produced (Python's JSON float round-trip is exact, and events
are written in the order the monitors consumed them).

Line shapes (``event`` discriminates)::

    {"event": "request-enqueued", "device": ..., "t": ..., "rid": ...,
     "lbn": ..., "op": "read"|"write", "arrival_ms": ..., "home_cyl": ...,
     "target": ..., "redirected": ..., "depth": ...}
    {"event": "seek-started", "device": ..., "t": ..., "rid": ...,
     "distance": ...}
    {"event": "service-complete", "device": ..., "t": ..., "rid": ...,
     "op": ..., "arrival_ms": ..., "submit_ms": ..., "complete_ms": ...,
     "distance": ..., "seek_ms": ..., "rotation_ms": ..., "transfer_ms": ...,
     "buffer_hit": ...}
    {"event": "rearrangement-begin"|"rearrangement-end", "device": ...,
     "t": ..., "blocks": ...}
    {"event": "idle-window", "device": ..., "t": ..., "budget_moves": ...}
    {"event": "migration-move", "device": ..., "t": ..., "lbn": ...,
     "reserved": ..., "ios": ...}
    {"event": "gc-run", "device": ..., "t": ..., "victim": ...,
     "policy": "greedy"|"cost-benefit", "moved": ..., "erases": ...}
    {"event": "mapping-writeback", "device": ..., "t": ..., "tvpn": ...,
     "entries": ...}
    {"event": "wear-level", "device": ..., "t": ..., "max_erase": ...,
     "mean_erase": ...}
    {"event": "fault-injected", "device": ..., "t": ..., "block": ...,
     "kind": "transient"|"media", "op": "read"|"write"}
    {"event": "retry", "device": ..., "t": ..., "block": ...,
     "attempt": ..., "op": "read"|"write"}
    {"event": "recovery-begin"|"recovery-end", "device": ..., "t": ...,
     "entries": ...}

Reading is tolerant of damage the fault model itself motivates: a crash
mid-write leaves a truncated (or otherwise malformed) trailing line, which
:func:`iter_trace` skips and counts rather than refusing the whole trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterator, Mapping

from ..driver.monitor import PerformanceMonitor
from ..driver.request import DiskRequest, Op
from ..stats.metrics import DayMetrics
from .tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..disk.seek import SeekModel


class JsonlTraceWriter(Tracer):
    """Write request-lifecycle events to a JSONL file (or open stream).

    A closed writer silently drops further events rather than raising:
    simulations may outlive the tracer observing them (e.g. one traced
    day of a longer campaign), and instrumentation must never crash the
    system it observes.
    """

    def __init__(self, destination: str | Path | IO[str]) -> None:
        if hasattr(destination, "write"):
            self._stream: IO[str] = destination  # type: ignore[assignment]
            self._owns_stream = False
        else:
            self._stream = open(destination, "w", encoding="utf-8")
            self._owns_stream = True
        self.events_written = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def _emit(self, record: dict) -> None:
        if self._closed:
            return
        self._stream.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.events_written += 1

    # -- hook implementations -------------------------------------------

    def request_enqueued(self, device, request, now_ms, queue_depth):
        self._emit(
            {
                "event": "request-enqueued",
                "device": device,
                "t": now_ms,
                "rid": request.request_id,
                "lbn": request.logical_block,
                "op": request.op.value,
                "arrival_ms": request.arrival_ms,
                "home_cyl": request.home_cylinder,
                "target": request.target_block,
                "redirected": request.redirected,
                "depth": queue_depth,
            }
        )

    def seek_started(self, device, request, now_ms, seek_distance):
        self._emit(
            {
                "event": "seek-started",
                "device": device,
                "t": now_ms,
                "rid": request.request_id,
                "distance": seek_distance,
            }
        )

    def service_complete(self, device, request, now_ms):
        self._emit(
            {
                "event": "service-complete",
                "device": device,
                "t": now_ms,
                "rid": request.request_id,
                "op": request.op.value,
                "arrival_ms": request.arrival_ms,
                "submit_ms": request.submit_ms,
                "complete_ms": request.complete_ms,
                "distance": request.seek_distance,
                "seek_ms": request.seek_ms,
                "rotation_ms": request.rotation_ms,
                "transfer_ms": request.transfer_ms,
                "buffer_hit": request.buffer_hit,
            }
        )

    def rearrangement_begin(self, device, now_ms, num_blocks):
        self._emit(
            {
                "event": "rearrangement-begin",
                "device": device,
                "t": now_ms,
                "blocks": num_blocks,
            }
        )

    def rearrangement_end(self, device, now_ms, moved_blocks):
        self._emit(
            {
                "event": "rearrangement-end",
                "device": device,
                "t": now_ms,
                "blocks": moved_blocks,
            }
        )

    def idle_window(self, device, now_ms, budget_moves):
        self._emit(
            {
                "event": "idle-window",
                "device": device,
                "t": now_ms,
                "budget_moves": budget_moves,
            }
        )

    def migration_move(
        self, device, now_ms, logical_block, reserved_block, ios
    ):
        self._emit(
            {
                "event": "migration-move",
                "device": device,
                "t": now_ms,
                "lbn": logical_block,
                "reserved": reserved_block,
                "ios": ios,
            }
        )

    def fault_injected(self, device, now_ms, block, kind, is_read):
        self._emit(
            {
                "event": "fault-injected",
                "device": device,
                "t": now_ms,
                "block": block,
                "kind": kind,
                "op": "read" if is_read else "write",
            }
        )

    def retry(self, device, now_ms, block, attempt, is_read):
        self._emit(
            {
                "event": "retry",
                "device": device,
                "t": now_ms,
                "block": block,
                "attempt": attempt,
                "op": "read" if is_read else "write",
            }
        )

    def gc_run(
        self, device, now_ms, victim_block, policy, moved_pages, erase_count
    ):
        self._emit(
            {
                "event": "gc-run",
                "device": device,
                "t": now_ms,
                "victim": victim_block,
                "policy": policy,
                "moved": moved_pages,
                "erases": erase_count,
            }
        )

    def mapping_writeback(self, device, now_ms, tvpn, entries):
        self._emit(
            {
                "event": "mapping-writeback",
                "device": device,
                "t": now_ms,
                "tvpn": tvpn,
                "entries": entries,
            }
        )

    def wear_level(self, device, now_ms, max_erase, mean_erase):
        self._emit(
            {
                "event": "wear-level",
                "device": device,
                "t": now_ms,
                "max_erase": max_erase,
                "mean_erase": mean_erase,
            }
        )

    def recovery_begin(self, device, now_ms, disk_entries):
        self._emit(
            {
                "event": "recovery-begin",
                "device": device,
                "t": now_ms,
                "entries": disk_entries,
            }
        )

    def recovery_end(self, device, now_ms, recovered_entries):
        self._emit(
            {
                "event": "recovery-end",
                "device": device,
                "t": now_ms,
                "entries": recovered_entries,
            }
        )

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        if self._owns_stream and not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class TraceScanStats:
    """What :func:`iter_trace` skipped while scanning one file.

    Pass an instance in to collect the counts; a nonzero
    ``malformed_lines`` most commonly means the writer died mid-line
    (e.g. a simulated crash during a traced run truncated the tail).
    """

    malformed_lines: int = 0
    last_malformed_lineno: int | None = None


def iter_trace(
    path: str | Path, stats: TraceScanStats | None = None
) -> Iterator[dict]:
    """Yield trace records from a JSONL file, skipping blank lines.

    Malformed lines — truncated JSON, stray garbage, or a non-object
    payload — are skipped and counted in ``stats`` instead of aborting
    the scan, so a trace whose tail was lost to a crash still replays.
    """
    with open(path, "r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                record = None
            if not isinstance(record, dict):
                if stats is not None:
                    stats.malformed_lines += 1
                    stats.last_malformed_lineno = lineno
                continue
            yield record


def replay_monitors(
    path: str | Path, stats: TraceScanStats | None = None
) -> dict[str, PerformanceMonitor]:
    """Re-drive per-device performance monitors from a JSONL trace.

    ``request-enqueued`` records feed arrivals (in their original strategy
    order, which the arrival-order/FCFS seek distribution depends on) and
    ``service-complete`` records feed completions, so the reconstructed
    tables match the live driver's bit for bit.  ``fault-injected`` and
    ``retry`` records feed the per-class error/retry counters the same
    way, so faulty runs replay to identical metrics too.
    """
    monitors: dict[str, PerformanceMonitor] = {}
    for record in iter_trace(path, stats):
        device = record["device"]
        kind = record["event"]
        if kind == "request-enqueued":
            request = DiskRequest(
                logical_block=record["lbn"],
                op=Op(record["op"]),
                arrival_ms=record["arrival_ms"],
            )
            request.home_cylinder = record["home_cyl"]
            monitors.setdefault(device, PerformanceMonitor()).note_arrival(
                request
            )
        elif kind == "service-complete":
            request = DiskRequest(
                logical_block=-1,  # not used by completion accounting
                op=Op(record["op"]),
                arrival_ms=record["arrival_ms"],
            )
            request.submit_ms = record["submit_ms"]
            request.complete_ms = record["complete_ms"]
            request.seek_distance = record["distance"]
            request.seek_ms = record["seek_ms"]
            request.rotation_ms = record["rotation_ms"]
            request.transfer_ms = record["transfer_ms"]
            request.buffer_hit = record["buffer_hit"]
            monitors.setdefault(device, PerformanceMonitor()).note_completion(
                request
            )
        elif kind == "fault-injected":
            monitors.setdefault(device, PerformanceMonitor()).note_fault(
                record["op"] == "read"
            )
        elif kind == "retry":
            monitors.setdefault(device, PerformanceMonitor()).note_retry(
                record["op"] == "read"
            )
    return monitors


def replay_day_metrics(
    path: str | Path,
    seek_model: SeekModel | Mapping[str, SeekModel],
    day: int = 0,
    rearranged: bool = False,
    stats: TraceScanStats | None = None,
) -> dict[str, DayMetrics]:
    """Replay a JSONL trace into per-device :class:`DayMetrics`.

    ``seek_model`` is either one model shared by every device in the
    trace or a ``{device: model}`` mapping when the devices differ (the
    FCFS counterfactual converts home-cylinder seek distances to times,
    which is geometry-specific).
    """
    models: Mapping[str, SeekModel] | None = (
        seek_model if isinstance(seek_model, Mapping) else None
    )
    metrics: dict[str, DayMetrics] = {}
    for device, monitor in replay_monitors(path, stats).items():
        model = models[device] if models is not None else seek_model
        metrics[device] = DayMetrics.from_tables(
            monitor.read_and_clear(), model, day=day, rearranged=rearranged
        )
    return metrics
