"""Stable, typed entry points — the supported public surface.

Scripts and notebooks should import from here::

    from repro.api import simulate_day, run_campaign, run_bench

    day = simulate_day(hours=0.25, policy="nightly")
    print(day.metrics.all.mean_seek_time_ms)

Deep imports (``repro.sim.experiment`` and friends) keep working, but
their layout may shift between releases; renamed keywords get one release
of :class:`DeprecationWarning` and are then removed with an error naming
the replacement (see ``docs/api.md``).  The names in this module's
``__all__`` do not break.

Every function returns the library's typed result objects —
:class:`~repro.sim.experiment.DayResult`,
:class:`~repro.sim.experiment.CampaignResult`,
:class:`~repro.bench.runner.BenchReport` and
:class:`~repro.traces.replay.TraceReplayResult` — never bare dicts.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from pathlib import Path

from ._compat import removed_alias
from .bench import BenchReport, get_scenarios, run_suite
from .fleet import FleetResult, FleetSpec
from .fleet import run_fleet as _run_fleet
from .obs.tracer import NULL_TRACER, Tracer
from .policy import (
    NightlyPolicy,
    NoRearrangement,
    OnlinePolicy,
    RearrangementPolicy,
)
from .sim.experiment import (
    CampaignResult,
    DayResult,
    Experiment,
    ExperimentConfig,
    alternating_schedule,
)
from .sim.experiment import run_campaign as _run_campaign
from .sim.ssd import SsdConfig, SsdDayResult, SsdExperiment
from .traces.ingest import ingest_trace
from .traces.replay import SsdReplayResult, TraceReplayResult, replay_jobs
from .traces.rescale import DEFAULT_GAP_MS
from .workload.profiles import PROFILES, WorkloadProfile

__all__ = [
    "BenchReport",
    "CampaignResult",
    "DayResult",
    "ExperimentConfig",
    "FleetResult",
    "FleetSpec",
    "NightlyPolicy",
    "NoRearrangement",
    "OnlinePolicy",
    "RearrangementPolicy",
    "SsdConfig",
    "SsdDayResult",
    "SsdExperiment",
    "SsdReplayResult",
    "TraceReplayResult",
    "make_config",
    "replay_trace",
    "run_bench",
    "run_campaign",
    "run_fleet",
    "simulate_day",
]

def make_config(
    profile: str | WorkloadProfile = "system",
    disk: str = "toshiba",
    *,
    hours: float | None = None,
    seed: int = 1993,
    **overrides: object,
) -> ExperimentConfig | SsdConfig:
    """Build an :class:`ExperimentConfig` (or :class:`SsdConfig`) from
    short names.

    ``profile`` is a preset name (``"system"`` or ``"users"``) or a full
    :class:`WorkloadProfile`; ``disk`` is ``"toshiba"``, ``"fujitsu"``,
    the ~8 GB ``"modern"`` scale-testing drive, or ``"ssd"`` for the
    page-mapped flash backend (``docs/ftl.md``); ``hours`` shortens the
    simulated day (the paper's days are 15 h — 0.1 to 0.25 keeps a day
    under a second).  Any remaining keywords pass through to the config
    class unchanged — :class:`ExperimentConfig` takes ``num_blocks=``,
    ``placement_policy=``, ``faults=``, ``counter="spacesaving"`` for the
    bounded top-k sketch of ``docs/scaling.md``, ...; with ``disk="ssd"``
    the FTL knobs apply instead (``cmt_capacity=``, ``gc_policy=``,
    ``hot_threshold=``, ``reference_disk=``, ...).
    """
    if isinstance(profile, str):
        try:
            profile = PROFILES[profile]
        except KeyError:
            known = ", ".join(sorted(PROFILES))
            raise KeyError(
                f"unknown profile {profile!r}; known: {known}"
            ) from None
    if hours is not None:
        profile = profile.scaled(hours)
    if disk == "ssd":
        return SsdConfig(profile=profile, seed=seed, **overrides)
    return ExperimentConfig(profile=profile, disk=disk, seed=seed, **overrides)


@removed_alias(rearranged="policy")
def simulate_day(
    config: ExperimentConfig | SsdConfig | None = None,
    *,
    policy: RearrangementPolicy | str | None = None,
    profile: str | WorkloadProfile = "system",
    disk: str = "toshiba",
    hours: float | None = None,
    seed: int = 1993,
    tracer: Tracer = NULL_TRACER,
) -> DayResult | SsdDayResult:
    """Simulate one measurement day and return its :class:`DayResult`.

    ``policy`` selects *when* blocks move (``repro.policy``):

    * ``None`` (default) — a plain monitoring day; nothing moves.
    * ``"nightly"`` / :class:`NightlyPolicy` — a training (off) day runs
      first — the paper needs one day of reference counts before blocks
      can move — and the second, rearranged day is returned.
    * ``"online"`` / :class:`OnlinePolicy` — one day with incremental
      migration during detected idle windows (no training day needed:
      the analyzer's live counts drive the moves).
    * ``"off"`` / :class:`NoRearrangement` — one day, monitoring only.

    Pass a ``config`` for full control, or the ``profile``/``disk``/
    ``hours``/``seed`` shorthand.  With ``disk="ssd"`` (or an
    :class:`SsdConfig`) the day runs through the page-mapped FTL instead
    and returns an :class:`SsdDayResult`; there ``policy`` decides
    hot/cold write separation, not block moves (``docs/ftl.md``).  The
    removed ``rearranged=`` boolean raises a :class:`TypeError` naming
    ``policy=``.
    """
    if config is None:
        config = make_config(profile, disk, hours=hours, seed=seed)
    if isinstance(config, SsdConfig):
        if policy is not None:
            config = replace(config, policy=policy)
        return SsdExperiment(config, tracer=tracer).run_day()
    if policy is not None:
        config = replace(config, policy=policy)
    resolved = config.resolved_policy()
    experiment = Experiment(config, tracer=tracer)
    if isinstance(resolved, OnlinePolicy):
        return experiment.run_day(rearranged=True, rearrange_tomorrow=False)
    if isinstance(resolved, NightlyPolicy) and (
        policy is not None or config.policy is not None
    ):
        experiment.run_day(rearranged=False, rearrange_tomorrow=True)
        return experiment.run_day(rearranged=True, rearrange_tomorrow=False)
    return experiment.run_day(rearranged=False, rearrange_tomorrow=False)


def run_campaign(
    config: ExperimentConfig | None = None,
    *,
    days: int = 4,
    schedule: Sequence[bool] | None = None,
    profile: str | WorkloadProfile = "system",
    disk: str = "toshiba",
    hours: float | None = None,
    seed: int = 1993,
    tracer: Tracer = NULL_TRACER,
) -> CampaignResult:
    """Run a multi-day campaign and return its :class:`CampaignResult`.

    Without an explicit ``schedule`` the campaign alternates off/on days
    over ``days`` days (the paper's Tables 2–6 shape).  ``schedule`` is a
    per-day list of "rearranged today" flags; day 0 must be ``False``.
    """
    if config is None:
        config = make_config(profile, disk, hours=hours, seed=seed)
    if schedule is None:
        schedule = alternating_schedule(days)
    return _run_campaign(config, list(schedule), tracer=tracer)


def replay_trace(
    source: str | Path,
    *,
    format: str = "auto",
    mapping: str = "compact",
    disk: str = "toshiba",
    time_scale: float = 1.0,
    loop: str = "open",
    gap_ms: float = DEFAULT_GAP_MS,
    queue: str = "scan",
    rearrange: bool = False,
    num_blocks: int | None = None,
    limit: int | None = None,
    target_blocks: int | None = None,
    source_span: int | None = None,
    tracer: Tracer = NULL_TRACER,
    fast: bool = True,
) -> TraceReplayResult | SsdReplayResult:
    """Ingest a raw block trace and replay it through the driver.

    ``source`` is a blkparse text file or an MSR-Cambridge-style CSV
    (``format="auto"`` sniffs).  The trace's addresses are mapped onto
    ``disk`` with the given ``mapping`` strategy, its timing is rescaled
    by ``time_scale`` and converted per ``loop``, and the resulting jobs
    run through a fresh adaptive driver.  With ``rearrange=True`` the
    replay is pre-trained on the trace itself first.  The returned
    :class:`TraceReplayResult` carries the day's
    :class:`~repro.stats.metrics.DayMetrics` plus the ingest stage's
    output (``.ingest`` — jobs, trace character, mapping facts).

    ``disk="ssd"`` replays the trace through the page-mapped FTL backend
    (``docs/ftl.md``) and returns an :class:`SsdReplayResult` — write
    amplification, GC and mapping-cache counters instead of seek
    metrics; ``rearrange=True`` there pre-trains hot/cold write
    separation on the trace.  ``fast`` toggles the batch simulation
    kernel (:mod:`repro.sim.vector`); metrics are bit-identical either
    way.

    Deterministic end to end: the same file and options produce
    bit-identical metrics on every run.  See ``docs/traces.md``.
    """
    ingested = ingest_trace(
        source,
        format=format,
        mapping=mapping,
        disk=disk,
        target_blocks=target_blocks,
        source_span=source_span,
        time_scale=time_scale,
        loop=loop,
        gap_ms=gap_ms,
        limit=limit,
    )
    result = replay_jobs(
        ingested.jobs,
        disk=disk,
        queue=queue,
        rearrange=rearrange,
        num_blocks=num_blocks,
        tracer=tracer,
        fast=fast,
    )
    result.ingest = ingested
    return result


def run_fleet(
    spec: FleetSpec | None = None,
    *,
    devices: int = 64,
    disk: str = "fujitsu",
    days: int = 3,
    hours: float | None = None,
    devices_per_shard: int = 8,
    tenants: int = 256,
    tenant_skew: float = 1.1,
    hot_set_overlap: float = 0.5,
    seed: int = 1993,
    workers: int | None = None,
    on_shard=None,
    checkpoint=None,
    resume: bool = False,
    retry=None,
    on_error: str = "raise",
    chaos=None,
    chunk_size: int | None = None,
    **overrides: object,
) -> FleetResult:
    """Run a multi-device fleet experiment; see ``docs/fleet.md``.

    Pass a full :class:`FleetSpec` for every knob, or use the keyword
    shorthand: ``devices`` disks of model ``disk``, serving ``tenants``
    users (Zipf-skewed by ``tenant_skew``) whose hot content overlaps
    across devices by ``hot_set_overlap``.  Devices are grouped into
    shards of ``devices_per_shard`` and fanned out to ``workers``
    processes (``None`` = one per shard up to the CPU count).

    The result's percentiles, on/off delta, and digest depend only on
    the spec — never on ``workers`` nor the resilience knobs — so runs
    are reproducible at any parallelism.  ``checkpoint`` journals each
    completed shard to a JSONL file (``resume=True`` skips journaled
    shards on restart); ``retry`` takes a
    :class:`~repro.parallel.RetryPolicy` (per-shard timeouts, bounded
    retries, seeded backoff); ``on_error`` is ``"raise"``/``"skip"``/
    ``"degrade"``; ``chaos`` injects a
    :class:`~repro.faults.ChaosPlan` of worker-level faults.  See
    ``docs/resilience.md``.  Remaining keywords pass through to
    :class:`FleetSpec` (``num_blocks=``, ``counter=``, ``schedule=``,
    ``tenancy=`` for a full
    :class:`~repro.workload.tenancy.TenancySpec`, ...).
    """
    if spec is None:
        from .workload.tenancy import TenancySpec

        tenancy = overrides.pop("tenancy", None)
        if tenancy is None:
            tenancy = TenancySpec(
                tenants=tenants,
                tenant_skew=tenant_skew,
                hot_set_overlap=hot_set_overlap,
            )
        spec = FleetSpec(
            devices=devices,
            disk=disk,
            days=days,
            hours=hours,
            devices_per_shard=devices_per_shard,
            tenancy=tenancy,
            seed=seed,
            **overrides,
        )
    return _run_fleet(
        spec,
        workers=workers,
        on_shard=on_shard,
        checkpoint=checkpoint,
        resume=resume,
        retry=retry,
        on_error=on_error,
        chaos=chaos,
        chunk_size=chunk_size,
    )


def run_bench(
    scenarios: Sequence[str] | None = None,
    *,
    quick: bool = False,
    repeat: int = 1,
    measure_memory: bool = True,
) -> list[BenchReport]:
    """Run the benchmark suite; one :class:`BenchReport` per scenario.

    ``scenarios`` selects by name (``None`` runs the whole suite);
    ``quick`` shrinks the simulated days for CI; ``repeat`` keeps the
    best wall-clock of N runs and verifies the metrics digest does not
    change between them.  ``measure_memory`` adds one untimed run per
    scenario under ``tracemalloc`` and records the peak allocation in
    :attr:`BenchReport.peak_mem_bytes`.  See ``docs/benchmarking.md``.
    """
    selected = get_scenarios(list(scenarios) if scenarios else None)
    return run_suite(
        selected, quick=quick, repeat=repeat, measure_memory=measure_memory
    )
