"""The hot block list: ranked reference-frequency estimates.

The rearrangement system "monitors the stream of requests directed to the
disk and periodically produces a list of hot (frequently-referenced)
blocks, ordered by frequency of reference" (Section 2).  This module gives
that list a small value type with the selection/query helpers the arranger
and the analysis benchmarks need.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HotBlock:
    """One entry of the hot block list."""

    block: int  # logical (virtual-disk) block number
    count: int  # estimated reference count

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("reference count must be non-negative")


@dataclass(frozen=True)
class HotBlockList:
    """Blocks ordered by decreasing estimated reference frequency."""

    entries: tuple[HotBlock, ...]

    @classmethod
    def from_pairs(cls, pairs: list[tuple[int, int]]) -> "HotBlockList":
        """Build from (block, count) pairs, enforcing the ranking order."""
        ordered = sorted(pairs, key=lambda pair: (-pair[1], pair[0]))
        return cls(tuple(HotBlock(block, count) for block, count in ordered))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, index: int) -> HotBlock:
        return self.entries[index]

    def top(self, n: int) -> "HotBlockList":
        """The ``n`` hottest blocks."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return HotBlockList(self.entries[:n])

    def blocks(self) -> list[int]:
        return [entry.block for entry in self.entries]

    def count_of(self, block: int) -> int:
        for entry in self.entries:
            if entry.block == block:
                return entry.count
        return 0

    def contains(self, block: int) -> bool:
        return any(entry.block == block for entry in self.entries)

    def total_references(self) -> int:
        return sum(entry.count for entry in self.entries)

    def coverage_of(self, counts: dict[int, int]) -> float:
        """Fraction of the true reference mass this list's blocks absorb.

        Used to evaluate estimation accuracy (the analyzer-size ablation).
        """
        total = sum(counts.values())
        if total == 0:
            return 0.0
        covered = sum(counts.get(entry.block, 0) for entry in self.entries)
        return covered / total
