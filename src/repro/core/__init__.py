"""The paper's contribution: adaptive block rearrangement.

Reference-frequency estimation from the monitored request stream
(:mod:`analyzer`), the ranked hot block list (:mod:`hotlist`), the three
placement policies for the reserved region (:mod:`placement`), the block
arranger that turns a hot list into ``DKIOCBCOPY`` calls (:mod:`arranger`),
and the daily monitoring/rearrangement cycle (:mod:`controller`).
"""

from .analyzer import REPLACEMENT_HEURISTICS, ReferenceStreamAnalyzer
from .arranger import BlockArranger, RearrangementPlan
from .cylshuffle import (
    CylinderShufflePlan,
    CylinderShuffler,
    cylinder_counts_from_blocks,
    plan_organ_pipe_shuffle,
)
from .controller import (
    MONITOR_POLL_INTERVAL_MS,
    RearrangementController,
)
from .hotlist import HotBlock, HotBlockList
from .loge import FreeBlockPool, LogeDriver
from .placement import (
    CLOSE_FREQUENCY_RATIO,
    InterleavedPlacement,
    OrganPipePlacement,
    PLACEMENT_POLICIES,
    Placement,
    PlacementPolicy,
    ReservedCylinder,
    ReservedLayout,
    SerialPlacement,
    make_policy,
)

__all__ = [
    "BlockArranger",
    "CLOSE_FREQUENCY_RATIO",
    "CylinderShufflePlan",
    "CylinderShuffler",
    "cylinder_counts_from_blocks",
    "plan_organ_pipe_shuffle",
    "FreeBlockPool",
    "LogeDriver",
    "HotBlock",
    "HotBlockList",
    "InterleavedPlacement",
    "MONITOR_POLL_INTERVAL_MS",
    "OrganPipePlacement",
    "PLACEMENT_POLICIES",
    "Placement",
    "PlacementPolicy",
    "REPLACEMENT_HEURISTICS",
    "RearrangementController",
    "RearrangementPlan",
    "ReferenceStreamAnalyzer",
    "ReservedCylinder",
    "ReservedLayout",
    "SerialPlacement",
    "make_policy",
]
