"""The block arranger (Section 4.2).

A user-level process that "selects the most frequently requested blocks
for rearrangement and controls their placement in the reserved area."  It
consumes the analyzer's hot block list, truncates it to the number of
blocks to rearrange, runs a placement policy, and converts the result into
a sequence of ``DKIOCBCOPY`` calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..driver.errors import DeviceTimeout, MediaError
from ..driver.ioctl import IoctlInterface
from .hotlist import HotBlockList
from .placement import (
    Placement,
    PlacementPolicy,
    ReservedLayout,
    make_policy,
)


@dataclass(frozen=True)
class RearrangementPlan:
    """A fully resolved set of planned block copies."""

    placements: tuple[Placement, ...]
    policy: str

    def __len__(self) -> int:
        return len(self.placements)

    def logical_blocks(self) -> list[int]:
        return [p.logical_block for p in self.placements]

    def reserved_blocks(self) -> list[int]:
        return [p.reserved_block for p in self.placements]


@dataclass
class BlockArranger:
    """Plans and executes reserved-area (re)population."""

    ioctl: IoctlInterface
    policy: PlacementPolicy = field(default_factory=lambda: make_policy("organ-pipe"))
    min_count: int = 1
    """Blocks referenced fewer times than this are never rearranged.  The
    paper's arranger placed every block on the hot list (1); raising the
    threshold trades coverage for fewer pointless moves (see the
    analyzer-size ablation benchmark)."""

    last_skipped: int = 0
    """Placements skipped by the most recent :meth:`execute` because
    their copy-in hit an unrecoverable device error."""

    _layout: ReservedLayout | None = field(default=None, repr=False)

    def reserved_layout(self) -> ReservedLayout:
        """The driver's reserved-area layout, built once per arranger.

        The label's reserved region is fixed at initialization, so the
        layout (and its cached organ-pipe fill order) is reused across
        nightly cycles instead of being regrouped every plan.
        """
        if self._layout is None:
            self._layout = ReservedLayout.from_label(self.ioctl.driver.label)
        return self._layout

    def plan(
        self, hot_list: HotBlockList, num_blocks: int
    ) -> RearrangementPlan:
        """Select up to ``num_blocks`` hot blocks and place them."""
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        layout = self.reserved_layout()
        eligible = HotBlockList.from_pairs(
            [
                (entry.block, entry.count)
                for entry in hot_list
                if entry.count >= self.min_count
            ]
        )
        selected = eligible.top(min(num_blocks, layout.capacity))
        placements = self.policy.place(selected, layout)
        return RearrangementPlan(
            placements=tuple(placements), policy=self.policy.name
        )

    def execute(self, plan: RearrangementPlan, now_ms: float) -> float:
        """Clean the reserved area, then copy the planned blocks in.

        Returns the time at which the rearrangement finished.  Issues one
        ``DKIOCCLEAN`` followed by one ``DKIOCBCOPY`` per placement, as the
        paper's nightly cycle does.  A placement whose copy-in hits an
        unrecoverable device error is skipped — the home copy stays
        authoritative and the cycle moves on to the next hot block.
        """
        clock = self.ioctl.clean(now_ms)
        self.last_skipped = 0
        for placement in plan.placements:
            try:
                clock = self.ioctl.bcopy(
                    placement.logical_block, placement.reserved_block, clock
                )
            except (MediaError, DeviceTimeout) as exc:
                if exc.now_ms is not None:
                    clock = exc.now_ms
                self.last_skipped += 1
                self.ioctl.driver.fault_stats.skipped_moves += 1
        return clock

    def rearrange(
        self, hot_list: HotBlockList, num_blocks: int, now_ms: float
    ) -> tuple[RearrangementPlan, float]:
        """Plan and execute in one step; returns (plan, finish time)."""
        plan = self.plan(hot_list, num_blocks)
        finish = self.execute(plan, now_ms)
        return plan, finish
