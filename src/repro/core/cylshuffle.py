"""Cylinder shuffling: the adaptive-rearrangement baseline.

Vongsathorn and Carson [Vongsath 90] rearrange whole *cylinders* into an
organ-pipe order by observed cylinder reference frequency; the DataMesh
disk-shuffling study [Ruemmler 91] compared cylinder and block shuffling
and found block shuffling generally better — "their conclusion that block
shuffling generally outperforms cylinder shuffling corroborates one of
our own" (Section 1.1).  This module implements cylinder shuffling inside
the same driver so the two techniques can be compared head-to-head (see
``benchmarks/test_ablation_block_vs_cylinder.py``).

Differences from block rearrangement, mirroring Section 1.1's list:

* **Granularity** — whole cylinders move; hot and cold blocks within a
  cylinder travel together, and zero-length seeks cannot increase.
* **Data volume** — the shuffle is a permutation of the *entire* disk,
  not a small copy into reserved space.
* **Layout preservation** — nothing is preserved; every remapped
  cylinder's layout relationship to its neighbours changes.

The shuffle is applied atomically between measurement days (the papers
reorganized offline); the cost is reported as the number of cylinders
moved (each costs a read and a write of a full cylinder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..analysis.organpipe import organ_pipe_arrangement
from ..core.analyzer import ReferenceStreamAnalyzer
from ..driver.driver import AdaptiveDiskDriver


@dataclass(frozen=True)
class CylinderShufflePlan:
    """A whole-disk cylinder permutation: original -> new position."""

    mapping: dict[int, int]

    @property
    def moved_cylinders(self) -> int:
        return sum(1 for src, dst in self.mapping.items() if src != dst)

    def is_permutation(self) -> bool:
        targets = list(self.mapping.values())
        return len(set(targets)) == len(targets) and set(targets) == set(
            self.mapping
        )


def plan_organ_pipe_shuffle(
    cylinder_counts: Mapping[int, int], num_cylinders: int
) -> CylinderShufflePlan:
    """Organ-pipe permutation: the hottest cylinder goes to the middle of
    the disk, the next hottest to either side, and so on."""
    if num_cylinders <= 0:
        raise ValueError("num_cylinders must be positive")
    weights = [float(cylinder_counts.get(c, 0)) for c in range(num_cylinders)]
    # order[position] = original cylinder to put there.
    order = organ_pipe_arrangement(weights)
    mapping = {original: position for position, original in enumerate(order)}
    return CylinderShufflePlan(mapping=mapping)


def cylinder_counts_from_blocks(
    block_counts: Mapping[int, int], driver: AdaptiveDiskDriver
) -> dict[int, int]:
    """Fold per-(logical-)block reference counts into per-physical-cylinder
    counts, through the driver's label mapping."""
    geometry = driver.disk.geometry
    counts: dict[int, int] = {}
    for logical, count in block_counts.items():
        physical = driver.label.virtual_to_physical_block(logical)
        cylinder = geometry.cylinder_of_block(physical)
        counts[cylinder] = counts.get(cylinder, 0) + count
    return counts


class CylinderShuffler:
    """Applies cylinder shuffles to a driver (the V&C-style alternative).

    Use with a driver whose label has *no* reserved area: cylinder
    shuffling reorganizes the whole disk instead of copying into hidden
    cylinders.
    """

    def __init__(self, driver: AdaptiveDiskDriver) -> None:
        if driver.label.is_rearranged:
            raise ValueError(
                "cylinder shuffling expects a disk without a reserved "
                "area; it permutes the whole disk instead"
            )
        self.driver = driver
        self.shuffles_applied = 0
        self.cylinders_moved = 0

    def plan_from_analyzer(
        self, analyzer: ReferenceStreamAnalyzer
    ) -> CylinderShufflePlan:
        counts = cylinder_counts_from_blocks(
            dict(analyzer.hot_blocks()), self.driver
        )
        return plan_organ_pipe_shuffle(
            counts, self.driver.disk.geometry.cylinders
        )

    def apply(self, plan: CylinderShufflePlan) -> int:
        """Install the permutation (and physically move the data).

        Composes with any previously applied shuffle: the new plan is
        expressed over *original* cylinder numbers, as produced from
        monitored reference counts (which are in original coordinates).
        Returns the number of cylinders moved relative to the previous
        layout.
        """
        if not plan.is_permutation():
            raise ValueError("plan is not a permutation of the cylinders")
        old_map = self.driver.cylinder_map or {}
        geometry = self.driver.disk.geometry
        per_cyl = geometry.blocks_per_cylinder

        def old_position(cylinder: int) -> int:
            return old_map.get(cylinder, cylinder)

        # Data currently sits at old_position(c); it must move to the new
        # position for every original cylinder c.
        current_of_original = {
            c: old_position(c) for c in range(geometry.cylinders)
        }
        new_of_current = {
            current: plan.mapping.get(original, original)
            for original, current in current_of_original.items()
        }

        def block_mapping(block: int) -> int:
            cylinder, index = divmod(block, per_cyl)
            return new_of_current.get(cylinder, cylinder) * per_cyl + index

        self.driver.disk.move_contents(block_mapping)
        moved = sum(
            1 for cur, new in new_of_current.items() if cur != new
        )
        self.driver.cylinder_map = dict(plan.mapping)
        self.shuffles_applied += 1
        self.cylinders_moved += moved
        return moved

    def reset(self) -> int:
        """Undo shuffling: restore the original layout."""
        identity = CylinderShufflePlan(
            mapping={
                c: c for c in range(self.driver.disk.geometry.cylinders)
            }
        )
        moved = self.apply(identity)
        self.driver.cylinder_map = None
        return moved
