"""A Loge-style self-organizing write-anywhere controller.

English & Stepanov's Loge controller [English 92] "transparently
reorganizes blocks each time they are written to reduce seek and
rotational delay.  Simulation studies of the controller show that it can
reduce write service times, but the savings come at the expense of
increased read service times" (Section 1.1).  The paper contrasts its
own technique — which preserves the file system's placement and speeds up
*both* reads and writes — against this write-optimizing design.

:class:`LogeDriver` implements the comparison baseline: every write is
redirected to the free physical block nearest the disk head's current
position, maintaining an indirection map for all relocated blocks.  The
over-provisioned free pool is seeded from the label's reserved cylinders
(standing in for Loge's spare segments); blocks vacated by relocation
rejoin the pool, so the pool never shrinks.

Simplification: the target is chosen when the request is accepted rather
than at the instant the write starts; with the shallow queues of the
modelled workloads the head position rarely changes in between.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..driver.driver import AdaptiveDiskDriver, DriverError
from ..driver.request import DiskRequest


@dataclass
class FreeBlockPool:
    """Free physical blocks, ordered, with nearest-to-cylinder lookup."""

    blocks: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.blocks.sort()

    def __len__(self) -> int:
        return len(self.blocks)

    def add(self, block: int) -> None:
        index = bisect.bisect_left(self.blocks, block)
        if index < len(self.blocks) and self.blocks[index] == block:
            raise ValueError(f"block {block} is already free")
        self.blocks.insert(index, block)

    def take_nearest(self, target_block: int) -> int:
        """Remove and return the free block closest to ``target_block``."""
        if not self.blocks:
            raise DriverError("free block pool is empty")
        index = bisect.bisect_left(self.blocks, target_block)
        candidates = []
        if index < len(self.blocks):
            candidates.append(index)
        if index > 0:
            candidates.append(index - 1)
        best = min(
            candidates, key=lambda i: abs(self.blocks[i] - target_block)
        )
        return self.blocks.pop(best)


class LogeDriver(AdaptiveDiskDriver):
    """The write-anywhere baseline: redirect each write near the head."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.label.is_rearranged:
            raise DriverError(
                "LogeDriver seeds its free pool from the reserved "
                "cylinders; initialize the label with reserved space"
            )
        self.free_pool = FreeBlockPool(list(self.label.reserved_data_blocks()))
        # logical-home physical block -> current physical block
        self.indirection: dict[int, int] = {}
        self.relocations = 0

    def strategy(self, request: DiskRequest, now_ms: float) -> float | None:
        if now_ms < request.arrival_ms:
            raise DriverError("strategy called before the request's arrival")
        if request.size_blocks != 1:
            raise DriverError("LogeDriver takes single-block requests")

        physical = self.label.virtual_to_physical_block(request.logical_block)
        request.physical_block = physical
        request.home_cylinder = self.disk.geometry.cylinder_of_block(physical)

        if request.is_read:
            request.target_block = self.indirection.get(physical, physical)
            request.redirected = request.target_block != physical
        else:
            request.target_block = self._relocate_write(physical)
            request.redirected = request.target_block != physical

        self.request_monitor.record(request)
        self.perf_monitor.note_arrival(request)
        cylinder = self.disk.geometry.cylinder_of_block(request.target_block)
        self.queue.push(request, cylinder)
        if not self.busy:
            return self._start_next(now_ms)
        return None

    def _relocate_write(self, physical: int) -> int:
        """Pick the write target nearest the head; recycle the old block."""
        head_block = self.disk.geometry.block_at(self.disk.head_cylinder, 0)
        target = self.free_pool.take_nearest(head_block)
        old = self.indirection.get(physical)
        if old is not None:
            self.free_pool.add(old)
        else:
            # First relocation: the block's home location becomes free.
            self.free_pool.add(physical)
        self.indirection[physical] = target
        self.relocations += 1
        return target

    def _apply_write(self, request: DiskRequest) -> None:
        # No dirty-bit bookkeeping: the indirection map *is* the layout.
        if request.tag is not None:
            assert request.target_block is not None
            self.disk.write_data(request.target_block, request.tag)

    def read_data(self, logical_block: int) -> object:
        physical = self.label.virtual_to_physical_block(logical_block)
        target = self.indirection.get(physical, physical)
        return self.disk.read_data(target)

    # The block-movement ioctls make no sense for this baseline.
    def bcopy(self, logical_block: int, reserved_block: int, now_ms: float):
        raise DriverError("LogeDriver does not support DKIOCBCOPY")

    def clean(self, now_ms: float):
        raise DriverError("LogeDriver does not support DKIOCCLEAN")
