"""Placement policies for the reserved region (Section 4.2, Figure 3).

Given the hot block list and the reserved area's cylinders, a policy
decides which reserved-area physical block each hot block is copied to:

* **Organ-pipe** — the hottest blocks fill the *center* cylinder of the
  reserved area; the next hottest fill one adjacent cylinder, then the
  other, alternating outward, so the cylinder reference distribution forms
  an organ pipe.

* **Interleaved** — like organ-pipe in cylinder fill order, but tries to
  preserve the file system's rotational interleaving: if block Y lies the
  interleave gap after block X on the original disk and Y's estimated
  frequency is "close" to X's (at least 50 %, the paper's arbitrary
  choice), Y is deemed X's file successor and is placed the same gap after
  X inside the reserved cylinder.  Chains of successors are followed until
  a successor cannot be placed or does not exist.

* **Serial** — frequency decides *which* blocks move, but placement is
  simply ascending original-block-number order across the reserved area.
  The paper's control policy showing that placement (not just relocation)
  matters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import cached_property

from ..disk.label import BLOCK_TABLE_BLOCKS, DiskLabel
from .hotlist import HotBlockList

CLOSE_FREQUENCY_RATIO = 0.5
"""Y is a successor of X only if count(Y) >= 0.5 * count(X) (Section 4.2)."""


@dataclass(frozen=True)
class Placement:
    """One planned copy: a hot block and its reserved-area destination."""

    logical_block: int
    reserved_block: int
    rank: int  # position in the hot block list (0 = hottest)


@dataclass(frozen=True)
class ReservedCylinder:
    """One reserved cylinder's usable data blocks, in layout order."""

    cylinder: int
    blocks: tuple[int, ...]


@dataclass(frozen=True)
class ReservedLayout:
    """The reserved area, cylinder by cylinder, in disk order."""

    cylinders: tuple[ReservedCylinder, ...]

    @classmethod
    def from_label(cls, label: DiskLabel) -> "ReservedLayout":
        """Group the label's reserved data blocks by cylinder.

        Blocks are laid out cylinder-major, so each reserved cylinder's
        data blocks are one contiguous run; the first cylinders also host
        the on-disk block-table copy, which is carved off the front.
        """
        if not label.is_rearranged:
            raise ValueError("disk has no reserved area")
        per_cylinder = label.geometry.blocks_per_cylinder
        assert label.reserved_start_cylinder is not None
        cylinders: list[ReservedCylinder] = []
        table_blocks = BLOCK_TABLE_BLOCKS
        for cyl in range(
            label.reserved_start_cylinder, label.reserved_end_cylinder
        ):
            first = cyl * per_cylinder
            skip = min(table_blocks, per_cylinder)
            table_blocks -= skip
            if skip < per_cylinder:
                cylinders.append(
                    ReservedCylinder(
                        cylinder=cyl,
                        blocks=tuple(range(first + skip, first + per_cylinder)),
                    )
                )
        return cls(tuple(cylinders))

    @property
    def capacity(self) -> int:
        return sum(len(c.blocks) for c in self.cylinders)

    def center_out_indices(self) -> list[int]:
        """Cylinder indices in organ-pipe fill order: center, then
        alternating adjacent cylinders outward."""
        n = len(self.cylinders)
        center = n // 2
        order = [center]
        for step in range(1, n):
            if center + step < n:
                order.append(center + step)
            if center - step >= 0:
                order.append(center - step)
        return order[:n]

    def blocks_in_ascending_order(self) -> list[int]:
        blocks: list[int] = []
        for cylinder in self.cylinders:
            blocks.extend(cylinder.blocks)
        return sorted(blocks)

    @cached_property
    def center_out_slots(self) -> tuple[int, ...]:
        """All reserved blocks in organ-pipe fill order.

        Cached on the (frozen) layout so the nightly cycle does not
        rebuild a reserved-area-sized list every rearrangement.
        """
        slots: list[int] = []
        for cylinder_index in self.center_out_indices():
            slots.extend(self.cylinders[cylinder_index].blocks)
        return tuple(slots)


class PlacementPolicy(ABC):
    """Interface: map a hot block list onto the reserved layout."""

    name: str = "abstract"

    @abstractmethod
    def place(
        self, hot_list: HotBlockList, layout: ReservedLayout
    ) -> list[Placement]:
        """Plan the copies.  ``hot_list`` must already be truncated to the
        number of blocks to rearrange; policies place every entry that
        fits (and silently drop overflow beyond the area's capacity)."""


class OrganPipePlacement(PlacementPolicy):
    """Hottest blocks to the center cylinder, alternating outward."""

    name = "organ-pipe"

    def place(
        self, hot_list: HotBlockList, layout: ReservedLayout
    ) -> list[Placement]:
        placements: list[Placement] = []
        slots = layout.center_out_slots
        for rank, entry in enumerate(hot_list):
            if rank >= len(slots):
                break
            placements.append(
                Placement(
                    logical_block=entry.block,
                    reserved_block=slots[rank],
                    rank=rank,
                )
            )
        return placements


class SerialPlacement(PlacementPolicy):
    """Selected blocks placed in ascending original-block-number order."""

    name = "serial"

    def place(
        self, hot_list: HotBlockList, layout: ReservedLayout
    ) -> list[Placement]:
        slots = layout.blocks_in_ascending_order()
        chosen = list(hot_list)[: len(slots)]
        rank_of = {entry.block: rank for rank, entry in enumerate(hot_list)}
        ordered = sorted(chosen, key=lambda entry: entry.block)
        return [
            Placement(
                logical_block=entry.block,
                reserved_block=slot,
                rank=rank_of[entry.block],
            )
            for entry, slot in zip(ordered, slots)
        ]


class InterleavedPlacement(PlacementPolicy):
    """Organ-pipe fill order, preserving file-successor interleave gaps."""

    name = "interleaved"

    def __init__(self, gap_blocks: int = 2) -> None:
        """``gap_blocks`` is the original-layout block-number distance
        between a block and its file successor: the file system's
        rotational interleave plus one (FFS ``rotdelay`` of one block gives
        a gap of 2 block numbers)."""
        if gap_blocks < 1:
            raise ValueError("gap_blocks must be at least 1")
        self.gap_blocks = gap_blocks

    def place(
        self, hot_list: HotBlockList, layout: ReservedLayout
    ) -> list[Placement]:
        counts = {entry.block: entry.count for entry in hot_list}
        rank_of = {entry.block: rank for rank, entry in enumerate(hot_list)}
        unplaced = dict(counts)  # insertion order == hot order
        placements: list[Placement] = []

        cylinder_order = layout.center_out_indices()
        for cylinder_index in cylinder_order:
            cylinder = layout.cylinders[cylinder_index]
            free = [True] * len(cylinder.blocks)
            cursor = 0
            while unplaced and cursor < len(free):
                if not free[cursor]:
                    cursor += 1
                    continue
                chain_head = self._hottest(unplaced)
                slot = cursor
                block = chain_head
                while block is not None and slot < len(free) and free[slot]:
                    placements.append(
                        Placement(
                            logical_block=block,
                            reserved_block=cylinder.blocks[slot],
                            rank=rank_of[block],
                        )
                    )
                    free[slot] = False
                    del unplaced[block]
                    block = self._successor(block, counts, unplaced)
                    slot += self.gap_blocks
            if not unplaced:
                break
        return placements

    @staticmethod
    def _hottest(unplaced: dict[int, int]) -> int:
        return max(unplaced, key=lambda b: (unplaced[b], -b))

    def _successor(
        self,
        block: int,
        counts: dict[int, int],
        unplaced: dict[int, int],
    ) -> int | None:
        """The file-successor guess of Section 4.2: the block one interleave
        gap later whose frequency is close to this block's."""
        candidate = block + self.gap_blocks
        if candidate not in unplaced:
            return None
        if counts[candidate] < CLOSE_FREQUENCY_RATIO * counts[block]:
            return None
        return candidate


PLACEMENT_POLICIES: dict[str, type[PlacementPolicy]] = {
    OrganPipePlacement.name: OrganPipePlacement,
    InterleavedPlacement.name: InterleavedPlacement,
    SerialPlacement.name: SerialPlacement,
}


def make_policy(name: str, **kwargs) -> PlacementPolicy:
    """Instantiate a placement policy by name."""
    try:
        return PLACEMENT_POLICIES[name.lower()](**kwargs)
    except KeyError:
        known = ", ".join(sorted(PLACEMENT_POLICIES))
        raise KeyError(f"unknown policy {name!r}; known: {known}") from None
