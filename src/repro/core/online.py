"""Online incremental rearrangement under live traffic (``docs/online.md``).

The paper's nightly cycle stops the world: it runs on a drained queue at
the end of the day.  This module rearranges *during* the day instead — a
few blocks at a time, only while the disk is provably idle, with every
constituent I/O competing in the ordinary SCAN queue so foreground
requests preempt migration naturally.  Three pieces:

* :class:`IdleDetector` watches the event bus for queue-empty gaps: when
  a device drains, the engine publishes
  :class:`~repro.sim.events.DeviceIdle`; the detector arms an
  :class:`~repro.sim.events.IdleCheck` probe ``idle_ms`` later and opens
  a migration window only if no foreground work arrived in between.

* :class:`IncrementalArranger` proposes the top-k *misplaced* hot blocks
  (hot per the analyzer's counters, but not yet in the reserved area)
  and executes at most ``max_moves_per_window`` moves per window, one at
  a time.  Each move is the nightly ``DKIOCBCOPY`` decomposed into
  queued migration requests — read the home block, write the reserved
  copy, rewrite the block-table home blocks — and **commits atomically
  at the final completion**: the in-memory table entry is added and the
  on-disk copy flushed only after every constituent I/O finished and no
  foreground request intervened.  A crash between steps therefore
  recovers exactly like a crash between nightly moves: the reserved-area
  table copy never mentions the half-finished move, so the home copy
  stays authoritative (the paper's data-first/table-last invariant).

* A **cost/benefit throttle** prices each candidate against the disk's
  precomputed seek table: the projected benefit is the block's reference
  count times the per-access seek saving of serving it from its reserved
  slot rather than its home cylinder (both measured from the reserved
  center, where the organ-pipe arrangement parks the head); the
  projected cost is the mechanical price of the move's constituent I/Os.
  Moves whose benefit falls below ``min_benefit_ratio`` times their cost
  are skipped, and an amortized budget — refilled at ``duty_cycle`` of
  elapsed simulated time, capped so it cannot hoard — bounds how much
  migration I/O a burst of idle windows may issue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..driver.ioctl import IoctlInterface
from ..driver.request import DiskRequest, Op
from ..obs.tracer import NULL_TRACER, Tracer
from ..policy import OnlinePolicy
from ..sim.events import DeviceIdle, IdleCheck, JobStart, MachineCrash, StepIssue
from .analyzer import ReferenceStreamAnalyzer
from .placement import ReservedLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..driver.driver import AdaptiveDiskDriver
    from ..sim.engine import Simulation

__all__ = [
    "BUDGET_CAP_MS",
    "IdleDetector",
    "IncrementalArranger",
    "MigrationStats",
    "OnlineRearranger",
]

BUDGET_CAP_MS = 5_000.0
"""Ceiling on the accrued migration budget: a long quiet stretch cannot
bank unlimited credit and then starve traffic with a burst of moves."""

PROPOSAL_FACTOR = 4
"""The arranger examines ``PROPOSAL_FACTOR * max_moves_per_window`` hot
blocks per window, so already-placed entries at the top of the ranking
do not mask movable candidates just below them."""


@dataclass
class MigrationStats:
    """Counters for the online rearranger (reporting only — these are
    deliberately *not* part of :class:`~repro.stats.metrics.DayMetrics`,
    whose frozen shape the bench digests pin)."""

    windows: int = 0
    """Idle windows opened (a valid quiet gap reached the arranger)."""
    moves_completed: int = 0
    """Block moves committed (table entry added and flushed)."""
    moves_skipped: int = 0
    """Windows in which candidates existed but none passed the throttle."""
    moves_deferred: int = 0
    """Moves priced out by the amortized budget (retried in later windows)."""
    moves_cancelled: int = 0
    """Moves abandoned before commit because foreground traffic arrived
    mid-move (or the day ended with a move still in flight)."""
    moves_failed: int = 0
    """Moves abandoned because a constituent I/O returned a device error."""
    crash_aborts: int = 0
    """Moves lost to a machine crash between steps (recovered via the
    reserved-area table copy; the home copy stays authoritative)."""
    migration_ios: int = 0
    """Constituent migration I/Os completed (including abandoned moves')."""
    migration_busy_ms: float = 0.0
    """Disk time spent servicing migration I/Os."""

    def payload(self) -> dict:
        """Canonical JSON-ready form (used by the ``online_day`` bench)."""
        return {
            "windows": self.windows,
            "moves_completed": self.moves_completed,
            "moves_skipped": self.moves_skipped,
            "moves_deferred": self.moves_deferred,
            "moves_cancelled": self.moves_cancelled,
            "moves_failed": self.moves_failed,
            "crash_aborts": self.crash_aborts,
            "migration_ios": self.migration_ios,
            "migration_busy_ms": self.migration_busy_ms,
        }


class IdleDetector:
    """Turn the engine's :class:`DeviceIdle` events into validated windows.

    A drain event only *starts* a candidate gap; the gap becomes a window
    when an :class:`IdleCheck` scheduled ``idle_ms`` later fires with the
    device still untouched.  Foreground activity is tracked with a
    sequence number bumped on every :class:`JobStart`/:class:`StepIssue`
    for this device: a check whose token is stale is discarded (and
    re-armed if the device has meanwhile gone quiet again), which handles
    back-to-back windows and gaps interrupted mid-probe.  ``idle_ms`` of
    zero degenerates to "open a window on every drain", still
    deterministic via the event queue's insertion-order tie-breaking.
    """

    def __init__(
        self,
        device: str,
        driver: AdaptiveDiskDriver,
        idle_ms: float,
        on_idle_window,
    ) -> None:
        self.device = device
        self.driver = driver
        self.idle_ms = idle_ms
        self.on_idle_window = on_idle_window
        self.activity_seq = 0
        """Bumped on every foreground arrival; the arranger compares it
        across a move's lifetime to detect mid-move interference."""
        self._check_pending = False
        self._sim: Simulation | None = None

    def attach(self, simulation: Simulation) -> None:
        """Subscribe to the bus and enable the engine's idle events."""
        self._sim = simulation
        bus = simulation.bus
        bus.subscribe(JobStart, self._on_activity)
        bus.subscribe(StepIssue, self._on_activity)
        bus.subscribe(DeviceIdle, self._on_device_idle)
        bus.subscribe(IdleCheck, self._on_idle_check)
        simulation.emit_idle_events()

    def _device_quiet(self) -> bool:
        return not self.driver.busy and not self.driver.queue

    def _arm(self) -> None:
        assert self._sim is not None
        self._check_pending = True
        self._sim.events.push(
            self._sim.now_ms + self.idle_ms,
            IdleCheck(self.device, self.activity_seq),
        )

    def _on_activity(self, event) -> None:
        if event.device == self.device:
            self.activity_seq += 1

    def _on_device_idle(self, event: DeviceIdle) -> None:
        if event.device != self.device or self._check_pending:
            return
        self._arm()

    def _on_idle_check(self, event: IdleCheck) -> None:
        if event.device != self.device:
            return
        self._check_pending = False
        if event.token != self.activity_seq:
            # The gap was interrupted.  If the interrupting burst already
            # drained — its own DeviceIdle arrived while this stale check
            # was still pending and was swallowed — re-arm from now so a
            # quiet device is never silently forgotten.
            if self._device_quiet():
                self._arm()
            return
        assert self._sim is not None
        self.on_idle_window(self._sim.now_ms)


@dataclass
class _ActiveMove:
    """State machine of the one in-flight block move (serial by design)."""

    logical_block: int
    physical_block: int
    reserved_block: int
    start_seq: int
    steps: tuple[tuple[int, bool], ...]
    """``(target physical block, is_read)`` per constituent I/O."""
    index: int = 0
    value: object = None
    """Home-block contents captured when the read step completes."""


class IncrementalArranger:
    """Propose, price, and execute incremental block moves.

    One move is in flight at a time; its constituent I/Os are chained on
    completions through the simulation's migration sink, so a window's
    moves serialize and any foreground request that slips in is served
    in between (and cancels the move's commit).
    """

    def __init__(
        self,
        ioctl: IoctlInterface,
        analyzer: ReferenceStreamAnalyzer,
        policy: OnlinePolicy,
        stats: MigrationStats | None = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.ioctl = ioctl
        self.analyzer = analyzer
        self.policy = policy
        self.stats = stats if stats is not None else MigrationStats()
        self.tracer = tracer
        driver = ioctl.driver
        self.driver = driver
        label = driver.label
        if not label.is_rearranged:
            raise ValueError(
                f"{driver.name} has no reserved area; OnlinePolicy needs "
                "a rearrangement-initialized label"
            )
        self._label = label
        self._layout = ReservedLayout.from_label(label)
        self._table_blocks = tuple(label.block_table_home_blocks())
        disk = driver.disk
        self._per_cyl = disk.geometry.blocks_per_cylinder
        self._center = label.reserved_center_cylinder()
        # The same precomputed tables the hot path uses: one list index
        # per projected seek, plus the exact per-access scalar costs.
        self._seek_table = disk._seek_table
        self._per_io_ms = (
            disk._overhead_ms
            + disk._rotation_time_ms / 2.0
            + disk._block_transfer_ms
        )
        self._proposal_limit = PROPOSAL_FACTOR * policy.max_moves_per_window
        self._budget_ms = 0.0
        self._budget_anchor_ms = 0.0
        self._moves_left = 0
        self._move: _ActiveMove | None = None
        self.detector: IdleDetector | None = None
        self._sim: Simulation | None = None
        self._device: str | None = None

    def attach(
        self,
        simulation: Simulation,
        device: str,
        detector: IdleDetector,
    ) -> None:
        """Bind to one simulation day: sink, crash handler, detector."""
        self._sim = simulation
        self._device = device
        self.detector = detector
        simulation.set_migration_sink(device, self._on_step_complete)
        # Runs after the engine's own crash handler (subscription order),
        # i.e. once the driver has recovered the table from its
        # reserved-area copy and dropped this move's lost request.
        simulation.bus.subscribe(MachineCrash, self._on_crash)

    # ------------------------------------------------------------------
    # Cost/benefit throttle
    # ------------------------------------------------------------------

    def projected_benefit_ms(
        self, count: int, physical_block: int, reserved_block: int
    ) -> float:
        """Expected seek-time saving of serving ``count`` future accesses
        from ``reserved_block`` instead of ``physical_block``.

        Both positions are priced as a seek from the reserved center
        cylinder — where the organ-pipe arrangement keeps the head — so
        the saving is the difference of two precomputed seek-table
        entries, scaled by the block's observed reference count.
        """
        home_cyl = physical_block // self._per_cyl
        slot_cyl = reserved_block // self._per_cyl
        saving = (
            self._seek_table[abs(home_cyl - self._center)]
            - self._seek_table[abs(slot_cyl - self._center)]
        )
        return count * saving

    def projected_cost_ms(
        self, physical_block: int, reserved_block: int
    ) -> float:
        """Mechanical price of one incremental move.

        One I/O per constituent step (read home, write reserved copy,
        rewrite each block-table home block), each costing controller
        overhead + half a rotation + one block transfer, plus the
        home-to-reserved seek span traversed twice (there and back).
        """
        home_cyl = physical_block // self._per_cyl
        slot_cyl = reserved_block // self._per_cyl
        n_ios = 2 + len(self._table_blocks)
        return (
            n_ios * self._per_io_ms
            + 2.0 * self._seek_table[abs(home_cyl - slot_cyl)]
        )

    def _refill_budget(self, now_ms: float) -> None:
        elapsed = now_ms - self._budget_anchor_ms
        if elapsed > 0.0:
            self._budget_ms = min(
                BUDGET_CAP_MS,
                self._budget_ms + self.policy.duty_cycle * elapsed,
            )
            self._budget_anchor_ms = now_ms

    @property
    def budget_ms(self) -> float:
        """Currently accrued migration budget (test/report hook)."""
        return self._budget_ms

    @property
    def move_in_flight(self) -> bool:
        return self._move is not None

    # ------------------------------------------------------------------
    # Window lifecycle
    # ------------------------------------------------------------------

    def window_opened(self, now_ms: float) -> None:
        """The idle detector validated a quiet gap: start migrating."""
        if self._move is not None:
            return  # a previous window's move is still draining
        if self.driver.busy or self.driver.queue:
            return  # foreground reclaimed the disk at the same instant
        self.stats.windows += 1
        self._moves_left = self.policy.max_moves_per_window
        self._refill_budget(now_ms)
        if self.tracer is not NULL_TRACER:
            self.tracer.idle_window(self._device, now_ms, self._moves_left)
        self._start_next_move(now_ms)

    def _next_free_slot(self) -> int | None:
        """Best unoccupied reserved slot, in organ-pipe fill order."""
        occupied = self.driver.block_table.occupied_reserved_blocks()
        for slot in self._layout.center_out_slots:
            if slot not in occupied:
                return slot
        return None

    def _start_next_move(self, now_ms: float) -> None:
        """Pick the best throttle-approved candidate and issue its first
        step; no candidate (or no budget) ends the window."""
        if self._moves_left <= 0:
            return
        if self.driver.busy or self.driver.queue:
            return  # window closed by foreground traffic
        slot = self._next_free_slot()
        if slot is None:
            return  # reserved area is full
        table = self.driver.block_table
        label = self._label
        ratio = self.policy.min_benefit_ratio
        saw_candidate = False
        for block, count in self.analyzer.hot_blocks(self._proposal_limit):
            physical = label.virtual_to_physical_block(block)
            if table.reserved_of(physical) >= 0:
                continue  # already placed
            saw_candidate = True
            cost = self.projected_cost_ms(physical, slot)
            if self.projected_benefit_ms(count, physical, slot) < ratio * cost:
                continue  # move would not pay for itself
            if cost > self._budget_ms:
                self.stats.moves_deferred += 1
                return  # amortized budget exhausted; retry next window
            self._budget_ms -= cost
            assert self.detector is not None
            self._move = _ActiveMove(
                logical_block=block,
                physical_block=physical,
                reserved_block=slot,
                start_seq=self.detector.activity_seq,
                steps=(
                    (physical, True),
                    (slot, False),
                    *((tb, False) for tb in self._table_blocks),
                ),
            )
            self._issue_step(now_ms)
            return
        if saw_candidate:
            self.stats.moves_skipped += 1

    def _issue_step(self, now_ms: float) -> None:
        move = self._move
        assert move is not None and self._sim is not None
        assert self._device is not None
        target, is_read = move.steps[move.index]
        request = DiskRequest(
            logical_block=move.logical_block,
            op=Op.READ if is_read else Op.WRITE,
            arrival_ms=now_ms,
        )
        request.physical_block = move.physical_block
        request.target_block = target
        request.home_cylinder = move.physical_block // self._per_cyl
        self._sim.submit_migration(self._device, request)

    def _on_step_complete(self, request: DiskRequest, now_ms: float) -> None:
        move = self._move
        if move is None:  # pragma: no cover - defensive
            return
        self.stats.migration_ios += 1
        self.stats.migration_busy_ms += request.service_ms
        if request.failed:
            # A constituent I/O died (media error / retries exhausted).
            # Nothing was committed, so the home copy stays authoritative.
            self.stats.moves_failed += 1
            self._move = None
            self._continue(now_ms)
            return
        disk = self.driver.disk
        if move.index == 0:
            move.value = disk.read_data(move.physical_block)
        elif move.index == 1:
            disk.write_data(move.reserved_block, move.value)
        if move.index + 1 < len(move.steps):
            move.index += 1
            self._issue_step(now_ms)
            return
        # Final step: commit — unless foreground traffic slipped in since
        # the home block was read, in which case the captured value may be
        # stale and the move is abandoned (the orphaned reserved-area copy
        # is harmless: the table never points at it).
        assert self.detector is not None
        if self.detector.activity_seq != move.start_seq:
            self.stats.moves_cancelled += 1
        else:
            table = self.driver.block_table
            table.add(move.physical_block, move.reserved_block)
            table.write_to_disk()
            io = self.driver.io_counter
            io.copy_in_ios += 2
            io.table_write_ios += 1
            self.stats.moves_completed += 1
            self._moves_left -= 1
            if self.tracer is not NULL_TRACER:
                self.tracer.migration_move(
                    self._device,
                    now_ms,
                    move.logical_block,
                    move.reserved_block,
                    len(move.steps),
                )
        self._move = None
        self._continue(now_ms)

    def _continue(self, now_ms: float) -> None:
        if self.driver.busy or self.driver.queue:
            return  # foreground holds the disk; the next window resumes
        self._start_next_move(now_ms)

    def _on_crash(self, event: MachineCrash) -> None:
        if self._move is not None:
            # The in-flight step was dropped by the engine and the block
            # table already recovered from its reserved-area copy, which
            # never saw this move — abandoning it is exactly the nightly
            # cycle's between-moves crash semantics.
            self.stats.crash_aborts += 1
            self._move = None
        self._moves_left = 0

    def drain(self) -> None:
        """Cancel any remaining plan at end of day (controller teardown).

        Called from :meth:`RearrangementController.final_poll
        <repro.core.controller.RearrangementController.final_poll>`: no
        further moves start, and a move still mid-flight (possible when a
        caller stopped the event loop with ``run(until_ms)``) is
        abandoned uncommitted — the same safe state a crash leaves.
        """
        if self._move is not None:
            self.stats.moves_cancelled += 1
            self._move = None
        self._moves_left = 0


class OnlineRearranger:
    """One device's online rearrangement stack: detector + arranger.

    Built fresh by the controller for each simulated day (each day runs
    its own :class:`~repro.sim.engine.Simulation`); the
    :class:`MigrationStats` object is supplied by the controller and
    persists across days.
    """

    def __init__(
        self,
        ioctl: IoctlInterface,
        analyzer: ReferenceStreamAnalyzer,
        policy: OnlinePolicy,
        stats: MigrationStats | None = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.arranger = IncrementalArranger(
            ioctl, analyzer, policy, stats=stats, tracer=tracer
        )
        self.detector = IdleDetector(
            device=ioctl.device_name,
            driver=ioctl.driver,
            idle_ms=policy.idle_ms,
            on_idle_window=self.arranger.window_opened,
        )

    @property
    def stats(self) -> MigrationStats:
        return self.arranger.stats

    def attach_to(self, simulation: Simulation) -> None:
        device = self.detector.device
        self.arranger.attach(simulation, device, self.detector)
        self.detector.attach(simulation)

    def drain(self) -> None:
        self.arranger.drain()
