"""The reference stream analyzer (Section 4.2).

A user-level process that periodically reads the driver's request table
(via ioctl) and maintains a list of block-number/reference-count pairs.
"In the worst case, the length of the reference stream analyzer's list will
be proportional to the number of blocks on the disk ... However, the
analyzer can guess at the hottest blocks using a much smaller amount of
memory ... by limiting the size of the list.  In case a block that does not
appear on the list is referenced, a replacement heuristic is used to make
room for it."

The analyzer's *counter strategy* decides how much state those counts take
(see :mod:`repro.core.counters`):

* ``exact`` (default) — one count per referenced block, exactly the
  paper's configuration and bit-identical to the historical behaviour of
  this module.  Optionally bounded by ``capacity``, in which case one of
  two replacement heuristics makes room for new blocks, following the
  probabilistic hot-spot estimation line of work the paper points to
  ([Salem 92], [Salem 93]):

  * ``space-saving`` — the classic stream-summary rule: the new block
    evicts the minimum-count entry and *inherits* its count plus one.
    Guarantees the true hottest blocks appear in the list once their
    counts exceed the eviction floor.
  * ``evict-min`` — the naive rule: the new block evicts the
    minimum-count entry and starts from one.  Cheaper, but biased against
    late-arriving hot blocks; included as the ablation baseline.

* ``spacesaving`` — the heap-backed Space-Saving sketch: O(log k)
  updates, O(k log k) nightly ranking independent of the device size, and
  the paper's day-to-day count fading applied at :meth:`reset`.  The
  scalable choice for multi-million-block devices.

An unbounded exact counter (``capacity=None``) is what the paper used in
its experiments ("the analyzer maintained a list of several thousand
reference counts, enough so that replacement was rarely necessary").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..driver.ioctl import IoctlInterface
from ..driver.monitor import RequestRecord
from .counters import COUNTER_STRATEGIES, DEFAULT_FADING, SpaceSavingSketch

REPLACEMENT_HEURISTICS = ("space-saving", "evict-min")

# Below this many tracked blocks the plain-Python ranking beats the numpy
# round trip; above it the vectorized sort wins by an order of magnitude.
_VECTOR_RANK_MIN = 2048

# Batch at least this many records before the vectorized unique/merge
# ingestion path pays for itself.
_VECTOR_INGEST_MIN = 1024


def _ranked(
    counts: dict[int, int], limit: int | None = None
) -> list[tuple[int, int]]:
    """Rank (block, count) pairs by decreasing count, ties by block.

    Large tables go through ``numpy.lexsort``, which produces exactly the
    ordering of ``sorted(key=lambda item: (-count, block))``.  With a
    ``limit``, only the leading entries are materialized as Python pairs —
    on a multi-million-block device that is the difference between a
    ``num_blocks``-sized list and millions of tuples per nightly cycle.
    """
    if len(counts) < _VECTOR_RANK_MIN:
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked if limit is None else ranked[:limit]
    import numpy as np

    blocks = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
    tallies = np.fromiter(counts.values(), dtype=np.int64, count=len(counts))
    order = np.lexsort((blocks, -tallies))
    if limit is not None:
        order = order[:limit]
    return list(zip(blocks[order].tolist(), tallies[order].tolist()))


@dataclass
class ReferenceStreamAnalyzer:
    """Estimates block reference frequencies from the monitored stream."""

    capacity: int | None = None
    heuristic: str = "space-saving"
    counter: str = "exact"
    fading: float = DEFAULT_FADING
    count_reads: bool = True
    count_writes: bool = True
    replacements: int = 0
    observed: int = 0
    _counts: dict[int, int] = field(default_factory=dict)
    _sketch: SpaceSavingSketch | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity <= 0:
            raise ValueError("capacity must be positive (or None)")
        if self.heuristic not in REPLACEMENT_HEURISTICS:
            raise ValueError(
                f"unknown heuristic {self.heuristic!r}; "
                f"known: {', '.join(REPLACEMENT_HEURISTICS)}"
            )
        if self.counter not in COUNTER_STRATEGIES:
            raise ValueError(
                f"unknown counter strategy {self.counter!r}; "
                f"known: {', '.join(COUNTER_STRATEGIES)}"
            )
        if self.counter == "spacesaving":
            if self.capacity is None:
                raise ValueError(
                    "the spacesaving counter needs a capacity (sketch size)"
                )
            self._sketch = SpaceSavingSketch(
                capacity=self.capacity, fading=self.fading
            )

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(self, block: int) -> None:
        """Count one reference to ``block``."""
        self.observed += 1
        sketch = self._sketch
        if sketch is not None:
            sketch.observe(block)
            self.replacements = sketch.replacements
            return
        if block in self._counts:
            self._counts[block] += 1
            return
        if self.capacity is None or len(self._counts) < self.capacity:
            self._counts[block] = 1
            return
        self._replace(block)

    def _replace(self, block: int) -> None:
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self.replacements += 1
        if self.heuristic == "space-saving":
            self._counts[block] = floor + 1
        else:  # evict-min
            self._counts[block] = 1

    def observe_records(self, records: Iterable[RequestRecord]) -> int:
        """Digest one batch of request-table records; returns blocks seen."""
        if (
            self._sketch is None
            and self.capacity is None
            and isinstance(records, list)
            and len(records) >= _VECTOR_INGEST_MIN
        ):
            return self._observe_records_batch(records)
        seen = 0
        for record in records:
            if record.is_read and not self.count_reads:
                continue
            if not record.is_read and not self.count_writes:
                continue
            for offset in range(record.size_blocks):
                self.observe(record.logical_block + offset)
                seen += 1
        return seen

    def _observe_records_batch(self, records: list[RequestRecord]) -> int:
        """Vectorized ingestion for the unbounded exact counter.

        Tallies the batch with ``numpy.unique`` and merges the per-block
        sums into the count table.  Only the *unbounded* exact counter may
        take this path: the bounded one's eviction tiebreak depends on the
        table's insertion order, which a merged update would not preserve.
        (Count *values* — and therefore the canonically sorted
        :meth:`hot_blocks` ranking — are order-independent.)
        """
        import numpy as np

        count_reads = self.count_reads
        count_writes = self.count_writes
        blocks: list[int] = []
        for record in records:
            if (count_reads if record.is_read else count_writes):
                if record.size_blocks == 1:
                    blocks.append(record.logical_block)
                else:
                    start = record.logical_block
                    blocks.extend(range(start, start + record.size_blocks))
        if not blocks:
            return 0
        unique, tallies = np.unique(
            np.asarray(blocks, dtype=np.int64), return_counts=True
        )
        counts = self._counts
        get = counts.get
        for block, tally in zip(unique.tolist(), tallies.tolist()):
            counts[block] = get(block, 0) + tally
        self.observed += len(blocks)
        return len(blocks)

    def poll(self, ioctl: IoctlInterface) -> int:
        """Read and clear the driver's request table (the 2-minute poll)."""
        return self.observe_records(ioctl.read_requests())

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def hot_blocks(self, n: int | None = None) -> list[tuple[int, int]]:
        """The hottest blocks as (logical block, estimated count), ordered
        by decreasing estimated frequency (ties by block number for
        determinism)."""
        if n is not None and n < 0:
            raise ValueError("n must be non-negative")
        sketch = self._sketch
        if sketch is not None:
            ranked = sorted(
                sketch.items(), key=lambda item: (-item[1], item[0])
            )
            return ranked if n is None else ranked[:n]
        return _ranked(self._counts, n)

    def count_of(self, block: int) -> int:
        if self._sketch is not None:
            return self._sketch.count_of(block)
        return self._counts.get(block, 0)

    def distinct_blocks(self) -> int:
        if self._sketch is not None:
            return len(self._sketch)
        return len(self._counts)

    def reset(self) -> None:
        """Forget the day's state (called at the start of a new day).

        The exact counter clears completely; the ``spacesaving`` sketch
        ages its counters by the fading factor instead, so yesterday's
        hot spots decay smoothly rather than vanishing.
        """
        sketch = self._sketch
        if sketch is not None:
            sketch.reset()
        self._counts.clear()
        self.replacements = 0
        self.observed = 0
