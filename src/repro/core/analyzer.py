"""The reference stream analyzer (Section 4.2).

A user-level process that periodically reads the driver's request table
(via ioctl) and maintains a list of block-number/reference-count pairs.
"In the worst case, the length of the reference stream analyzer's list will
be proportional to the number of blocks on the disk ... However, the
analyzer can guess at the hottest blocks using a much smaller amount of
memory ... by limiting the size of the list.  In case a block that does not
appear on the list is referenced, a replacement heuristic is used to make
room for it."

Two replacement heuristics are provided, following the probabilistic
hot-spot estimation line of work the paper points to ([Salem 92],
[Salem 93]):

* ``space-saving`` — the classic stream-summary rule: the new block evicts
  the minimum-count entry and *inherits* its count plus one.  Guarantees
  the true hottest blocks appear in the list once their counts exceed the
  eviction floor.
* ``evict-min`` — the naive rule: the new block evicts the minimum-count
  entry and starts from one.  Cheaper, but biased against late-arriving
  hot blocks; included as the ablation baseline.

An unbounded list (``capacity=None``) degenerates to exact counting, which
is what the paper used in its experiments ("the analyzer maintained a list
of several thousand reference counts, enough so that replacement was
rarely necessary").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..driver.ioctl import IoctlInterface
from ..driver.monitor import RequestRecord

REPLACEMENT_HEURISTICS = ("space-saving", "evict-min")


@dataclass
class ReferenceStreamAnalyzer:
    """Estimates block reference frequencies from the monitored stream."""

    capacity: int | None = None
    heuristic: str = "space-saving"
    count_reads: bool = True
    count_writes: bool = True
    replacements: int = 0
    observed: int = 0
    _counts: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity <= 0:
            raise ValueError("capacity must be positive (or None)")
        if self.heuristic not in REPLACEMENT_HEURISTICS:
            raise ValueError(
                f"unknown heuristic {self.heuristic!r}; "
                f"known: {', '.join(REPLACEMENT_HEURISTICS)}"
            )

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(self, block: int) -> None:
        """Count one reference to ``block``."""
        self.observed += 1
        if block in self._counts:
            self._counts[block] += 1
            return
        if self.capacity is None or len(self._counts) < self.capacity:
            self._counts[block] = 1
            return
        self._replace(block)

    def _replace(self, block: int) -> None:
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self.replacements += 1
        if self.heuristic == "space-saving":
            self._counts[block] = floor + 1
        else:  # evict-min
            self._counts[block] = 1

    def observe_records(self, records: Iterable[RequestRecord]) -> int:
        """Digest one batch of request-table records; returns blocks seen."""
        seen = 0
        for record in records:
            if record.is_read and not self.count_reads:
                continue
            if not record.is_read and not self.count_writes:
                continue
            for offset in range(record.size_blocks):
                self.observe(record.logical_block + offset)
                seen += 1
        return seen

    def poll(self, ioctl: IoctlInterface) -> int:
        """Read and clear the driver's request table (the 2-minute poll)."""
        return self.observe_records(ioctl.read_requests())

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def hot_blocks(self, n: int | None = None) -> list[tuple[int, int]]:
        """The hottest blocks as (logical block, estimated count), ordered
        by decreasing estimated frequency (ties by block number for
        determinism)."""
        ranked = sorted(
            self._counts.items(), key=lambda item: (-item[1], item[0])
        )
        if n is None:
            return ranked
        if n < 0:
            raise ValueError("n must be non-negative")
        return ranked[:n]

    def count_of(self, block: int) -> int:
        return self._counts.get(block, 0)

    def distinct_blocks(self) -> int:
        return len(self._counts)

    def reset(self) -> None:
        """Forget all counts (called at the start of a new measurement day)."""
        self._counts.clear()
        self.replacements = 0
        self.observed = 0
