"""The daily rearrangement cycle (Sections 4.2 and 5.1).

Ties the user-level pieces together the way the paper's experiments ran:

* during the day, the reference stream analyzer polls the driver's request
  table every two minutes;
* at the end of the day, "block reference counts measured during one day
  were used (at the end of the day) to rearrange blocks for the next day's
  requests": the reserved area is cleaned and repopulated from the day's
  hot block list (or just cleaned, for an "off" day);
* counts are then reset for the next measurement day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..driver.ioctl import IoctlInterface
from ..faults.injector import SimulatedCrash
from ..faults.plan import DEGRADE_ACTIONS
from ..obs.tracer import NULL_TRACER, Tracer
from ..policy import NightlyPolicy, OnlinePolicy, RearrangementPolicy
from .analyzer import ReferenceStreamAnalyzer

if TYPE_CHECKING:  # avoid a circular import with repro.sim
    from ..sim.engine import Simulation

    from .online import MigrationStats, OnlineRearranger
from .arranger import BlockArranger, RearrangementPlan
from .hotlist import HotBlockList

MONITOR_POLL_INTERVAL_MS = 120_000.0
"""The paper polled the request table every two minutes (Section 4.1.4)."""


@dataclass
class RearrangementController:
    """Orchestrates monitoring and the nightly rearrangement."""

    ioctl: IoctlInterface
    analyzer: ReferenceStreamAnalyzer = field(
        default_factory=ReferenceStreamAnalyzer
    )
    arranger: BlockArranger | None = None
    policy: RearrangementPolicy = field(default_factory=NightlyPolicy)
    """*When* rearrangement happens (``repro.policy``).  The default
    :class:`~repro.policy.NightlyPolicy` is the paper's end-of-day batch
    cycle; :class:`~repro.policy.OnlinePolicy` migrates incrementally
    during idle windows instead (:mod:`repro.core.online`), and
    :class:`~repro.policy.NoRearrangement` only monitors.  The health
    monitor (:attr:`max_error_rate`) applies to the nightly cycle."""
    poll_interval_ms: float = MONITOR_POLL_INTERVAL_MS
    last_plan: RearrangementPlan | None = None
    tracer: Tracer = NULL_TRACER
    """Observation hooks for the nightly cycle; adopted from the
    simulation on :meth:`attach_to` unless one was set explicitly."""

    max_error_rate: float | None = None
    """Health threshold: when the fraction of today's requests that hit a
    device error exceeds this, tonight's rearrangement is degraded per
    :attr:`degrade_action` (``None`` disables the health monitor)."""

    degrade_action: str = "clean"
    """What a degraded night does: ``"clean"`` still empties the reserved
    area (no new copies onto a suspect device); ``"skip"`` issues no
    rearrangement I/O at all and leaves yesterday's arrangement in place."""

    degraded_days: int = 0
    """Nights the health monitor downgraded (for reporting)."""

    crash_recoveries: int = 0
    """Mid-rearrangement crashes survived via the recovery protocol."""

    online_stats: MigrationStats | None = None
    """Cumulative online-migration counters; created on first attach
    under an :class:`~repro.policy.OnlinePolicy` and carried across days."""

    _online: OnlineRearranger | None = field(default=None, repr=False)
    """This day's online rearranger (rebuilt per simulation day)."""

    def __post_init__(self) -> None:
        if self.arranger is None:
            self.arranger = BlockArranger(self.ioctl)
        if not isinstance(self.policy, RearrangementPolicy):
            from ..policy import resolve_policy

            self.policy = resolve_policy(self.policy)
        if self.degrade_action not in DEGRADE_ACTIONS:
            raise ValueError(
                f"degrade_action must be one of {DEGRADE_ACTIONS}, "
                f"got {self.degrade_action!r}"
            )

    # ------------------------------------------------------------------
    # Daytime monitoring
    # ------------------------------------------------------------------

    def attach_to(self, simulation: Simulation) -> None:
        """Register the analyzer's periodic request-table poll.

        Under an :class:`~repro.policy.OnlinePolicy` this also wires up
        the day's incremental rearranger: the idle detector's bus
        subscriptions and the engine's migration sink are bound to this
        simulation, with the migration counters persisting across days.
        """
        if self.tracer is NULL_TRACER:
            self.tracer = simulation.tracer
        simulation.add_periodic(
            self.poll_interval_ms,
            lambda now_ms: self.analyzer.poll(self.ioctl),
            name="reference-stream-analyzer",
        )
        if isinstance(self.policy, OnlinePolicy):
            from .online import MigrationStats, OnlineRearranger

            if self.online_stats is None:
                self.online_stats = MigrationStats()
            self._online = OnlineRearranger(
                ioctl=self.ioctl,
                analyzer=self.analyzer,
                policy=self.policy,
                stats=self.online_stats,
                tracer=self.tracer,
            )
            self._online.attach_to(simulation)

    def final_poll(self) -> None:
        """Drain whatever is left at day end: any in-flight incremental
        plan is cancelled cleanly first (the nightly cycle no longer owns
        teardown), then the request table is read a last time."""
        if self._online is not None:
            self._online.drain()
        self.analyzer.poll(self.ioctl)

    def hot_list(self, limit: int | None = None) -> HotBlockList:
        return HotBlockList.from_pairs(self.analyzer.hot_blocks(limit))

    # ------------------------------------------------------------------
    # End-of-day transitions
    # ------------------------------------------------------------------

    def end_of_day(
        self,
        now_ms: float,
        rearrange_tomorrow: bool,
        num_blocks: int,
    ) -> float:
        """Run the nightly cycle; returns the time the moves finished.

        If tomorrow is an "on" day, the reserved area is cleaned and
        repopulated from today's counts; otherwise it is just cleaned
        (the "off" configuration leaves the reserved region unused).
        Today's counts are reset either way.

        Two robustness paths wrap the paper's cycle.  The health monitor
        downgrades the night (per :attr:`degrade_action`) when today's
        device error rate crossed :attr:`max_error_rate` — rearranging
        onto a disk that is throwing errors only multiplies the damage.
        And a :class:`SimulatedCrash` between block moves is caught here:
        the machine goes down mid-cycle and comes back up through the
        driver's recovery protocol (block table re-read from the reserved
        area, every surviving entry conservatively dirty); the remaining
        moves of the night are abandoned.

        Non-nightly policies never run the batch cycle: an
        :class:`~repro.policy.OnlinePolicy` day has already migrated
        during its idle windows (the arrangement is kept in place for
        tomorrow), and :class:`~repro.policy.NoRearrangement` never
        moves anything; both just drain, reset the day's counts, and
        return.
        """
        if not isinstance(self.policy, NightlyPolicy):
            return self._end_of_day_inline(now_ms)
        self.final_poll()
        assert self.arranger is not None
        device = self.ioctl.device_name
        driver = self.ioctl.driver
        degraded = (
            self.max_error_rate is not None
            and driver.fault_stats.day_error_rate > self.max_error_rate
        )
        if degraded:
            self.degraded_days += 1
            rearrange_tomorrow = False
        self.tracer.rearrangement_begin(
            device, now_ms, num_blocks if rearrange_tomorrow else 0
        )
        injector = getattr(driver, "faults", None)
        if injector is not None:
            injector.begin_rearrangement_cycle()
        try:
            if rearrange_tomorrow:
                # With the default min_count of 1 the arranger's frequency
                # filter keeps every observed block, so only the hottest
                # ``num_blocks`` can be selected — skip materializing the
                # (potentially device-sized) full ranking.  A raised
                # threshold must see the full list to filter it.
                limit = num_blocks if self.arranger.min_count <= 1 else None
                plan, finish = self.arranger.rearrange(
                    self.hot_list(limit), num_blocks, now_ms
                )
                self.last_plan = plan
            elif degraded and self.degrade_action == "skip":
                finish = now_ms  # no rearrangement I/O at all
                self.last_plan = None
            else:
                finish = self.ioctl.clean(now_ms)
                self.last_plan = None
        except SimulatedCrash as crash:
            # The nightly cycle runs on a drained queue, so the only
            # volatile state lost is the block table's in-memory copy.
            driver.crash(crash.now_ms)
            finish = driver.recover(crash.now_ms)
            self.last_plan = None
            self.crash_recoveries += 1
        moved = len(self.last_plan) if self.last_plan is not None else 0
        self.tracer.rearrangement_end(device, finish, moved)
        self.analyzer.reset()
        driver.fault_stats.start_new_day()
        return finish

    def _end_of_day_inline(self, now_ms: float) -> float:
        """Day rollover for the policies with no nightly cycle.

        Drains any in-flight incremental plan (via :meth:`final_poll`),
        leaves the current arrangement in place — under
        :class:`~repro.policy.OnlinePolicy` tonight's table *is*
        tomorrow's starting point — and resets the day's reference
        counts and fault counters.  No rearrangement I/O is issued.
        """
        self.final_poll()
        self.last_plan = None
        self.analyzer.reset()
        self.ioctl.driver.fault_stats.start_new_day()
        return now_ms
