"""Streaming counter strategies for the reference stream analyzer.

The paper's analyzer keeps one reference count per block — fine at 1993
geometries (a few hundred thousand blocks), but on a multi-million-block
device the nightly frequency ranking is O(N log N) in the device size and
the count table alone dwarfs the block table.  The analyzer therefore
supports two counter strategies:

``exact``
    One count per referenced block (the paper's configuration), optionally
    bounded by the analyzer's classic replacement heuristics.  The default,
    and bit-identical to the historical behaviour.

``spacesaving``
    The Space-Saving top-k sketch of Metwally, Agrawal & El Abbadi (*Efficient
    computation of frequent and top-k elements in data streams*, ICDT 2005):
    at most ``capacity`` counters; a block that is not being tracked evicts
    the minimum-count entry and inherits its count plus one, so any block
    whose true frequency exceeds the eviction floor is guaranteed to be
    present.  Nightly analysis cost becomes O(k log k) in the sketch size,
    independent of the device size.

    Between days the sketch applies the paper's count-*aging* rule instead
    of discarding history: Akyürek & Salem fade reference counts at the end
    of each analysis period so that yesterday's hot spots decay smoothly
    rather than vanishing.  Each sketch counter is scaled by the ``fading``
    factor (default ``0.8``) at :meth:`reset`; counters that fade to zero
    are dropped.  ``fading=0`` restores the exact counter's clear-at-reset
    behaviour.

Eviction is deterministic: the victim is the smallest ``(count, block)``
pair, so runs are reproducible across machines and Python versions.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Iterator

COUNTER_STRATEGIES = ("exact", "spacesaving")
"""Counter strategy names accepted by the analyzer, config, and CLI."""

DEFAULT_FADING = 0.8
"""Default day-to-day count-aging factor for the ``spacesaving`` sketch."""

# The lazy heap keeps one entry per count *update*; compact it back to one
# entry per tracked block once it grows past this multiple of the capacity.
_HEAP_SLACK = 8


class SpaceSavingSketch:
    """Space-Saving top-k frequency sketch with deterministic eviction.

    Counts live in a dict (block -> estimated count); the minimum entry is
    found through a lazy min-heap of ``(count, block)`` pairs — every count
    update pushes a fresh pair, stale pairs are discarded when popped, and
    the heap is compacted once it outgrows ``_HEAP_SLACK`` times the
    capacity.  Updates are O(log k) amortized.
    """

    __slots__ = ("capacity", "fading", "replacements", "_counts", "_heap")

    def __init__(self, capacity: int, fading: float = DEFAULT_FADING) -> None:
        if capacity <= 0:
            raise ValueError("sketch capacity must be positive")
        if not 0.0 <= fading <= 1.0:
            raise ValueError("fading factor must be in [0, 1]")
        self.capacity = capacity
        self.fading = fading
        self.replacements = 0
        self._counts: dict[int, int] = {}
        self._heap: list[tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._counts)

    def observe(self, block: int) -> None:
        """Count one reference to ``block``."""
        counts = self._counts
        count = counts.get(block)
        if count is not None:
            count += 1
        elif len(counts) < self.capacity:
            count = 1
        else:
            count = self._evict() + 1
            self.replacements += 1
        counts[block] = count
        heap = self._heap
        heappush(heap, (count, block))
        if len(heap) > _HEAP_SLACK * self.capacity:
            self._compact()

    def _evict(self) -> int:
        """Drop the minimum ``(count, block)`` entry; return its count."""
        counts = self._counts
        heap = self._heap
        while True:
            count, block = heappop(heap)
            # A pair is current iff the dict still agrees; a stale pair
            # that happens to agree is indistinguishable from a current
            # one *and* carries the correct count, so acting on it is
            # sound either way.
            if counts.get(block) == count:
                del counts[block]
                return count

    def _compact(self) -> None:
        self._heap = [(count, block) for block, count in self._counts.items()]
        heapify(self._heap)

    def count_of(self, block: int) -> int:
        return self._counts.get(block, 0)

    def items(self) -> Iterator[tuple[int, int]]:
        """The tracked (block, estimated count) pairs, unordered."""
        return iter(self._counts.items())

    def reset(self) -> None:
        """Age the counters by the fading factor (end of an analysis day).

        Each count becomes ``floor(count * fading)``; zeroed counters are
        dropped.  With ``fading=0`` the sketch empties completely.
        """
        if self.fading <= 0.0:
            self._counts.clear()
        else:
            fading = self.fading
            self._counts = {
                block: faded
                for block, count in self._counts.items()
                if (faded := int(count * fading)) > 0
            }
        self._compact()
        self.replacements = 0
