"""Resilient process fan-out shared by campaigns and the fleet runner.

This module is the one place multiprocessing happens.  It grew out of the
campaign runner's ``_fan_out`` helper (``sim/experiment.py``), then out of
the fail-fast ``imap`` loop that PR 6 shipped, and now serves both the
paper-shaped experiment campaigns and the fleet shard runner
(:mod:`repro.fleet`) with production-grade failure handling:

* :func:`fan_out` — an order-preserving parallel map built on a
  **submission loop** over dedicated worker processes: per-task batches
  are dispatched over pipes, results stream back one by one, and the
  parent watches worker *sentinels* so a hard-killed worker (SIGKILL,
  OOM) is detected and its task re-dispatched instead of hanging the
  run forever.  A :class:`RetryPolicy` adds per-task timeouts with
  straggler re-dispatch and bounded retries with deterministic seeded
  backoff — a retry re-runs the *same* task (same item, same seed), so
  a successful retry is digest-identical to a first-try success.  The
  ``on_error`` policy decides what an exhausted task does: ``"raise"``
  (fail the run, the historical behaviour), ``"skip"`` (drop it with a
  warning) or ``"degrade"`` (record it and keep going); skipped and
  degraded tasks surface as :class:`TaskFailure` records through the
  ``on_failure`` hook and as ``None`` result slots.
* :func:`spawn_seeds` — child seeds derived with
  :class:`numpy.random.SeedSequence` spawning, the statistically sound
  replacement for ad-hoc ``base_seed + i`` schemes: every child stream
  is independent no matter how close the parent seeds are.
* :func:`resolve_workers` — the worker-count policy (``None`` = one per
  task up to the CPU count; explicit values are validated, then clamped
  to the task count with a warning when they exceed it).

Determinism contract: tasks must be self-contained (their own seeds, no
shared state), so results are byte-identical at any worker count, with
any retry policy, and under any injected chaos that the retries absorb —
the regression tests pin ``workers=1`` against ``workers=8`` digests and
chaos runs against fault-free ones.

Chaos injection (``chaos=``) accepts any object with an
``apply(index, attempt)`` method — see
:class:`repro.faults.chaos.ChaosPlan` — called on the *worker* before
the task function, so injected hangs and hard exits exercise the real
recovery paths.  Attaching chaos forces pool execution even for
``workers=1`` (a hard exit must kill a child, not the caller).
"""

from __future__ import annotations

import heapq
import multiprocessing
import multiprocessing.connection
import os
import random
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

_T = TypeVar("_T")
_R = TypeVar("_R")

__all__ = [
    "ON_ERROR_POLICIES",
    "RetryPolicy",
    "TaskFailure",
    "WorkerTaskError",
    "fan_out",
    "resolve_workers",
    "spawn_seeds",
]

ON_ERROR_POLICIES = ("raise", "skip", "degrade")
"""What :func:`fan_out` does with a task whose attempts are exhausted:
``raise`` fails the whole run (first exhausted task wins), ``skip`` drops
the task with a :class:`RuntimeWarning`, ``degrade`` records it silently.
Either way the failure reaches the ``on_failure`` hook and the task's
result slot is ``None``."""

_EXCEPTION = "exception"
_TIMEOUT = "timeout"
_WORKER_DEATH = "worker-death"


class WorkerTaskError(RuntimeError):
    """A task failed on a worker process (after any configured retries).

    Carries the task's context label (e.g. ``"fleet shard 3 (devices
    d0024..d0031, seed 1842516266)"``) and the worker-side traceback, so
    a failure in a 1,000-device run points at the shard and seed to
    re-run serially rather than at an anonymous pool frame.
    """

    def __init__(
        self,
        context: str,
        cause: str,
        worker_traceback: str,
        attempts: int = 1,
    ):
        super().__init__(f"{context}: {cause}")
        self.context = context
        self.cause = cause
        self.worker_traceback = worker_traceback
        self.attempts = attempts

    def __str__(self) -> str:  # keep the worker's trace visible in logs
        attempts = (
            f" (after {self.attempts} attempts)" if self.attempts > 1 else ""
        )
        return (
            f"{self.context}: {self.cause}{attempts}\n"
            f"--- worker traceback ---\n{self.worker_traceback}"
        )


@dataclass(frozen=True)
class TaskFailure:
    """One task's permanent failure record (its attempts are exhausted).

    ``kind`` is ``"exception"`` (the task function raised),
    ``"timeout"`` (the per-task deadline expired and the straggling
    worker was killed) or ``"worker-death"`` (the worker process died
    hard — SIGKILL, OOM, ``os._exit``).  The same record, with the
    attempt count of the *failed* attempt, is what the ``on_retry`` hook
    receives for non-final failures.
    """

    index: int
    context: str
    attempts: int
    kind: str
    cause: str
    worker_traceback: str = ""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries, per-task timeouts, deterministic seeded backoff.

    ``max_attempts`` counts the first try: the default ``3`` means one
    try plus two retries.  ``timeout_s`` (``None`` = wait forever) is the
    per-attempt deadline measured in the parent; an expired attempt's
    worker is killed and the task re-dispatched, which also bounds how
    long a hung or silently dead worker can stall the run.  Backoff for
    attempt ``k`` is ``backoff_s * 2**(k-1)`` capped at
    ``backoff_cap_s``, jittered into ``[0.5x, 1.5x)`` by a RNG seeded
    from ``(seed, task index, attempt)`` — deterministic per task, so
    two runs of the same failing workload schedule identically.

    Retries never change the task: the identical item (and therefore the
    identical task seed) is re-sent, so a retried success is
    bit-identical to a first-try success.
    """

    max_attempts: int = 3
    timeout_s: float | None = None
    backoff_s: float = 0.0
    backoff_cap_s: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.backoff_cap_s < 0:
            raise ValueError("backoff_cap_s must be non-negative")

    def delay_s(self, index: int, attempt: int) -> float:
        """Backoff before re-dispatching task ``index`` after ``attempt``."""
        if self.backoff_s <= 0:
            return 0.0
        base = min(self.backoff_s * 2.0 ** (attempt - 1), self.backoff_cap_s)
        jitter = random.Random(f"{self.seed}:{index}:{attempt}").random()
        return base * (0.5 + jitter)


def spawn_seeds(seed: int | np.random.SeedSequence, n: int) -> list[int]:
    """``n`` independent child seeds spawned from ``seed``.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so the children's
    streams are pairwise independent even for adjacent parent seeds
    (unlike ``seed + i`` arithmetic, where nearby parents can yield
    correlated generators).  Each child is reduced to a single 64-bit
    integer so it can ride inside frozen config dataclasses, JSON
    metadata, and CLI reprs.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    sequence = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return [
        int(child.generate_state(2, np.uint64)[0])
        for child in sequence.spawn(n)
    ]


def resolve_workers(
    workers: int | None, tasks: int, what: str = "task"
) -> int:
    """Number of worker processes to use for ``tasks`` independent jobs.

    ``None`` means "use the machine": one worker per task up to the CPU
    count.  Explicit values below 1 are rejected outright (before any
    clamping, and regardless of the task count); values above the task
    count are clamped with a warning (the extra processes would only sit
    idle).
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if tasks <= 0:
        return 0
    if workers is None:
        workers = os.cpu_count() or 1
    elif workers > tasks:
        warnings.warn(
            f"requested {workers} workers for {tasks} {what}(s); "
            f"using {tasks} (one per {what})",
            RuntimeWarning,
            stacklevel=2,
        )
    return min(workers, tasks)


def _default_chunk_size(tasks: int, workers: int) -> int:
    """Batch tasks so each worker sees a handful of IPC exchanges.

    Four batches per worker balances exchange overhead against load
    skew: big enough to amortize pickling, small enough that one slow
    task does not strand a whole batch behind it.  Pass an explicit
    ``chunk_size`` (e.g. 1) when early failure detection and smooth
    progress matter more than exchange overhead.
    """
    return max(1, tasks // (workers * 4))


def _worker_main(fn, chaos, conn) -> None:
    """Worker loop: receive task batches, stream one result per task.

    Each message from the parent is a list of ``(index, attempt, item)``
    triples (or ``None`` to shut down); each reply is one
    ``(index, attempt, ok, payload)`` tuple, sent as soon as that task
    finishes so the parent sees per-task completions (and can time out
    the *current* task) even inside a batch.  Exceptions never cross the
    pipe raw — they are reduced to ``(repr, traceback)`` so the parent
    re-raises them with task context attached.
    """
    try:
        while True:
            batch = conn.recv()
            if batch is None:
                return
            for index, attempt, item in batch:
                try:
                    if chaos is not None:
                        chaos.apply(index, attempt)
                    result = fn(item)
                except Exception as exc:  # noqa: BLE001 - shipped to parent
                    conn.send(
                        (
                            index,
                            attempt,
                            False,
                            (repr(exc), traceback.format_exc()),
                        )
                    )
                else:
                    conn.send((index, attempt, True, result))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        return


class _Worker:
    """One managed worker process and its duplex pipe.

    ``outstanding`` holds the ``(index, attempt)`` pairs dispatched but
    not yet answered, in execution order — its head is the task the
    worker is running *now*, which is what per-task timeouts and
    worker-death attribution key off.  ``head_started`` is reset each
    time a result arrives, so the deadline always covers the currently
    running task, not the whole batch.
    """

    __slots__ = ("proc", "conn", "outstanding", "head_started")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.outstanding: deque[tuple[int, int]] = deque()
        self.head_started = time.monotonic()


class _PoolRun:
    """State machine for one resilient fan-out over a worker pool."""

    def __init__(
        self,
        fn,
        tasks,
        workers,
        *,
        context,
        chunk_size,
        retry,
        on_error,
        chaos,
        on_result,
        on_complete,
        on_retry,
        on_failure,
    ) -> None:
        self.fn = fn
        self.tasks = tasks
        self.workers = workers
        self.context = context
        self.chunk_size = chunk_size
        self.retry = retry
        self.max_attempts = retry.max_attempts if retry else 1
        self.timeout_s = retry.timeout_s if retry else None
        self.on_error = on_error
        self.chaos = chaos
        self.on_result = on_result
        self.on_complete = on_complete
        self.on_retry = on_retry
        self.on_failure = on_failure

        methods = multiprocessing.get_all_start_methods()
        self.ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        n = len(tasks)
        self.slots: list[Any] = [None] * n
        self.ok: list[bool] = [False] * n
        self.resolved: list[bool] = [False] * n
        self.pending: deque[tuple[int, int]] = deque(
            (index, 1) for index in range(n)
        )
        self.delayed: list[tuple[float, int, int]] = []  # (at, index, attempt)
        self.completed = 0
        self.delivered = 0
        self.pool: list[_Worker] = []

    # -- lifecycle -------------------------------------------------------

    def run(self) -> list[Any]:
        try:
            self.pool = [self._spawn() for _ in range(self.workers)]
            self._loop()
        except BaseException:
            self._shutdown(force=True)
            raise
        self._shutdown(force=False)
        return self.slots

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self.ctx.Pipe()
        proc = self.ctx.Process(
            target=_worker_main,
            args=(self.fn, self.chaos, child_conn),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def _shutdown(self, force: bool) -> None:
        """Stop every worker; ``force`` skips the polite goodbye.

        The forced path runs on any error — including
        ``KeyboardInterrupt`` — so a cancelled run never leaves pool
        children behind: terminate, then join, then SIGKILL stragglers.
        """
        for worker in self.pool:
            if not force:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            try:
                worker.conn.close()
            except OSError:
                pass
        for worker in self.pool:
            if force:
                worker.proc.terminate()
            worker.proc.join(timeout=2.0)
        for worker in self.pool:
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=2.0)
        self.pool = []

    # -- main loop -------------------------------------------------------

    def _loop(self) -> None:
        n = len(self.tasks)
        while self.completed < n:
            now = time.monotonic()
            while self.delayed and self.delayed[0][0] <= now:
                _, index, attempt = heapq.heappop(self.delayed)
                self.pending.append((index, attempt))
            while len(self.pool) < self.workers and (
                self.pending or self.delayed
            ):
                self.pool.append(self._spawn())
            self._dispatch()
            self._wait()
            self._check_timeouts()

    def _dispatch(self) -> None:
        for worker in self.pool:
            if worker.outstanding or not self.pending:
                continue
            batch = []
            while self.pending and len(batch) < self.chunk_size:
                index, attempt = self.pending.popleft()
                batch.append((index, attempt, self.tasks[index]))
            try:
                worker.conn.send(batch)
            except (BrokenPipeError, OSError):
                # Died before dispatch: requeue, let sentinel handling
                # reap and replace it.
                for index, attempt, _ in reversed(batch):
                    self.pending.appendleft((index, attempt))
                continue
            worker.outstanding.extend(
                (index, attempt) for index, attempt, _ in batch
            )
            worker.head_started = time.monotonic()

    def _wait(self) -> None:
        busy = [worker for worker in self.pool if worker.outstanding]
        objects = [worker.conn for worker in busy]
        objects += [worker.proc.sentinel for worker in self.pool]
        timeout = self._wait_timeout()
        if not objects:
            if timeout is not None and timeout > 0:
                time.sleep(timeout)
            elif not self.pending and not self.delayed:
                raise RuntimeError(
                    "fan_out stalled: tasks unfinished but nothing running, "
                    "queued, or scheduled for retry"
                )
            return
        ready = set(
            multiprocessing.connection.wait(objects, timeout=timeout)
        )
        for worker in list(self.pool):
            if worker.conn in ready:
                self._drain(worker)
        for worker in list(self.pool):
            if worker.proc.sentinel in ready and worker in self.pool:
                self._reap_dead(worker)

    def _wait_timeout(self) -> float | None:
        now = time.monotonic()
        candidates = []
        if self.timeout_s is not None:
            for worker in self.pool:
                if worker.outstanding:
                    candidates.append(
                        worker.head_started + self.timeout_s - now
                    )
        if self.delayed:
            candidates.append(self.delayed[0][0] - now)
        if not candidates:
            return None
        return max(0.0, min(candidates))

    # -- event handling --------------------------------------------------

    def _drain(self, worker: _Worker) -> None:
        """Consume every buffered result from one worker's pipe."""
        try:
            while worker.conn.poll():
                index, attempt, ok, payload = worker.conn.recv()
                try:
                    worker.outstanding.remove((index, attempt))
                except ValueError:
                    continue  # stale duplicate (should not happen)
                worker.head_started = time.monotonic()
                if self.resolved[index]:
                    continue
                if ok:
                    self._succeed(index, payload)
                else:
                    cause, worker_tb = payload
                    self._attempt_failed(
                        index, attempt, _EXCEPTION, cause, worker_tb
                    )
        except (EOFError, OSError):
            return  # died mid-send; the sentinel path picks it up

    def _reap_dead(self, worker: _Worker) -> None:
        """A worker's sentinel fired: it exited without being asked.

        Buffered results are still readable after death, so drain first;
        whatever remains outstanding was lost with the process — its
        head (the task that was running) is charged a failed attempt,
        the not-yet-started tail is requeued for free.
        """
        self._drain(worker)
        self.pool.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=2.0)
        exit_code = worker.proc.exitcode
        if not worker.outstanding:
            return
        index, attempt = worker.outstanding.popleft()
        for entry in reversed(worker.outstanding):
            self.pending.appendleft(entry)
        worker.outstanding.clear()
        self._attempt_failed(
            index,
            attempt,
            _WORKER_DEATH,
            f"worker process died (exit code {exit_code})",
            "",
        )

    def _check_timeouts(self) -> None:
        if self.timeout_s is None:
            return
        now = time.monotonic()
        for worker in list(self.pool):
            if not worker.outstanding:
                continue
            if now - worker.head_started < self.timeout_s:
                continue
            self._drain(worker)  # a result may have raced the deadline
            if (
                not worker.outstanding
                or now - worker.head_started < self.timeout_s
            ):
                continue
            index, attempt = worker.outstanding.popleft()
            for entry in reversed(worker.outstanding):
                self.pending.appendleft(entry)
            worker.outstanding.clear()
            self.pool.remove(worker)
            worker.proc.terminate()
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            self._attempt_failed(
                index,
                attempt,
                _TIMEOUT,
                f"timed out after {self.timeout_s:g}s "
                "(straggler killed and re-dispatched)",
                "",
            )

    # -- outcome bookkeeping ---------------------------------------------

    def _succeed(self, index: int, result: Any) -> None:
        self.slots[index] = result
        self.ok[index] = True
        self.resolved[index] = True
        self.completed += 1
        if self.on_complete is not None:
            self.on_complete(index, result)
        self._deliver()

    def _attempt_failed(
        self, index: int, attempt: int, kind: str, cause: str, worker_tb: str
    ) -> None:
        failure = TaskFailure(
            index, self.context(index), attempt, kind, cause, worker_tb
        )
        if attempt < self.max_attempts:
            if self.on_retry is not None:
                self.on_retry(failure)
            delay = self.retry.delay_s(index, attempt) if self.retry else 0.0
            heapq.heappush(
                self.delayed,
                (time.monotonic() + delay, index, attempt + 1),
            )
            return
        if self.on_error == "raise":
            raise WorkerTaskError(
                failure.context, cause, worker_tb, attempts=attempt
            )
        if self.on_error == "skip":
            warnings.warn(
                f"skipping {failure.context}: {cause} "
                f"(after {attempt} attempt(s))",
                RuntimeWarning,
                stacklevel=4,
            )
        if self.on_failure is not None:
            self.on_failure(failure)
        self.resolved[index] = True
        self.completed += 1
        self._deliver()

    def _deliver(self) -> None:
        """Advance the in-order delivery pointer over resolved slots."""
        n = len(self.tasks)
        while self.delivered < n and self.resolved[self.delivered]:
            if self.ok[self.delivered] and self.on_result is not None:
                self.on_result(self.delivered, self.slots[self.delivered])
            self.delivered += 1


def _fan_out_inline(
    fn,
    tasks,
    *,
    context,
    retry,
    on_error,
    on_result,
    on_complete,
    on_retry,
    on_failure,
):
    """Serial in-process fallback (no pool, no per-task timeouts)."""
    max_attempts = retry.max_attempts if retry else 1
    results: list[Any] = []
    for index, item in enumerate(tasks):
        attempt = 1
        result: Any = None
        succeeded = False
        while True:
            try:
                result = fn(item)
            except Exception as exc:
                cause = repr(exc)
                worker_tb = traceback.format_exc()
                if attempt < max_attempts:
                    if on_retry is not None:
                        on_retry(
                            TaskFailure(
                                index,
                                context(index),
                                attempt,
                                _EXCEPTION,
                                cause,
                                worker_tb,
                            )
                        )
                    delay = retry.delay_s(index, attempt) if retry else 0.0
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                if on_error == "raise":
                    raise WorkerTaskError(
                        context(index), cause, worker_tb, attempts=attempt
                    ) from exc
                failure = TaskFailure(
                    index, context(index), attempt, _EXCEPTION, cause, worker_tb
                )
                if on_error == "skip":
                    warnings.warn(
                        f"skipping {failure.context}: {cause} "
                        f"(after {attempt} attempt(s))",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                if on_failure is not None:
                    on_failure(failure)
                break
            else:
                succeeded = True
                break
        if succeeded:
            if on_complete is not None:
                on_complete(index, result)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        else:
            results.append(None)
    return results


def fan_out(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: int | None = None,
    *,
    label: Callable[[int, _T], str] | None = None,
    chunk_size: int | None = None,
    on_result: Callable[[int, _R], None] | None = None,
    on_complete: Callable[[int, _R], None] | None = None,
    on_retry: Callable[[TaskFailure], None] | None = None,
    on_failure: Callable[[TaskFailure], None] | None = None,
    retry: RetryPolicy | None = None,
    on_error: str = "raise",
    chaos: Any | None = None,
    what: str = "task",
) -> list[_R]:
    """Map ``fn`` over ``items`` on worker processes, order-preserving.

    Falls back to an in-process loop for a single worker (or item), so
    serial runs never pay multiprocessing overhead and results are
    byte-identical either way: every item must be an independent,
    self-seeded unit of work.  Two things force pool execution even at
    ``workers=1``: a ``retry`` policy with a timeout (a hung task can
    only be preempted from outside the process) and ``chaos`` (an
    injected hard exit must kill a child, not the caller).

    ``label`` produces the context string attached to a failure (it
    receives the item's index and the item itself).  ``chunk_size``
    controls how many tasks ride one dispatch message (default: ~4
    batches per worker); results still stream back one by one.

    Hooks, all called in the parent: ``on_result(index, result)`` in
    task order for successes (the progress hook for long fleet runs);
    ``on_complete(index, result)`` immediately in *completion* order
    (the journaling hook — a checkpoint must not wait for in-order
    delivery behind a straggler); ``on_retry(failure)`` when an attempt
    fails but will be retried; ``on_failure(failure)`` when a task's
    attempts are exhausted under ``on_error="skip"``/``"degrade"``.

    Failure semantics are set by ``retry`` (attempts, per-task timeout,
    seeded backoff — see :class:`RetryPolicy`) and ``on_error`` (see
    :data:`ON_ERROR_POLICIES`).  With the defaults — no retries,
    ``on_error="raise"`` — behaviour matches the historical fail-fast
    executor, except that a hard-killed worker is now detected and
    reported instead of hanging the run.
    """
    if on_error not in ON_ERROR_POLICIES:
        raise ValueError(
            f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
        )
    tasks = list(items)
    workers = resolve_workers(workers, len(tasks), what=what)

    def context(index: int) -> str:
        if label is not None:
            return label(index, tasks[index])
        return f"{what} {index}"

    if not tasks:
        return []
    needs_pool = chaos is not None or (
        retry is not None and retry.timeout_s is not None
    )
    if (workers <= 1 or len(tasks) <= 1) and not needs_pool:
        return _fan_out_inline(
            fn,
            tasks,
            context=context,
            retry=retry,
            on_error=on_error,
            on_result=on_result,
            on_complete=on_complete,
            on_retry=on_retry,
            on_failure=on_failure,
        )
    if chunk_size is None:
        chunk_size = _default_chunk_size(len(tasks), workers)
    elif chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    run = _PoolRun(
        fn,
        tasks,
        max(workers, 1),
        context=context,
        chunk_size=chunk_size,
        retry=retry,
        on_error=on_error,
        chaos=chaos,
        on_result=on_result,
        on_complete=on_complete,
        on_retry=on_retry,
        on_failure=on_failure,
    )
    return run.run()
