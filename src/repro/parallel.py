"""Generic process-pool fan-out shared by campaigns and the fleet runner.

This module is the one place multiprocessing happens.  It grew out of the
campaign runner's ``_fan_out`` helper (``sim/experiment.py``) and now
serves both the paper-shaped experiment campaigns and the fleet shard
runner (:mod:`repro.fleet`):

* :func:`fan_out` — an order-preserving parallel map with **batched
  result exchange** (``imap`` with a chunk size, so many small tasks do
  not pay one IPC round-trip each), a streaming ``on_result`` hook for
  progress reporting, and **contextful error propagation**: a worker
  exception surfaces as :class:`WorkerTaskError` naming the failed task
  (which shard, which seed) with the worker's traceback attached,
  instead of a bare pool traceback.
* :func:`spawn_seeds` — child seeds derived with
  :class:`numpy.random.SeedSequence` spawning, the statistically sound
  replacement for ad-hoc ``base_seed + i`` schemes: every child stream
  is independent no matter how close the parent seeds are.
* :func:`resolve_workers` — the worker-count policy (``None`` = one per
  task up to the CPU count; explicit values are clamped to the task
  count, with a warning when they exceed it).

Determinism contract: tasks must be self-contained (their own seeds, no
shared state), so results are byte-identical at any worker count — the
regression tests pin ``workers=1`` against ``workers=8`` digests.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
import warnings
from typing import Callable, Sequence, TypeVar

import numpy as np

_T = TypeVar("_T")
_R = TypeVar("_R")

__all__ = [
    "WorkerTaskError",
    "fan_out",
    "resolve_workers",
    "spawn_seeds",
]


class WorkerTaskError(RuntimeError):
    """A task failed on a worker process.

    Carries the task's context label (e.g. ``"fleet shard 3 (devices
    d0024..d0031, seed 1842516266)"``) and the worker-side traceback, so
    a failure in a 1,000-device run points at the shard and seed to
    re-run serially rather than at an anonymous pool frame.
    """

    def __init__(self, context: str, cause: str, worker_traceback: str):
        super().__init__(f"{context}: {cause}")
        self.context = context
        self.cause = cause
        self.worker_traceback = worker_traceback

    def __str__(self) -> str:  # keep the worker's trace visible in logs
        return (
            f"{self.context}: {self.cause}\n"
            f"--- worker traceback ---\n{self.worker_traceback}"
        )


def spawn_seeds(seed: int | np.random.SeedSequence, n: int) -> list[int]:
    """``n`` independent child seeds spawned from ``seed``.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so the children's
    streams are pairwise independent even for adjacent parent seeds
    (unlike ``seed + i`` arithmetic, where nearby parents can yield
    correlated generators).  Each child is reduced to a single 64-bit
    integer so it can ride inside frozen config dataclasses, JSON
    metadata, and CLI reprs.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    sequence = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return [
        int(child.generate_state(2, np.uint64)[0])
        for child in sequence.spawn(n)
    ]


def resolve_workers(
    workers: int | None, tasks: int, what: str = "task"
) -> int:
    """Number of worker processes to use for ``tasks`` independent jobs.

    ``None`` means "use the machine": one worker per task up to the CPU
    count.  Explicit values are clamped to the task count; asking for
    more workers than there are tasks earns a warning (the extra
    processes would only sit idle).
    """
    if tasks <= 0:
        return 0
    if workers is None:
        workers = os.cpu_count() or 1
    elif workers > tasks:
        warnings.warn(
            f"requested {workers} workers for {tasks} {what}(s); "
            f"using {tasks} (one per {what})",
            RuntimeWarning,
            stacklevel=2,
        )
    if workers < 1:
        raise ValueError("workers must be positive")
    return min(workers, tasks)


class _IndexedCall:
    """Picklable wrapper running one ``(index, item)`` pair on a worker.

    Returns ``(index, True, result)`` or ``(index, False, (repr, tb))``
    — exceptions never cross the process boundary raw, so the parent can
    re-raise them with task context attached.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[_T], _R]) -> None:
        self.fn = fn

    def __call__(self, pair: tuple[int, _T]):
        index, item = pair
        try:
            return index, True, self.fn(item)
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            return index, False, (repr(exc), traceback.format_exc())


def _default_chunk_size(tasks: int, workers: int) -> int:
    """Batch tasks so each worker sees a handful of IPC exchanges.

    Four batches per worker balances exchange overhead against load
    skew: big enough to amortize pickling, small enough that one slow
    task does not strand a whole batch behind it.
    """
    return max(1, tasks // (workers * 4))


def fan_out(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: int | None = None,
    *,
    label: Callable[[int, _T], str] | None = None,
    chunk_size: int | None = None,
    on_result: Callable[[int, _R], None] | None = None,
    what: str = "task",
) -> list[_R]:
    """Map ``fn`` over ``items`` on worker processes, order-preserving.

    Falls back to an in-process loop for a single worker (or item), so
    serial runs never pay multiprocessing overhead and results are
    byte-identical either way: every item must be an independent,
    self-seeded unit of work.

    ``label`` produces the context string attached to a failure (it
    receives the item's index and the item itself); ``on_result`` is
    called in the parent, in task order, as each result arrives — the
    progress hook for long fleet runs.  ``chunk_size`` controls the
    batched result exchange (default: ~4 batches per worker).
    """
    tasks = list(items)
    workers = resolve_workers(workers, len(tasks), what=what)

    def context(index: int) -> str:
        if label is not None:
            return label(index, tasks[index])
        return f"{what} {index}"

    if workers <= 1 or len(tasks) <= 1:
        results: list[_R] = []
        for index, item in enumerate(tasks):
            try:
                result = fn(item)
            except Exception as exc:
                raise WorkerTaskError(
                    context(index), repr(exc), traceback.format_exc()
                ) from exc
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results

    methods = multiprocessing.get_all_start_methods()
    mp_context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    if chunk_size is None:
        chunk_size = _default_chunk_size(len(tasks), workers)
    results = []
    with mp_context.Pool(processes=workers) as pool:
        for index, ok, payload in pool.imap(
            _IndexedCall(fn), list(enumerate(tasks)), chunksize=chunk_size
        ):
            if not ok:
                cause, worker_tb = payload
                pool.terminate()
                raise WorkerTaskError(context(index), cause, worker_tb)
            if on_result is not None:
                on_result(index, payload)
            results.append(payload)
    return results
