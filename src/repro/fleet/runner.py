"""Shard construction and execution for fleet runs.

A *shard* is a contiguous group of devices run by one
:class:`~repro.sim.multifs.MultiDiskExperiment` on one worker process.
:func:`build_shard_tasks` turns a :class:`~repro.fleet.spec.FleetSpec`
into picklable :class:`ShardTask` units — all seeds spawned up front via
``SeedSequence`` (one child per shard, grandchildren per device, plus
one child for the fleet-wide shared hot set) — and :func:`run_fleet`
fans them out through :func:`repro.parallel.fan_out`.

Only :class:`~repro.fleet.result.ShardResult` objects cross the process
boundary back: fixed-size log-scale histograms and per-device scalar
totals, never raw samples or per-request state.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..parallel import (
    RetryPolicy,
    TaskFailure,
    fan_out,
    resolve_workers,
    spawn_seeds,
)
from ..sim.multifs import DiskSpec, MultiDiskExperiment
from ..stats.streaming import LogHistogram
from ..workload.tenancy import SharedHotSet, device_profiles
from .checkpoint import FleetJournal
from .result import FleetResult, ShardFailure, ShardResult
from .spec import FleetSpec

__all__ = ["ShardTask", "build_shard_tasks", "run_fleet"]


@dataclass(frozen=True)
class ShardTask:
    """One shard's worth of work, self-contained and picklable."""

    index: int
    seed: int
    """The shard's own spawned seed (reported in error context and
    results so a failing shard can be re-run serially)."""
    specs: tuple[DiskSpec, ...]
    schedule: tuple[bool, ...]

    @property
    def device_names(self) -> tuple[str, ...]:
        return tuple(spec.name or "" for spec in self.specs)


def _seed_of(sequence: np.random.SeedSequence) -> int:
    return int(sequence.generate_state(2, np.uint64)[0])


def build_shard_tasks(spec: FleetSpec) -> list[ShardTask]:
    """Deterministically expand a fleet spec into shard tasks.

    The seed tree is ``SeedSequence(spec.seed).spawn(num_shards + 1)``:
    child ``i`` seeds shard ``i``'s devices (one grandchild each), and
    the last child seeds the fleet-wide :class:`SharedHotSet`.  Nothing
    here depends on the worker count, so the expansion — and therefore
    the whole run — is identical at any parallelism.
    """
    schedule = spec.resolved_schedule()
    profiles = device_profiles(spec.tenancy, spec.devices, hours=spec.hours)
    children = np.random.SeedSequence(spec.seed).spawn(spec.num_shards + 1)
    shared_hot = None
    if spec.tenancy.hot_set_overlap > 0:
        shared_hot = SharedHotSet(
            fraction=spec.tenancy.hot_set_overlap,
            seed=_seed_of(children[-1]),
        )
    tasks: list[ShardTask] = []
    for shard, sequence in enumerate(children[: spec.num_shards]):
        indices = spec.shard_devices(shard)
        device_seeds = spawn_seeds(sequence, len(indices))
        specs = tuple(
            DiskSpec(
                disk=spec.disk,
                profile=profiles[device],
                name=spec.device_name(device),
                seed=device_seeds[offset],
                num_blocks=spec.num_blocks,
                placement_policy=spec.placement_policy,
                queue_policy=spec.queue_policy,
                counter=spec.counter,
                analyzer_capacity=spec.analyzer_capacity,
                shared_hot=shared_hot,
                policy=spec.policy,
            )
            for offset, device in enumerate(indices)
        )
        tasks.append(
            ShardTask(
                index=shard,
                seed=_seed_of(sequence),
                specs=specs,
                schedule=schedule,
            )
        )
    return tasks


def _run_shard(task: ShardTask) -> ShardResult:
    """Run one shard's multi-device experiment through its schedule.

    Executed on a worker process: everything returned must be small and
    mergeable (histograms + scalars), since a fleet run ships one of
    these per shard back to the parent.
    """
    experiment = MultiDiskExperiment(list(task.specs))
    service_on = LogHistogram()
    service_off = LogHistogram()
    device_requests: Counter[str] = Counter()
    rearranged_blocks = 0
    for day, on_today in enumerate(task.schedule):
        on_tomorrow = (
            task.schedule[day + 1] if day + 1 < len(task.schedule) else False
        )
        result = experiment.run_day(
            rearranged=on_today, rearrange_tomorrow=on_tomorrow
        )
        target = service_on if on_today else service_off
        for name, metrics in result.per_device.items():
            target.absorb_time_histogram(metrics.all.service_histogram)
        device_requests.update(result.per_device_requests)
        rearranged_blocks = sum(result.rearranged_blocks.values())
    return ShardResult(
        index=task.index,
        seed=task.seed,
        device_requests=dict(device_requests),
        service_on=service_on,
        service_off=service_off,
        rearranged_blocks=rearranged_blocks,
        days=len(task.schedule),
        events=experiment.events_dispatched,
    )


def _shard_label(index: int, task: ShardTask) -> str:
    names = task.device_names
    return (
        f"fleet shard {task.index} "
        f"(devices {names[0]}..{names[-1]}, seed {task.seed})"
    )


def run_fleet(
    spec: FleetSpec,
    workers: int | None = None,
    on_shard: Callable[[int, ShardResult], None] | None = None,
    *,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    retry: RetryPolicy | None = None,
    on_error: str = "raise",
    chaos: Any | None = None,
    chunk_size: int | None = None,
    on_retry: Callable[[TaskFailure], None] | None = None,
    on_failure: Callable[[TaskFailure], None] | None = None,
) -> FleetResult:
    """Run a whole fleet and aggregate its shard results.

    Execution knobs — ``workers`` (``None`` = one worker per shard up to
    the CPU count), ``chunk_size`` (shards per dispatch message; small
    fleets want ``1`` for smooth progress and early failure detection),
    ``retry`` (per-shard timeouts, bounded retries, seeded backoff) and
    ``chaos`` (injected worker faults, for testing) — never change the
    digest: a retried or chaos-ridden run that completes is bit-identical
    to a clean serial one.  Attaching ``chaos`` forces pool execution
    even at ``workers=1``, since injected hard exits must kill a child
    process, not the caller.

    ``checkpoint`` journals each completed shard to a JSONL file as it
    lands; with ``resume=True`` an existing journal's shards are loaded
    (and skipped) first, so an interrupted run finishes paying only for
    the shards it lost.  Without ``resume``, an existing journal is
    truncated: a fresh run must not silently mix with stale records.

    ``on_error`` decides what exhausted shards do (see
    :data:`repro.parallel.ON_ERROR_POLICIES`): ``"raise"`` fails the
    run; ``"skip"``/``"degrade"`` drop the shard and return a *partial*
    :class:`FleetResult` carrying a failed-shard manifest, with its
    percentiles annotated as degraded in reports.

    Hooks run in the parent: ``on_shard(shard_index, result)`` in shard
    order (progress), ``on_retry(TaskFailure)`` per retried attempt,
    ``on_failure(TaskFailure)`` per permanently failed shard.
    """
    tasks = build_shard_tasks(spec)
    journaled: dict[int, ShardResult] = {}
    journal: FleetJournal | None = None
    if checkpoint is not None:
        journal = FleetJournal(checkpoint, spec)
        if resume:
            journaled = journal.load()
        journal.open_for_append(fresh=not resume)
        for index in sorted(journaled):
            journal_result = journaled[index]
            if on_shard is not None:
                on_shard(index, journal_result)
    pending = [task for task in tasks if task.index not in journaled]
    workers = resolve_workers(
        workers, len(pending) or len(tasks), what="fleet shard"
    )

    retried = 0
    failures: list[ShardFailure] = []

    def note_retry(failure: TaskFailure) -> None:
        nonlocal retried
        retried += 1
        if on_retry is not None:
            on_retry(failure)

    def note_failure(failure: TaskFailure) -> None:
        task = pending[failure.index]
        failures.append(
            ShardFailure(
                index=task.index,
                devices=task.device_names,
                seed=task.seed,
                attempts=failure.attempts,
                kind=failure.kind,
                error=failure.cause,
            )
        )
        if on_failure is not None:
            on_failure(failure)

    def journal_shard(index: int, result: ShardResult) -> None:
        assert journal is not None
        journal.append(result)

    def deliver(index: int, result: ShardResult) -> None:
        if on_shard is not None:
            on_shard(pending[index].index, result)

    try:
        fresh = fan_out(
            _run_shard,
            pending,
            workers,
            label=_shard_label,
            chunk_size=chunk_size,
            on_result=deliver,
            on_complete=journal_shard if journal is not None else None,
            on_retry=note_retry,
            on_failure=note_failure,
            retry=retry,
            on_error=on_error,
            chaos=chaos,
            what="fleet shard",
        )
    finally:
        if journal is not None:
            journal.close()
    completed = dict(journaled)
    completed.update(
        (task.index, result)
        for task, result in zip(pending, fresh)
        if result is not None
    )
    shards = [completed[index] for index in sorted(completed)]
    return FleetResult(
        spec=spec,
        shards=shards,
        workers=workers,
        failures=failures,
        retried_tasks=retried,
    )
