"""Shard construction and execution for fleet runs.

A *shard* is a contiguous group of devices run by one
:class:`~repro.sim.multifs.MultiDiskExperiment` on one worker process.
:func:`build_shard_tasks` turns a :class:`~repro.fleet.spec.FleetSpec`
into picklable :class:`ShardTask` units — all seeds spawned up front via
``SeedSequence`` (one child per shard, grandchildren per device, plus
one child for the fleet-wide shared hot set) — and :func:`run_fleet`
fans them out through :func:`repro.parallel.fan_out`.

Only :class:`~repro.fleet.result.ShardResult` objects cross the process
boundary back: fixed-size log-scale histograms and per-device scalar
totals, never raw samples or per-request state.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..parallel import fan_out, resolve_workers, spawn_seeds
from ..sim.multifs import DiskSpec, MultiDiskExperiment
from ..stats.streaming import LogHistogram
from ..workload.tenancy import SharedHotSet, device_profiles
from .result import FleetResult, ShardResult
from .spec import FleetSpec

__all__ = ["ShardTask", "build_shard_tasks", "run_fleet"]


@dataclass(frozen=True)
class ShardTask:
    """One shard's worth of work, self-contained and picklable."""

    index: int
    seed: int
    """The shard's own spawned seed (reported in error context and
    results so a failing shard can be re-run serially)."""
    specs: tuple[DiskSpec, ...]
    schedule: tuple[bool, ...]

    @property
    def device_names(self) -> tuple[str, ...]:
        return tuple(spec.name or "" for spec in self.specs)


def _seed_of(sequence: np.random.SeedSequence) -> int:
    return int(sequence.generate_state(2, np.uint64)[0])


def build_shard_tasks(spec: FleetSpec) -> list[ShardTask]:
    """Deterministically expand a fleet spec into shard tasks.

    The seed tree is ``SeedSequence(spec.seed).spawn(num_shards + 1)``:
    child ``i`` seeds shard ``i``'s devices (one grandchild each), and
    the last child seeds the fleet-wide :class:`SharedHotSet`.  Nothing
    here depends on the worker count, so the expansion — and therefore
    the whole run — is identical at any parallelism.
    """
    schedule = spec.resolved_schedule()
    profiles = device_profiles(spec.tenancy, spec.devices, hours=spec.hours)
    children = np.random.SeedSequence(spec.seed).spawn(spec.num_shards + 1)
    shared_hot = None
    if spec.tenancy.hot_set_overlap > 0:
        shared_hot = SharedHotSet(
            fraction=spec.tenancy.hot_set_overlap,
            seed=_seed_of(children[-1]),
        )
    tasks: list[ShardTask] = []
    for shard, sequence in enumerate(children[: spec.num_shards]):
        indices = spec.shard_devices(shard)
        device_seeds = spawn_seeds(sequence, len(indices))
        specs = tuple(
            DiskSpec(
                disk=spec.disk,
                profile=profiles[device],
                name=spec.device_name(device),
                seed=device_seeds[offset],
                num_blocks=spec.num_blocks,
                placement_policy=spec.placement_policy,
                queue_policy=spec.queue_policy,
                counter=spec.counter,
                analyzer_capacity=spec.analyzer_capacity,
                shared_hot=shared_hot,
            )
            for offset, device in enumerate(indices)
        )
        tasks.append(
            ShardTask(
                index=shard,
                seed=_seed_of(sequence),
                specs=specs,
                schedule=schedule,
            )
        )
    return tasks


def _run_shard(task: ShardTask) -> ShardResult:
    """Run one shard's multi-device experiment through its schedule.

    Executed on a worker process: everything returned must be small and
    mergeable (histograms + scalars), since a fleet run ships one of
    these per shard back to the parent.
    """
    experiment = MultiDiskExperiment(list(task.specs))
    service_on = LogHistogram()
    service_off = LogHistogram()
    device_requests: Counter[str] = Counter()
    rearranged_blocks = 0
    for day, on_today in enumerate(task.schedule):
        on_tomorrow = (
            task.schedule[day + 1] if day + 1 < len(task.schedule) else False
        )
        result = experiment.run_day(
            rearranged=on_today, rearrange_tomorrow=on_tomorrow
        )
        target = service_on if on_today else service_off
        for name, metrics in result.per_device.items():
            target.absorb_time_histogram(metrics.all.service_histogram)
        device_requests.update(result.per_device_requests)
        rearranged_blocks = sum(result.rearranged_blocks.values())
    return ShardResult(
        index=task.index,
        seed=task.seed,
        device_requests=dict(device_requests),
        service_on=service_on,
        service_off=service_off,
        rearranged_blocks=rearranged_blocks,
        days=len(task.schedule),
        events=experiment.events_dispatched,
    )


def _shard_label(index: int, task: ShardTask) -> str:
    names = task.device_names
    return (
        f"fleet shard {task.index} "
        f"(devices {names[0]}..{names[-1]}, seed {task.seed})"
    )


def run_fleet(
    spec: FleetSpec,
    workers: int | None = None,
    on_shard: Callable[[int, ShardResult], None] | None = None,
) -> FleetResult:
    """Run a whole fleet and aggregate its shard results.

    ``workers`` is pure execution detail (``None`` = one worker per
    shard up to the CPU count); the result's digest is identical at any
    value.  ``on_shard`` is called in the parent, in shard order, as
    each shard's result arrives — the progress hook for long runs.
    """
    tasks = build_shard_tasks(spec)
    workers = resolve_workers(workers, len(tasks), what="fleet shard")
    shards = fan_out(
        _run_shard,
        tasks,
        workers,
        label=_shard_label,
        on_result=on_shard,
        what="fleet shard",
    )
    return FleetResult(spec=spec, shards=shards, workers=workers)
