"""The fleet's one source of truth: devices, shards, schedule, seeds.

Everything about a fleet run that affects its *results* lives in
:class:`FleetSpec` — device count and model, the tenancy knobs, the
on/off schedule, the shard layout, the seed.  Execution details (worker
count, chunk sizes) deliberately do not: two runs of the same spec must
produce bit-identical digests at any parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.counters import COUNTER_STRATEGIES
from ..disk.models import DISK_MODELS
from ..policy import RearrangementPolicy, resolve_policy
from ..workload.tenancy import TenancySpec

__all__ = ["FleetSpec"]


@dataclass(frozen=True)
class FleetSpec:
    """A reproducible fleet experiment."""

    devices: int = 64
    """Physical disks in the fleet."""
    disk: str = "fujitsu"
    """Disk model every device uses (``"toshiba"``/``"fujitsu"``/``"modern"``)."""
    tenancy: TenancySpec = field(default_factory=TenancySpec)
    """User population and traffic shape (see :mod:`repro.workload.tenancy`)."""
    days: int = 3
    """Length of the default schedule: one training (off) day, then
    rearranged days.  Ignored when ``schedule`` is given explicitly."""
    schedule: tuple[bool, ...] | None = None
    """Explicit per-day rearrangement schedule; day 0 must be off."""
    hours: float | None = None
    """Shorten each measurement day (for quick/bench runs); ``None``
    keeps the profile's full day."""
    devices_per_shard: int = 8
    """Shard width.  Part of the spec, *not* an execution knob: shard
    boundaries feed the seed derivation, so changing the width changes
    the run (changing ``workers`` never does)."""
    num_blocks: int | None = None
    """Blocks each device rearranges nightly; default: the paper's
    per-model choice."""
    counter: str = "spacesaving"
    """Analyzer counter strategy; the bounded sketch by default, so
    per-device analyzer state stays O(capacity) on large disks."""
    analyzer_capacity: int | None = None
    placement_policy: str = "organ-pipe"
    queue_policy: str = "scan"
    policy: RearrangementPolicy | str | None = None
    """Per-device rearrangement policy (instance or ``"nightly"`` /
    ``"online"`` / ``"off"`` shorthand).  ``None`` keeps the nightly
    cycle and — for digest stability across releases — is omitted from
    the spec payload entirely."""
    seed: int = 1993
    """Root of the fleet's ``SeedSequence`` tree (one child per shard,
    one grandchild per device, one child for the shared hot set)."""

    def __post_init__(self) -> None:
        resolve_policy(self.policy)  # validate shorthand/type early
        if self.devices < 1:
            raise ValueError("devices must be positive")
        if self.devices_per_shard < 1:
            raise ValueError("devices_per_shard must be positive")
        if self.disk not in DISK_MODELS:
            known = ", ".join(sorted(DISK_MODELS))
            raise ValueError(f"unknown disk {self.disk!r}; known: {known}")
        if self.counter not in COUNTER_STRATEGIES:
            known = ", ".join(COUNTER_STRATEGIES)
            raise ValueError(
                f"unknown counter strategy {self.counter!r}; known: {known}"
            )
        if self.schedule is not None:
            if len(self.schedule) < 1:
                raise ValueError("schedule cannot be empty")
            if self.schedule[0]:
                raise ValueError(
                    "day 0 cannot be an 'on' day: no reference counts exist yet"
                )
        elif self.days < 2:
            raise ValueError("a fleet run needs at least two days (off + on)")
        if self.hours is not None and self.hours <= 0:
            raise ValueError("hours must be positive")

    # -- derived layout --------------------------------------------------

    def resolved_schedule(self) -> tuple[bool, ...]:
        """The per-day rearrangement schedule actually run."""
        if self.schedule is not None:
            return tuple(self.schedule)
        return (False,) + (True,) * (self.days - 1)

    @property
    def num_shards(self) -> int:
        return -(-self.devices // self.devices_per_shard)  # ceil division

    def shard_devices(self, shard: int) -> range:
        """Global device indices belonging to ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range")
        start = shard * self.devices_per_shard
        return range(start, min(start + self.devices_per_shard, self.devices))

    def device_name(self, index: int) -> str:
        """Stable device name, e.g. ``"d0042"``."""
        return f"d{index:04d}"
