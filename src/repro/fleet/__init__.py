"""Fleet-scale simulation: many devices, sharded across worker processes.

The paper rearranged blocks on one server's two disks.  This package
asks the production question: what does adaptive rearrangement buy
across a *fleet* — hundreds to thousands of devices serving a shared
multi-tenant workload?  It composes three layers built below it:

* :mod:`repro.workload.tenancy` shapes the traffic: tenants with a Zipf
  load skew, deterministically assigned to devices, over a fleet-wide
  shared hot set.
* :class:`~repro.sim.multifs.MultiDiskExperiment` runs each *shard* (a
  contiguous group of devices) behind one simulation engine.
* :mod:`repro.parallel` fans shards out to worker processes, and
  :class:`~repro.stats.streaming.LogHistogram` brings the results back
  as fixed-size mergeable histograms instead of raw samples.

Determinism contract: the shard layout and every seed derive from
:class:`FleetSpec` alone (via ``SeedSequence.spawn``), never from the
worker count — ``run_fleet(spec, workers=1)`` and ``workers=8`` produce
bit-identical digests.  The resilience layer (``docs/resilience.md``)
extends the contract to failure handling: retries re-run identical
tasks, checkpointed shards round-trip exactly, so a chaos-ridden or
resumed run that completes is bit-identical to an uninterrupted one.
"""

from .checkpoint import CheckpointError, FleetJournal, spec_digest
from .result import (
    FleetResult,
    ShardFailure,
    ShardResult,
    render_fleet,
    spec_payload,
)
from .runner import ShardTask, build_shard_tasks, run_fleet
from .spec import FleetSpec

__all__ = [
    "CheckpointError",
    "FleetJournal",
    "FleetResult",
    "FleetSpec",
    "ShardFailure",
    "ShardResult",
    "ShardTask",
    "build_shard_tasks",
    "render_fleet",
    "run_fleet",
    "spec_digest",
    "spec_payload",
]
