"""Fleet results: shard summaries, merged percentiles, stable digests.

A fleet run reduces to one :class:`ShardResult` per shard — mergeable
log-scale service-time histograms split by rearrangement on/off days,
plus per-device request totals — and :class:`FleetResult` folds those
into fleet-wide answers: p50/p95/p99 service time, the on-vs-off
improvement, per-shard load skew.

The digest deliberately excludes execution details (worker count): it is
a function of :class:`~repro.fleet.spec.FleetSpec` alone, which is what
lets the bench gate pin one committed digest and the regression tests
assert ``workers=1`` equals ``workers=8`` bit for bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..stats.streaming import LogHistogram, merge_histograms
from .spec import FleetSpec

__all__ = ["FleetResult", "ShardResult", "render_fleet"]


@dataclass
class ShardResult:
    """One shard's aggregated outcome (the only thing workers ship back)."""

    index: int
    seed: int
    device_requests: dict[str, int]
    service_on: LogHistogram
    service_off: LogHistogram
    rearranged_blocks: int
    """Blocks sitting in the shard's reserved areas after the last day."""
    days: int
    events: int = 0
    """Simulation events dispatched across the shard's whole schedule."""

    @property
    def requests(self) -> int:
        return sum(self.device_requests.values())

    @property
    def devices(self) -> int:
        return len(self.device_requests)

    @property
    def skew(self) -> float:
        """Load imbalance inside the shard: max/mean device requests."""
        if not self.device_requests:
            return 0.0
        values = list(self.device_requests.values())
        mean = sum(values) / len(values)
        return max(values) / mean if mean > 0 else 0.0

    def payload(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "device_requests": {
                name: self.device_requests[name]
                for name in sorted(self.device_requests)
            },
            "service_on": self.service_on.payload(),
            "service_off": self.service_off.payload(),
            "rearranged_blocks": self.rearranged_blocks,
            "days": self.days,
            "events": self.events,
        }


@dataclass
class FleetResult:
    """A whole fleet day (or days), aggregated from shard results."""

    spec: FleetSpec
    shards: list[ShardResult]
    workers: int | None = None
    """How many worker processes executed the run — recorded for bench
    metadata, excluded from :meth:`payload` and :meth:`digest`."""
    _service_on: LogHistogram | None = field(
        default=None, repr=False, compare=False
    )
    _service_off: LogHistogram | None = field(
        default=None, repr=False, compare=False
    )

    # -- merged distributions -------------------------------------------

    @property
    def service_on(self) -> LogHistogram:
        """Fleet-wide service times on rearranged days."""
        if self._service_on is None:
            self._service_on = merge_histograms(
                shard.service_on for shard in self.shards
            )
        return self._service_on

    @property
    def service_off(self) -> LogHistogram:
        """Fleet-wide service times on unrearranged (training) days."""
        if self._service_off is None:
            self._service_off = merge_histograms(
                shard.service_off for shard in self.shards
            )
        return self._service_off

    def service_percentile_ms(self, q: float, rearranged: bool = True) -> float:
        hist = self.service_on if rearranged else self.service_off
        return hist.percentile(q)

    @property
    def p50_ms(self) -> float:
        return self.service_percentile_ms(0.50)

    @property
    def p95_ms(self) -> float:
        return self.service_percentile_ms(0.95)

    @property
    def p99_ms(self) -> float:
        return self.service_percentile_ms(0.99)

    @property
    def onoff_service_delta(self) -> float:
        """Fractional mean-service-time reduction, rearranged vs not."""
        off = self.service_off.mean_ms
        if off == 0:
            return 0.0
        return 1.0 - self.service_on.mean_ms / off

    # -- fleet totals ----------------------------------------------------

    @property
    def devices(self) -> int:
        return sum(shard.devices for shard in self.shards)

    @property
    def total_requests(self) -> int:
        return sum(shard.requests for shard in self.shards)

    @property
    def events(self) -> int:
        return sum(shard.events for shard in self.shards)

    @property
    def rearranged_blocks(self) -> int:
        return sum(shard.rearranged_blocks for shard in self.shards)

    def shard_skews(self) -> dict[int, float]:
        return {shard.index: shard.skew for shard in self.shards}

    # -- stable identity -------------------------------------------------

    def payload(self) -> dict:
        """Canonical JSON-able form; a pure function of the spec."""
        spec = self.spec
        return {
            "spec": {
                "devices": spec.devices,
                "disk": spec.disk,
                "days": list(spec.resolved_schedule()),
                "hours": spec.hours,
                "devices_per_shard": spec.devices_per_shard,
                "num_blocks": spec.num_blocks,
                "counter": spec.counter,
                "placement_policy": spec.placement_policy,
                "queue_policy": spec.queue_policy,
                "seed": spec.seed,
                "tenancy": {
                    "tenants": spec.tenancy.tenants,
                    "tenant_skew": spec.tenancy.tenant_skew,
                    "hot_set_overlap": spec.tenancy.hot_set_overlap,
                    "sessions_per_tenant_hour": (
                        spec.tenancy.sessions_per_tenant_hour
                    ),
                    "opens_per_tenant_hour": spec.tenancy.opens_per_tenant_hour,
                    "files_per_tenant": spec.tenancy.files_per_tenant,
                    "user_locality": spec.tenancy.user_locality,
                    "profile": spec.tenancy.profile,
                },
            },
            "shards": [shard.payload() for shard in self.shards],
            "summary": {
                "devices": self.devices,
                "total_requests": self.total_requests,
                "rearranged_blocks": self.rearranged_blocks,
                "p50_ms": self.p50_ms,
                "p95_ms": self.p95_ms,
                "p99_ms": self.p99_ms,
            },
        }

    def digest(self) -> str:
        """``sha256:<hex>`` over the canonical payload JSON."""
        from ..bench.digest import canonical_json

        encoded = canonical_json(self.payload()).encode("utf-8")
        return "sha256:" + hashlib.sha256(encoded).hexdigest()


def render_fleet(result: FleetResult) -> str:
    """Human-readable fleet summary (the ``repro fleet`` output)."""
    spec = result.spec
    lines = [
        f"fleet: {spec.devices} x {spec.disk} devices, "
        f"{result.total_requests} requests over "
        f"{len(spec.resolved_schedule())} days "
        f"({spec.tenancy.tenants} tenants, "
        f"overlap {spec.tenancy.hot_set_overlap:.2f})",
        f"  shards: {len(result.shards)} x {spec.devices_per_shard} devices"
        + (f", {result.workers} worker(s)" if result.workers else ""),
        "  service time (rearranged days): "
        f"p50 {result.p50_ms:.1f} ms, p95 {result.p95_ms:.1f} ms, "
        f"p99 {result.p99_ms:.1f} ms",
        "  service time (off days):        "
        f"p50 {result.service_percentile_ms(0.50, rearranged=False):.1f} ms, "
        f"p95 {result.service_percentile_ms(0.95, rearranged=False):.1f} ms, "
        f"p99 {result.service_percentile_ms(0.99, rearranged=False):.1f} ms",
        f"  mean service delta (on vs off): "
        f"{100.0 * result.onoff_service_delta:+.1f}%",
        f"  rearranged blocks resident: {result.rearranged_blocks}",
    ]
    skews = sorted(result.shard_skews().values())
    if skews:
        lines.append(
            "  per-shard load skew (max/mean): "
            f"min {skews[0]:.2f}, median {skews[len(skews) // 2]:.2f}, "
            f"max {skews[-1]:.2f}"
        )
    lines.append(f"  digest: {result.digest()}")
    return "\n".join(lines)
