"""Fleet results: shard summaries, merged percentiles, stable digests.

A fleet run reduces to one :class:`ShardResult` per shard — mergeable
log-scale service-time histograms split by rearrangement on/off days,
plus per-device request totals — and :class:`FleetResult` folds those
into fleet-wide answers: p50/p95/p99 service time, the on-vs-off
improvement, per-shard load skew.

The digest deliberately excludes execution details (worker count, retry
policy, chaos): it is a function of :class:`~repro.fleet.spec.FleetSpec`
alone, which is what lets the bench gate pin one committed digest and
the regression tests assert ``workers=1`` equals ``workers=8`` — and a
chaos run equals a fault-free one — bit for bit.

The one exception is degradation: when shards fail permanently (their
retries exhausted under ``on_error="skip"``/``"degrade"``), the result
is *partial* — it carries a failed-shard manifest
(:class:`ShardFailure`: shard id, devices, seed, attempts, last error),
its percentiles cover completed shards only, and both the payload and
the rendered report say so loudly.  A degraded digest therefore differs
from the complete one by construction: partial answers must never be
mistaken for whole ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..stats.report import coverage_note
from ..stats.streaming import LogHistogram, merge_histograms
from .spec import FleetSpec

__all__ = [
    "FleetResult",
    "ShardFailure",
    "ShardResult",
    "render_fleet",
    "spec_payload",
]


def spec_payload(spec: FleetSpec) -> dict:
    """Canonical JSON-able identity of a fleet spec.

    Everything that affects results and nothing that does not — shared
    by :meth:`FleetResult.payload` and the checkpoint journal header
    (:func:`repro.fleet.checkpoint.spec_digest`), so a journal binds to
    exactly the spec identity the digest pins.

    The rearrangement ``policy`` enters the payload only when set: the
    default (``None`` → nightly) is omitted so every digest minted
    before the policy knob existed stays bit-identical.
    """
    payload = {
        "devices": spec.devices,
        "disk": spec.disk,
        "days": list(spec.resolved_schedule()),
        "hours": spec.hours,
        "devices_per_shard": spec.devices_per_shard,
        "num_blocks": spec.num_blocks,
        "counter": spec.counter,
        "placement_policy": spec.placement_policy,
        "queue_policy": spec.queue_policy,
        "seed": spec.seed,
        "tenancy": {
            "tenants": spec.tenancy.tenants,
            "tenant_skew": spec.tenancy.tenant_skew,
            "hot_set_overlap": spec.tenancy.hot_set_overlap,
            "sessions_per_tenant_hour": (
                spec.tenancy.sessions_per_tenant_hour
            ),
            "opens_per_tenant_hour": spec.tenancy.opens_per_tenant_hour,
            "files_per_tenant": spec.tenancy.files_per_tenant,
            "user_locality": spec.tenancy.user_locality,
            "profile": spec.tenancy.profile,
        },
    }
    if spec.policy is not None:
        from ..policy import resolve_policy

        payload["policy"] = resolve_policy(spec.policy).payload()
    return payload


@dataclass(frozen=True)
class ShardFailure:
    """One shard that exhausted its retries (the failed-shard manifest).

    Everything an operator needs to re-run the shard serially: which
    shard, which devices, which seed, how many attempts were burned, and
    what the last attempt died of (``kind`` is ``"exception"`` /
    ``"timeout"`` / ``"worker-death"``).
    """

    index: int
    devices: tuple[str, ...]
    seed: int
    attempts: int
    kind: str
    error: str

    def payload(self) -> dict:
        return {
            "index": self.index,
            "devices": list(self.devices),
            "seed": self.seed,
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
        }


@dataclass
class ShardResult:
    """One shard's aggregated outcome (the only thing workers ship back)."""

    index: int
    seed: int
    device_requests: dict[str, int]
    service_on: LogHistogram
    service_off: LogHistogram
    rearranged_blocks: int
    """Blocks sitting in the shard's reserved areas after the last day."""
    days: int
    events: int = 0
    """Simulation events dispatched across the shard's whole schedule."""

    @property
    def requests(self) -> int:
        return sum(self.device_requests.values())

    @property
    def devices(self) -> int:
        return len(self.device_requests)

    @property
    def skew(self) -> float:
        """Load imbalance inside the shard: max/mean device requests."""
        if not self.device_requests:
            return 0.0
        values = list(self.device_requests.values())
        mean = sum(values) / len(values)
        return max(values) / mean if mean > 0 else 0.0

    def payload(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "device_requests": {
                name: self.device_requests[name]
                for name in sorted(self.device_requests)
            },
            "service_on": self.service_on.payload(),
            "service_off": self.service_off.payload(),
            "rearranged_blocks": self.rearranged_blocks,
            "days": self.days,
            "events": self.events,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardResult":
        """Rebuild a shard result from its :meth:`payload` form.

        Exact inverse: JSON floats round-trip with ``repr`` semantics
        and the histograms rebuild bin-for-bin, so a shard loaded from a
        checkpoint journal contributes the identical bytes to the fleet
        digest as the freshly computed original.
        """
        return cls(
            index=int(payload["index"]),
            seed=int(payload["seed"]),
            device_requests={
                name: int(count)
                for name, count in payload["device_requests"].items()
            },
            service_on=LogHistogram.from_payload(payload["service_on"]),
            service_off=LogHistogram.from_payload(payload["service_off"]),
            rearranged_blocks=int(payload["rearranged_blocks"]),
            days=int(payload["days"]),
            events=int(payload["events"]),
        )


@dataclass
class FleetResult:
    """A whole fleet day (or days), aggregated from shard results."""

    spec: FleetSpec
    shards: list[ShardResult]
    workers: int | None = None
    """How many worker processes executed the run — recorded for bench
    metadata, excluded from :meth:`payload` and :meth:`digest`."""
    failures: list[ShardFailure] = field(default_factory=list)
    """Shards that exhausted their retries and were dropped (empty for a
    complete run).  Non-empty failures mark the result :attr:`degraded`
    and *do* enter the payload/digest: a partial answer must not hash
    like a whole one."""
    retried_tasks: int = 0
    """Shard attempts that failed but were retried (execution detail,
    excluded from the digest — a retried success is bit-identical)."""
    _service_on: LogHistogram | None = field(
        default=None, repr=False, compare=False
    )
    _service_off: LogHistogram | None = field(
        default=None, repr=False, compare=False
    )

    # -- merged distributions -------------------------------------------

    @property
    def service_on(self) -> LogHistogram:
        """Fleet-wide service times on rearranged days (completed shards)."""
        if self._service_on is None:
            self._service_on = (
                merge_histograms(shard.service_on for shard in self.shards)
                if self.shards
                else LogHistogram()
            )
        return self._service_on

    @property
    def service_off(self) -> LogHistogram:
        """Fleet-wide service times on unrearranged (training) days."""
        if self._service_off is None:
            self._service_off = (
                merge_histograms(shard.service_off for shard in self.shards)
                if self.shards
                else LogHistogram()
            )
        return self._service_off

    def service_percentile_ms(self, q: float, rearranged: bool = True) -> float:
        hist = self.service_on if rearranged else self.service_off
        return hist.percentile(q)

    @property
    def p50_ms(self) -> float:
        return self.service_percentile_ms(0.50)

    @property
    def p95_ms(self) -> float:
        return self.service_percentile_ms(0.95)

    @property
    def p99_ms(self) -> float:
        return self.service_percentile_ms(0.99)

    @property
    def onoff_service_delta(self) -> float:
        """Fractional mean-service-time reduction, rearranged vs not."""
        off = self.service_off.mean_ms
        if off == 0:
            return 0.0
        return 1.0 - self.service_on.mean_ms / off

    # -- fleet totals ----------------------------------------------------

    @property
    def devices(self) -> int:
        return sum(shard.devices for shard in self.shards)

    @property
    def total_requests(self) -> int:
        return sum(shard.requests for shard in self.shards)

    @property
    def events(self) -> int:
        return sum(shard.events for shard in self.shards)

    @property
    def rearranged_blocks(self) -> int:
        return sum(shard.rearranged_blocks for shard in self.shards)

    def shard_skews(self) -> dict[int, float]:
        return {shard.index: shard.skew for shard in self.shards}

    # -- degradation -----------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when the run lost shards: percentiles are partial."""
        return bool(self.failures)

    @property
    def failed_shards(self) -> int:
        return len(self.failures)

    @property
    def total_shards(self) -> int:
        return len(self.shards) + len(self.failures)

    # -- stable identity -------------------------------------------------

    def payload(self) -> dict:
        """Canonical JSON-able form; a pure function of the spec.

        For a complete run the payload (and so the digest) depends on
        the spec alone — worker count, retries, chaos all excluded.  A
        degraded run adds a ``"failures"`` manifest and a ``"degraded"``
        marker, so partial results are distinguishable by digest.
        """
        payload = {
            "spec": spec_payload(self.spec),
            "shards": [shard.payload() for shard in self.shards],
            "summary": {
                "devices": self.devices,
                "total_requests": self.total_requests,
                "rearranged_blocks": self.rearranged_blocks,
                "p50_ms": self.p50_ms,
                "p95_ms": self.p95_ms,
                "p99_ms": self.p99_ms,
            },
        }
        if self.failures:
            payload["degraded"] = True
            payload["failures"] = [
                failure.payload()
                for failure in sorted(self.failures, key=lambda f: f.index)
            ]
        return payload

    def digest(self) -> str:
        """``sha256:<hex>`` over the canonical payload JSON."""
        from ..bench.digest import canonical_json

        encoded = canonical_json(self.payload()).encode("utf-8")
        return "sha256:" + hashlib.sha256(encoded).hexdigest()


def render_fleet(result: FleetResult) -> str:
    """Human-readable fleet summary (the ``repro fleet`` output).

    A degraded run is annotated twice: a leading ``DEGRADED`` banner
    naming the lost shards, and a coverage note on the percentile lines
    — partial percentiles must never read like fleet-wide ones.
    """
    spec = result.spec
    degraded_note = ""
    if result.degraded:
        degraded_note = " " + coverage_note(
            len(result.shards), result.total_shards, what="shard"
        )
    lines = [
        f"fleet: {spec.devices} x {spec.disk} devices, "
        f"{result.total_requests} requests over "
        f"{len(spec.resolved_schedule())} days "
        f"({spec.tenancy.tenants} tenants, "
        f"overlap {spec.tenancy.hot_set_overlap:.2f})",
        f"  shards: {len(result.shards)} x {spec.devices_per_shard} devices"
        + (f", {result.workers} worker(s)" if result.workers else "")
        + (
            f", {result.retried_tasks} retried attempt(s)"
            if result.retried_tasks
            else ""
        ),
    ]
    if result.degraded:
        failed = ", ".join(
            f"shard {failure.index} ({failure.kind}: {failure.error}, "
            f"{failure.attempts} attempts)"
            for failure in sorted(result.failures, key=lambda f: f.index)
        )
        lines.append(
            f"  DEGRADED: {result.failed_shards}/{result.total_shards} "
            f"shard(s) failed permanently — {failed}"
        )
    lines += [
        "  service time (rearranged days): "
        f"p50 {result.p50_ms:.1f} ms, p95 {result.p95_ms:.1f} ms, "
        f"p99 {result.p99_ms:.1f} ms" + degraded_note,
        "  service time (off days):        "
        f"p50 {result.service_percentile_ms(0.50, rearranged=False):.1f} ms, "
        f"p95 {result.service_percentile_ms(0.95, rearranged=False):.1f} ms, "
        f"p99 {result.service_percentile_ms(0.99, rearranged=False):.1f} ms"
        + degraded_note,
        f"  mean service delta (on vs off): "
        f"{100.0 * result.onoff_service_delta:+.1f}%",
        f"  rearranged blocks resident: {result.rearranged_blocks}",
    ]
    skews = sorted(result.shard_skews().values())
    if skews:
        lines.append(
            "  per-shard load skew (max/mean): "
            f"min {skews[0]:.2f}, median {skews[len(skews) // 2]:.2f}, "
            f"max {skews[-1]:.2f}"
        )
    lines.append(f"  digest: {result.digest()}")
    return "\n".join(lines)
