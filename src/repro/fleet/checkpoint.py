"""Checkpoint journal: crash-safe JSONL record of completed shards.

A fleet run pays a small, bounded journaling overhead — one JSON line
per completed shard, a few KB of log-histogram payload — to make the
completed work durable: the amortized-cost bargain of *Cost-Oblivious
Storage Reallocation* applied to the orchestration layer.  Kill the run
at any point (crash, OOM, Ctrl-C, exhausted retries) and a resume
re-runs only the shards the journal does not hold; because each shard is
a pure function of its :class:`~repro.fleet.runner.ShardTask` and
journal records round-trip shard payloads exactly (JSON floats use
``repr`` semantics), the resumed :class:`~repro.fleet.result.FleetResult`
is bit-identical to an uninterrupted run — the resume regression tests
pin that at ``workers=1`` and ``workers=8``.

Format (version 1): line 1 is a header binding the journal to one
:class:`~repro.fleet.spec.FleetSpec` by digest; every further line is
one completed shard's payload with its own digest::

    {"kind": "fleet-checkpoint", "version": 1, "spec_digest": "sha256:..."}
    {"kind": "shard", "index": 0, "digest": "sha256:...", "payload": {...}}

Safety properties:

* a journal is bound to its spec — resuming with a different spec (or a
  journal that is not a fleet checkpoint) is an error, not a silently
  wrong merge;
* every record carries a digest over its canonical payload JSON —
  bit-rot or hand-editing is detected, and the record is refused;
* a torn tail (the process died mid-append) is tolerated: the partial
  last line is dropped with a warning and its shard simply re-runs;
* appends are flushed and fsynced per record, so a journal is never more
  than one shard behind the truth.
"""

from __future__ import annotations

import io
import json
import os
import warnings
from pathlib import Path

from ..bench.digest import metrics_digest
from .result import ShardResult, spec_payload
from .spec import FleetSpec

__all__ = ["CheckpointError", "FleetJournal", "spec_digest"]

_FORMAT = "fleet-checkpoint"
_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint journal that cannot be used (wrong spec, corrupt)."""


def spec_digest(spec: FleetSpec) -> str:
    """``sha256:<hex>`` identity of a fleet spec (results excluded)."""
    return metrics_digest(spec_payload(spec))


class FleetJournal:
    """Append-only JSONL journal of one fleet run's completed shards."""

    def __init__(self, path: str | os.PathLike, spec: FleetSpec) -> None:
        self.path = Path(path)
        self.spec = spec
        self.spec_digest = spec_digest(spec)
        self._stream: io.TextIOWrapper | None = None

    # -- reading ---------------------------------------------------------

    def load(self) -> dict[int, ShardResult]:
        """Journaled shard results by shard index; ``{}`` if absent.

        Verifies the header belongs to this journal's spec and each
        record's digest matches its payload.  A malformed or torn line
        ends the scan with a warning — the remaining shards re-run,
        which is always safe.
        """
        if not self.path.exists():
            return {}
        completed: dict[int, ShardResult] = {}
        with self.path.open("r", encoding="utf-8") as stream:
            for lineno, line in enumerate(stream, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    warnings.warn(
                        f"checkpoint {self.path}: line {lineno} is not valid "
                        "JSON (torn write from a crash?); ignoring the rest "
                        "of the journal — those shards will re-run",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    break
                if lineno == 1:
                    self._check_header(record)
                    continue
                index = self._check_record(record, lineno)
                if index is None:
                    break
                completed[index] = ShardResult.from_payload(record["payload"])
        return completed

    def _check_header(self, record: dict) -> None:
        if (
            record.get("kind") != _FORMAT
            or record.get("version") != _VERSION
        ):
            raise CheckpointError(
                f"{self.path} is not a version-{_VERSION} fleet checkpoint "
                f"(header: {record})"
            )
        found = record.get("spec_digest")
        if found != self.spec_digest:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different fleet spec "
                f"({found} != {self.spec_digest}); refusing to resume — "
                "mixing shards across specs would corrupt the result"
            )

    def _check_record(self, record: dict, lineno: int) -> int | None:
        """Validated shard index of one record, or ``None`` to stop."""
        if record.get("kind") != "shard":
            warnings.warn(
                f"checkpoint {self.path}: line {lineno} has unexpected kind "
                f"{record.get('kind')!r}; ignoring the rest of the journal",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        payload = record.get("payload")
        index = record.get("index")
        if payload is None or index is None:
            warnings.warn(
                f"checkpoint {self.path}: line {lineno} is incomplete; "
                "ignoring the rest of the journal",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        if metrics_digest(payload) != record.get("digest"):
            raise CheckpointError(
                f"checkpoint {self.path}: line {lineno} fails its digest "
                "check (corrupt or edited journal); refusing to resume "
                "from it"
            )
        if index != payload.get("index"):
            raise CheckpointError(
                f"checkpoint {self.path}: line {lineno} record index "
                f"{index} disagrees with its payload"
            )
        return int(index)

    # -- writing ---------------------------------------------------------

    def open_for_append(self, fresh: bool) -> None:
        """Open the journal for appends, writing the header when new.

        ``fresh`` truncates any existing file first (a non-resume run
        must not silently mix with an old journal — callers decide that
        policy; see :func:`repro.fleet.runner.run_fleet`).
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "w" if fresh or not self.path.exists() else "a"
        self._stream = self.path.open(mode, encoding="utf-8")
        if mode == "w" or self.path.stat().st_size == 0:
            self._write_line(
                {
                    "kind": _FORMAT,
                    "version": _VERSION,
                    "spec_digest": self.spec_digest,
                    "spec": spec_payload(self.spec),
                }
            )

    def append(self, result: ShardResult) -> None:
        """Durably journal one completed shard (flush + fsync)."""
        if self._stream is None:
            raise CheckpointError("journal is not open for appends")
        payload = result.payload()
        self._write_line(
            {
                "kind": "shard",
                "index": result.index,
                "digest": metrics_digest(payload),
                "payload": payload,
            }
        )

    def _write_line(self, record: dict) -> None:
        assert self._stream is not None
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "FleetJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
