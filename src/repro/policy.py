"""Typed rearrangement policies — when and how blocks move.

The paper runs one policy: a nightly stop-the-world batch cycle that
cleans the reserved area and repopulates it from the day's reference
counts.  Production systems cannot always afford a maintenance window, so
the library now fronts *when rearrangement happens* with a small typed
hierarchy instead of a boolean flag:

* :class:`NightlyPolicy` — the paper's end-of-day batch cycle (default;
  behaviourally identical to every release before the policy API).
* :class:`OnlinePolicy` — incremental migration during detected idle
  windows, throttled by a cost/benefit model and an amortized I/O budget
  (:mod:`repro.core.online`, ``docs/online.md``).
* :class:`NoRearrangement` — monitoring only; blocks never move.

Policies are small frozen dataclasses so they hash, compare, pickle
across worker processes, and serialize deterministically into bench and
fleet digests (:meth:`RearrangementPolicy.payload`).  Anywhere a policy
is accepted, the string shorthands ``"nightly"``, ``"online"`` and
``"off"`` work too (:func:`resolve_policy`).

This module is a leaf: it imports nothing from the rest of the package,
so any layer — config, controller, fleet spec, CLI — can depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "NightlyPolicy",
    "NoRearrangement",
    "OnlinePolicy",
    "POLICY_SHORTHANDS",
    "RearrangementPolicy",
    "resolve_policy",
]


@dataclass(frozen=True)
class RearrangementPolicy:
    """Base class of every rearrangement policy.

    ``kind`` is the stable string identity used by shorthands, CLI
    arguments and digest payloads; subclasses override it.
    """

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def payload(self) -> dict:
        """Canonical JSON-ready form, stable across releases.

        Included in bench/fleet digest payloads, so field order and
        contents must only change when behaviour does.
        """
        return {"kind": self.kind}


@dataclass(frozen=True)
class NightlyPolicy(RearrangementPolicy):
    """The paper's policy: batch rearrangement at the end of the day.

    Which nights actually rearrange is decided by the campaign schedule
    (``rearrange_tomorrow`` per day), exactly as before the policy API
    existed.
    """

    @property
    def kind(self) -> str:
        return "nightly"


@dataclass(frozen=True)
class OnlinePolicy(RearrangementPolicy):
    """Incremental rearrangement under live traffic.

    An idle detector watches for queue-empty gaps at least ``idle_ms``
    long; each gap opens a migration window of at most
    ``max_moves_per_window`` block moves, issued one at a time through
    the ordinary SCAN queue so foreground requests preempt them.  A move
    is only made when its projected seek savings are at least
    ``min_benefit_ratio`` times its projected migration cost, and an
    amortized budget refilled at ``duty_cycle`` of elapsed simulated
    time bounds the total migration I/O (see ``docs/online.md``).
    """

    idle_ms: float = 250.0
    """Quiet time that must elapse before a migration window opens."""

    max_moves_per_window: int = 4
    """Block moves allowed per idle window."""

    min_benefit_ratio: float = 1.0
    """A move needs ``projected benefit >= ratio * projected cost``."""

    duty_cycle: float = 0.05
    """Fraction of elapsed simulated time the migration budget accrues."""

    def __post_init__(self) -> None:
        if not self.idle_ms >= 0.0:
            raise ValueError(f"idle_ms must be >= 0, got {self.idle_ms}")
        if self.max_moves_per_window < 1:
            raise ValueError(
                "max_moves_per_window must be >= 1, got "
                f"{self.max_moves_per_window}"
            )
        if not self.min_benefit_ratio >= 0.0:
            raise ValueError(
                f"min_benefit_ratio must be >= 0, got {self.min_benefit_ratio}"
            )
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError(
                f"duty_cycle must be in (0, 1], got {self.duty_cycle}"
            )

    @property
    def kind(self) -> str:
        return "online"

    def payload(self) -> dict:
        return {
            "kind": self.kind,
            "idle_ms": self.idle_ms,
            "max_moves_per_window": self.max_moves_per_window,
            "min_benefit_ratio": self.min_benefit_ratio,
            "duty_cycle": self.duty_cycle,
        }


@dataclass(frozen=True)
class NoRearrangement(RearrangementPolicy):
    """Monitoring only: the reserved area is never populated."""

    @property
    def kind(self) -> str:
        return "off"


POLICY_SHORTHANDS: dict[str, type[RearrangementPolicy]] = {
    "nightly": NightlyPolicy,
    "online": OnlinePolicy,
    "off": NoRearrangement,
}
"""String spellings accepted wherever a policy object is."""


def resolve_policy(
    policy: RearrangementPolicy | str | None,
) -> RearrangementPolicy:
    """Normalize a policy argument to a :class:`RearrangementPolicy`.

    Accepts a policy instance (returned as-is), one of the
    :data:`POLICY_SHORTHANDS` strings, or ``None`` (the default:
    :class:`NightlyPolicy`, the pre-policy-API behaviour).
    """
    if policy is None:
        return NightlyPolicy()
    if isinstance(policy, RearrangementPolicy):
        return policy
    if isinstance(policy, str):
        try:
            return POLICY_SHORTHANDS[policy.lower()]()
        except KeyError:
            known = ", ".join(sorted(POLICY_SHORTHANDS))
            raise ValueError(
                f"unknown rearrangement policy {policy!r}; known: {known}"
            ) from None
    raise TypeError(
        "policy must be a RearrangementPolicy, a shorthand string, or "
        f"None, got {type(policy).__name__}"
    )
