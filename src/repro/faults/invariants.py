"""Block-table invariants: what crash recovery must never break.

Section 4.1.2's argument for correctness rests on a handful of
structural properties of the block table.  :class:`BlockTableInvariants`
checks them mechanically so that fault-injection tests (and the driver's
own post-recovery sanity pass) can *prove* a crash lost nothing instead
of asserting it:

* **bijectivity** — no two entries share a reserved slot, and the
  reverse map agrees with the forward map entry by entry;
* **containment** — every reserved slot lies in the reserved area's data
  region, never under the on-disk block-table copy, and every original
  block lies outside the reserved area;
* **capacity** — the table never exceeds the reserved area's capacity;
* **recovery** — after a crash, the rebuilt table lists exactly the
  mappings of the on-disk copy with every entry conservatively dirty
  (the property that guarantees updates to repositioned blocks are not
  lost).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..disk.label import DiskLabel
from ..driver.blocktable import BlockTable


class InvariantViolation(Exception):
    """A block-table structural invariant does not hold."""


@dataclass
class BlockTableInvariants:
    """Checker for one device's block table (label optional)."""

    label: DiskLabel | None = None

    def check(self, table: BlockTable) -> None:
        """Verify the structural invariants; raise on the first violation."""
        entries = table.entries()
        seen_reserved: dict[int, int] = {}
        seen_original: set[int] = set()
        for entry in entries:
            if entry.original_block in seen_original:
                raise InvariantViolation(
                    f"block {entry.original_block} appears in two entries"
                )
            seen_original.add(entry.original_block)
            if entry.reserved_block in seen_reserved:
                raise InvariantViolation(
                    f"reserved slot {entry.reserved_block} is shared by "
                    f"blocks {seen_reserved[entry.reserved_block]} and "
                    f"{entry.original_block}"
                )
            seen_reserved[entry.reserved_block] = entry.original_block
            if table.original_of(entry.reserved_block) != entry.original_block:
                raise InvariantViolation(
                    f"reverse map disagrees for reserved slot "
                    f"{entry.reserved_block}"
                )
            if table.lookup(entry.original_block) != entry:
                raise InvariantViolation(
                    f"forward map disagrees for block {entry.original_block}"
                )
        if table.occupied_reserved_blocks() != set(seen_reserved):
            raise InvariantViolation(
                "occupied reserved set disagrees with the entries"
            )
        if table.capacity is not None and len(entries) > table.capacity:
            raise InvariantViolation(
                f"table holds {len(entries)} entries, capacity is "
                f"{table.capacity}"
            )
        if self.label is not None and self.label.is_rearranged:
            data_blocks = set(self.label.reserved_data_blocks())
            table_homes = set(self.label.block_table_home_blocks())
            for entry in entries:
                if entry.reserved_block in table_homes:
                    raise InvariantViolation(
                        f"reserved slot {entry.reserved_block} overlaps the "
                        "on-disk block-table copy"
                    )
                if entry.reserved_block not in data_blocks:
                    raise InvariantViolation(
                        f"reserved slot {entry.reserved_block} lies outside "
                        "the reserved data region"
                    )
                if entry.original_block in data_blocks or (
                    entry.original_block in table_homes
                ):
                    raise InvariantViolation(
                        f"original block {entry.original_block} lies inside "
                        "the reserved area"
                    )

    def check_recovery(self, table: BlockTable) -> None:
        """Verify the post-crash state: structure plus the all-dirty rule.

        The recovered table must list exactly the mappings of the on-disk
        copy, with every entry marked dirty regardless of the stored bits
        — the conservative strategy that ensures no update to a
        repositioned block is ever lost.
        """
        self.check(table)
        disk_copy = table.disk_copy()
        mappings = {
            entry.original_block: entry.reserved_block
            for entry in table.entries()
        }
        disk_mappings = {
            original: reserved
            for original, (reserved, __) in disk_copy.items()
        }
        if mappings != disk_mappings:
            missing = set(disk_mappings) - set(mappings)
            extra = set(mappings) - set(disk_mappings)
            raise InvariantViolation(
                "recovered table does not match the on-disk copy "
                f"(missing {sorted(missing)}, extra {sorted(extra)})"
            )
        for entry in table.entries():
            if not entry.dirty:
                raise InvariantViolation(
                    f"entry for block {entry.original_block} survived "
                    "recovery clean; every recovered entry must be dirty"
                )
