"""Fault injection: deterministic hardware misbehaviour for the simulator.

The paper's system ran on a live NFS server and had to survive media
errors, SCSI timeouts, and crashes in the middle of a nightly
rearrangement (Section 4.1.2).  This package supplies those conditions
on demand:

* :class:`FaultPlan` — frozen, seeded configuration (what goes wrong);
* :class:`FaultInjector` — the runtime the driver consults per access;
* :func:`parse_fault_spec` — the CLI ``--faults`` grammar;
* :class:`BlockTableInvariants` — the checker that proves recovery lost
  nothing;
* :class:`SimulatedCrash` — raised at a crash point, caught by whichever
  layer owns the interrupted activity;
* :class:`ChaosPlan` — seeded *worker-level* chaos (task exceptions,
  hangs, hard ``os._exit``) injected into :func:`repro.parallel.fan_out`
  to prove the fleet executor's retry/timeout/re-dispatch guarantees
  (see ``docs/resilience.md``).

With no plan attached the rest of the system pays nothing: the driver's
fault hook is a single ``is None`` test.
"""

from .chaos import ChaosError, ChaosPlan, ChaosSpecError, parse_chaos_spec
from .injector import MEDIA, TRANSIENT, FaultInjector, SimulatedCrash
from .invariants import BlockTableInvariants, InvariantViolation
from .plan import DEGRADE_ACTIONS, FaultPlan
from .spec import FaultSpecError, parse_fault_spec

__all__ = [
    "BlockTableInvariants",
    "ChaosError",
    "ChaosPlan",
    "ChaosSpecError",
    "DEGRADE_ACTIONS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpecError",
    "InvariantViolation",
    "MEDIA",
    "SimulatedCrash",
    "TRANSIENT",
    "parse_chaos_spec",
    "parse_fault_spec",
]
