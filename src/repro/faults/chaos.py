"""Worker-level chaos injection for fan-out runs.

:mod:`repro.faults` injects *device* misbehaviour inside the simulation;
this module injects *orchestration* misbehaviour around it: task
attempts that raise, hang, or kill their worker process outright, the
failure classes a fleet-scale run meets in production (flaky
dependencies, livelocks, OOM kills).  A :class:`ChaosPlan` rides into
:func:`repro.parallel.fan_out` via its ``chaos=`` parameter and is
consulted on the worker, before the task function runs, so the injected
faults exercise the executor's real recovery paths — retry, straggler
kill, worker-death re-dispatch.

Determinism: the fault for ``(task index, attempt)`` is a pure function
of the plan — each draw comes from its own ``random.Random`` seeded with
``(seed, index, attempt)`` — never from shared mutable RNG state, so the
injected schedule is identical at any worker count and on resume.  And
because chaos only perturbs *execution* (the task item and its seed are
re-sent unchanged on retry), a chaos run that completes has results
bit-identical to a fault-free run of the same spec: that equality is the
``fleet_chaos`` scenario's acceptance check.

By default faults hit only each task's first attempt (``attempts=1``),
so any retry policy with ``max_attempts >= 2`` is guaranteed to finish.
Raise ``attempts`` (or set rates to 1.0 with ``tasks=...`` targeting) to
build tasks that fail permanently and drive the ``on_error`` degradation
paths.

The ``--chaos`` CLI grammar mirrors ``--faults``::

    seed=7,exception=0.25,hang=0.1,exit=0.1,hang-s=30,attempts=1,tasks=2+5
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass

__all__ = ["ChaosError", "ChaosPlan", "ChaosSpecError", "parse_chaos_spec"]

EXCEPTION = "exception"
"""The attempt raises :class:`ChaosError` (a transient task failure)."""

HANG = "hang"
"""The attempt sleeps ``hang_s`` before proceeding (a straggler or
livelock; needs a :class:`~repro.parallel.RetryPolicy` timeout to be
recovered)."""

EXIT = "exit"
"""The worker process hard-exits via ``os._exit`` (the SIGKILL/OOM
class: no exception, no cleanup, no goodbye)."""


class ChaosError(RuntimeError):
    """The exception an injected ``exception`` fault raises in a task."""


@dataclass(frozen=True)
class ChaosPlan:
    """Frozen, picklable, seeded plan of worker-level faults.

    Rates are per-attempt probabilities, evaluated in the fixed order
    exception -> hang -> exit from one uniform draw, so they must sum to
    at most 1.  ``tasks`` (``None`` = all) restricts faults to the given
    task indices; ``attempts`` restricts them to each task's first N
    attempts.  Both restrictions exist to make chaos *provable*: a plan
    with ``attempts=1`` and ``max_attempts >= 2`` retries must complete,
    and a plan with ``exception_rate=1.0, attempts=10**6, tasks=(3,)``
    must fail task 3 and nothing else.
    """

    seed: int = 0
    exception_rate: float = 0.0
    hang_rate: float = 0.0
    exit_rate: float = 0.0
    hang_s: float = 3600.0
    exit_code: int = 137
    attempts: int = 1
    tasks: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        for name in ("exception_rate", "hang_rate", "exit_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.exception_rate + self.hang_rate + self.exit_rate > 1.0 + 1e-12:
            raise ValueError(
                "exception_rate + hang_rate + exit_rate must not exceed 1"
            )
        if self.hang_s <= 0:
            raise ValueError(f"hang_s must be positive, got {self.hang_s}")
        if self.attempts < 0:
            raise ValueError("attempts must be non-negative")
        if self.tasks is not None and any(t < 0 for t in self.tasks):
            raise ValueError("tasks indices must be non-negative")

    @property
    def is_empty(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            self.exception_rate == 0.0
            and self.hang_rate == 0.0
            and self.exit_rate == 0.0
        ) or self.attempts == 0

    def fault_for(self, index: int, attempt: int) -> str | None:
        """The fault injected into ``(task index, attempt)``, or ``None``.

        A pure function of the plan: the draw is seeded per
        ``(seed, index, attempt)``, so the schedule does not depend on
        worker count, dispatch order, or how many other tasks faulted.
        """
        if attempt > self.attempts:
            return None
        if self.tasks is not None and index not in self.tasks:
            return None
        draw = random.Random(f"chaos:{self.seed}:{index}:{attempt}").random()
        if draw < self.exception_rate:
            return EXCEPTION
        if draw < self.exception_rate + self.hang_rate:
            return HANG
        if draw < self.exception_rate + self.hang_rate + self.exit_rate:
            return EXIT
        return None

    def schedule(self, tasks: int) -> dict[int, list[str]]:
        """Every fault the plan will inject for ``tasks`` first attempts.

        Diagnostic helper (used by tests and docs examples): maps task
        index to the fault kinds of attempts ``1..self.attempts``.
        """
        plan: dict[int, list[str]] = {}
        for index in range(tasks):
            kinds = [
                kind
                for attempt in range(1, self.attempts + 1)
                if (kind := self.fault_for(index, attempt)) is not None
            ]
            if kinds:
                plan[index] = kinds
        return plan

    def apply(self, index: int, attempt: int) -> None:
        """Inject this attempt's fault, if any.  Runs on the worker.

        ``exception`` raises; ``hang`` sleeps ``hang_s`` and then lets
        the task proceed (the parent's timeout, if any, kills the
        straggler first); ``exit`` terminates the worker process with
        ``os._exit`` — no exception propagation, no buffered goodbye,
        exactly what an OOM kill looks like from the parent.
        """
        kind = self.fault_for(index, attempt)
        if kind is None:
            return
        if kind == EXCEPTION:
            raise ChaosError(
                f"chaos: injected exception (task {index}, attempt {attempt})"
            )
        if kind == HANG:
            time.sleep(self.hang_s)
            return
        os._exit(self.exit_code)


class ChaosSpecError(ValueError):
    """A ``--chaos`` spec string that does not parse."""


def parse_chaos_spec(spec: str) -> ChaosPlan:
    """Parse a ``--chaos`` spec string into a :class:`ChaosPlan`.

    Comma-separated ``key=value`` entries (grammar in
    ``docs/resilience.md``)::

        seed=N            RNG seed for the per-attempt fault draws
        exception=P       probability an attempt raises ChaosError
        hang=P            probability an attempt sleeps hang-s first
        exit=P            probability the worker hard-exits (os._exit)
        hang-s=S          hang duration in seconds (default 3600)
        exit-code=N       exit code of injected hard exits (default 137)
        attempts=N        inject only into each task's first N attempts
        tasks=I1+I2+...   restrict faults to these task indices
    """
    fields: dict[str, object] = {}
    for raw in spec.split(","):
        entry = raw.strip()
        if not entry:
            continue
        key, sep, value = entry.partition("=")
        if not sep or not value:
            raise ChaosSpecError(
                f"chaos spec entries must look like key=value: {entry!r}"
            )
        key = key.strip().lower()
        value = value.strip()
        try:
            if key == "seed":
                fields["seed"] = int(value)
            elif key == "exception":
                fields["exception_rate"] = float(value)
            elif key == "hang":
                fields["hang_rate"] = float(value)
            elif key == "exit":
                fields["exit_rate"] = float(value)
            elif key == "hang-s":
                fields["hang_s"] = float(value)
            elif key == "exit-code":
                fields["exit_code"] = int(value)
            elif key == "attempts":
                fields["attempts"] = int(value)
            elif key == "tasks":
                fields["tasks"] = tuple(int(t) for t in value.split("+"))
            else:
                raise ChaosSpecError(
                    f"unknown chaos spec key {key!r} in {entry!r}"
                )
        except ChaosSpecError:
            raise
        except ValueError:
            raise ChaosSpecError(
                f"bad value {value!r} for {key!r} in {entry!r}"
            ) from None
    try:
        return ChaosPlan(**fields)  # type: ignore[arg-type]
    except ValueError as exc:
        raise ChaosSpecError(str(exc)) from None
