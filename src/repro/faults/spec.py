"""The ``--faults`` spec grammar: one string describes a fault plan.

A spec is a comma-separated list of ``key=value`` entries::

    seed=42,transient=0.002,retries=4,media=1200+7301,crash=copy3

Keys (full grammar in ``docs/faults.md``):

``seed=N``
    RNG seed for the transient stream and random media picks.
``transient=P``
    Per-access probability of a retryable device error.
``retries=N``
    Bounded retries before a transient error escalates to a timeout.
``media=B1+B2+...``
    Pin permanent media errors to these physical blocks.
``media=rand:N``
    Pin N seeded-random reserved-area data blocks instead.
``crash=copyK``
    Crash after K block moves of a nightly rearrangement.
``crash=[dayD@]TIME``
    Crash at TIME into day D (default day 0).  TIME is milliseconds, or
    a number suffixed ``s``/``m``/``h``.
``degrade=R``
    Day error rate above which the nightly cycle is degraded.
``degrade-action=clean|skip``
    What a degraded cycle does (default ``clean``).

Repeated ``crash=`` and ``media=`` entries accumulate.
"""

from __future__ import annotations

from .plan import DEGRADE_ACTIONS, FaultPlan

_TIME_SUFFIXES = {"s": 1_000.0, "m": 60_000.0, "h": 3_600_000.0}


class FaultSpecError(ValueError):
    """A ``--faults`` spec string that does not parse."""


def _parse_time_ms(text: str, entry: str) -> float:
    scale = 1.0
    if text and text[-1].lower() in _TIME_SUFFIXES:
        scale = _TIME_SUFFIXES[text[-1].lower()]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise FaultSpecError(
            f"bad time {text!r} in {entry!r} (use ms or a number "
            "suffixed s/m/h)"
        ) from None
    return value * scale


def _parse_crash(value: str, entry: str) -> tuple[str, object]:
    if value.startswith("copy"):
        try:
            return "copy", int(value[len("copy"):])
        except ValueError:
            raise FaultSpecError(
                f"bad crash point {value!r} in {entry!r} (expected copyK)"
            ) from None
    day = 0
    if value.startswith("day"):
        day_text, sep, rest = value[len("day"):].partition("@")
        if not sep:
            raise FaultSpecError(
                f"bad crash time {value!r} in {entry!r} "
                "(expected dayD@TIME)"
            )
        try:
            day = int(day_text)
        except ValueError:
            raise FaultSpecError(
                f"bad day {day_text!r} in {entry!r}"
            ) from None
        value = rest
    return "timed", (day, _parse_time_ms(value, entry))


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``--faults`` spec string into a :class:`FaultPlan`."""
    seed = 0
    transient = 0.0
    retries = 3
    media: list[int] = []
    random_media = 0
    crash_times: list[tuple[int, float]] = []
    crash_copies: list[int] = []
    degrade: float | None = None
    degrade_action = "clean"

    for raw in spec.split(","):
        entry = raw.strip()
        if not entry:
            continue
        key, sep, value = entry.partition("=")
        if not sep or not value:
            raise FaultSpecError(
                f"fault spec entries must look like key=value: {entry!r}"
            )
        key = key.strip().lower()
        value = value.strip()
        try:
            if key == "seed":
                seed = int(value)
            elif key == "transient":
                transient = float(value)
            elif key == "retries":
                retries = int(value)
            elif key == "media":
                if value.startswith("rand:"):
                    random_media += int(value[len("rand:"):])
                else:
                    media.extend(int(b) for b in value.split("+"))
            elif key == "crash":
                kind, parsed = _parse_crash(value, entry)
                if kind == "copy":
                    crash_copies.append(parsed)  # type: ignore[arg-type]
                else:
                    crash_times.append(parsed)  # type: ignore[arg-type]
            elif key == "degrade":
                degrade = float(value)
            elif key == "degrade-action":
                if value not in DEGRADE_ACTIONS:
                    raise FaultSpecError(
                        f"degrade-action must be one of "
                        f"{'/'.join(DEGRADE_ACTIONS)}, got {value!r}"
                    )
                degrade_action = value
            else:
                raise FaultSpecError(
                    f"unknown fault spec key {key!r} in {entry!r}"
                )
        except FaultSpecError:
            raise
        except ValueError:
            raise FaultSpecError(
                f"bad value {value!r} for {key!r} in {entry!r}"
            ) from None

    plan = FaultPlan(
        seed=seed,
        transient_rate=transient,
        media_blocks=tuple(media),
        random_media=random_media,
        crash_times=tuple(crash_times),
        crash_after_copies=tuple(crash_copies),
        max_retries=retries,
        degrade_threshold=degrade,
        degrade_action=degrade_action,
    )
    try:
        plan.validate()
    except ValueError as exc:
        raise FaultSpecError(str(exc)) from None
    return plan
