"""The fault injector: deterministic, seeded hardware misbehaviour.

A :class:`FaultInjector` is the runtime companion of a
:class:`~repro.faults.plan.FaultPlan`.  The plan is frozen configuration;
the injector owns the mutable state — the seeded RNG, the set of pinned
media errors, the not-yet-fired crash schedule, and the per-run copy
counter used by mid-rearrangement crashes.  Drivers consult the injector
on every constituent disk access; with no injector attached the fault
machinery costs nothing (the driver's hot path checks one attribute
against ``None``).

Determinism: the transient-fault stream is drawn from one
``random.Random(seed)`` consumed exactly once per faultable access, and
everything else (media pins, crash schedule) is explicit — so the same
plan against the same workload injects the identical fault sequence,
which is what makes faulty campaigns replayable and comparable.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..disk.label import DiskLabel
    from .plan import FaultPlan

TRANSIENT = "transient"
"""A retryable device error (the SCSI timeout / bus-reset class)."""

MEDIA = "media"
"""A permanent media error pinned to one physical block."""


class SimulatedCrash(Exception):
    """The machine crashed at ``now_ms`` (power failure / panic).

    Raised by the injector from within a driver entry point; the layer
    that owns the current activity (the rearrangement controller for the
    nightly cycle, the simulation engine for scheduled daytime crashes)
    catches it and replays the paper's recovery protocol.
    """

    def __init__(self, now_ms: float, reason: str = "scheduled crash") -> None:
        super().__init__(f"{reason} at {now_ms:.3f} ms")
        self.now_ms = now_ms
        self.reason = reason


class FaultInjector:
    """Mutable fault-injection state for one run of one plan."""

    def __init__(self, plan: FaultPlan) -> None:
        plan.validate()
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.media_blocks: set[int] = set(plan.media_blocks)
        self.injected_transient = 0
        self.injected_media = 0
        self.fired_crashes = 0
        self._pending_timed: list[tuple[int, float]] = sorted(plan.crash_times)
        self._pending_copy: list[int] = sorted(plan.crash_after_copies)
        self._moves_this_cycle = 0
        self._bound = False

    # ------------------------------------------------------------------
    # Binding to a device
    # ------------------------------------------------------------------

    @property
    def max_retries(self) -> int:
        return self.plan.max_retries

    def bind_label(self, label: DiskLabel) -> None:
        """Resolve label-dependent configuration.

        ``random_media`` picks that many reserved-area data blocks (from a
        dedicated RNG stream, so the transient draw sequence is
        unaffected) — the blocks where rearranged data lives, which is
        what exercises the driver's fallback-to-home path.  Block-table
        home blocks are never pinned: a media error under the table copy
        is unrecoverable by design and outside the paper's fault model.
        """
        if self._bound:
            return
        self._bound = True
        if self.plan.random_media and label.is_rearranged:
            picker = random.Random(f"{self.plan.seed}-media")
            candidates = label.reserved_data_blocks()
            count = min(self.plan.random_media, len(candidates))
            self.media_blocks.update(picker.sample(candidates, count))
        self.media_blocks.difference_update(label.block_table_home_blocks())

    # ------------------------------------------------------------------
    # Per-access draws
    # ------------------------------------------------------------------

    def draw(self, block: int, is_read: bool, now_ms: float) -> str | None:
        """Fault affecting one disk access, or ``None`` for success.

        Media pins are checked first (they are deterministic properties of
        the medium); the transient stream consumes one RNG draw per
        access only when a transient rate is configured.
        """
        if block in self.media_blocks:
            self.injected_media += 1
            return MEDIA
        rate = self.plan.transient_rate
        if rate > 0.0 and self.rng.random() < rate:
            self.injected_transient += 1
            return TRANSIENT
        return None

    # ------------------------------------------------------------------
    # Crash schedule
    # ------------------------------------------------------------------

    def claim_crash_times(self, day: int) -> list[float]:
        """Timed crashes scheduled for measurement day ``day``.

        Returned offsets (ms from the day's start) are marked fired: each
        scheduled crash happens exactly once.
        """
        due = [t for d, t in self._pending_timed if d == day]
        self._pending_timed = [
            (d, t) for d, t in self._pending_timed if d != day
        ]
        self.fired_crashes += len(due)
        return due

    def begin_rearrangement_cycle(self) -> None:
        """Reset the block-move counter at the start of a nightly cycle."""
        self._moves_this_cycle = 0

    def check_move_crash(self, now_ms: float) -> None:
        """Crash point between two block moves of the nightly cycle.

        Called by the driver at the start of every ``DKIOCBCOPY`` and of
        every per-entry ``DKIOCCLEAN`` step; raises
        :class:`SimulatedCrash` when a ``crash=copyK`` entry is due.
        """
        if self._pending_copy and self._moves_this_cycle >= self._pending_copy[0]:
            after = self._pending_copy.pop(0)
            self.fired_crashes += 1
            raise SimulatedCrash(
                now_ms, f"crash after {after} block moves"
            )

    def note_move_done(self) -> None:
        self._moves_this_cycle += 1
