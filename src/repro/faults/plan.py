"""Fault plans: frozen, picklable fault-injection configuration.

A :class:`FaultPlan` describes *what* should go wrong — it carries no
mutable state, so it can ride inside a frozen
:class:`~repro.sim.experiment.ExperimentConfig`, cross process boundaries
for parallel campaigns, and be turned into any number of identical
runtime :class:`~repro.faults.injector.FaultInjector` instances (one per
run is what makes two runs of the same seed byte-identical).

Three fault classes (Section 4.1.2's failure model, adversarially
extended):

* **transient** device errors — retryable, drawn per access at
  ``transient_rate`` from the seeded RNG (the SCSI timeout class);
* **media** errors — permanent, pinned to specific physical blocks
  (explicit ``media_blocks`` and/or ``random_media`` seeded picks from
  the reserved area);
* **crashes** — scheduled per measurement day (``crash_times``) or
  between the individual block moves of a nightly rearrangement
  (``crash_after_copies``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .injector import FaultInjector

DEGRADE_ACTIONS = ("clean", "skip")
"""What a degraded nightly cycle does: ``clean`` restores the home layout
and leaves the reserved area empty; ``skip`` touches the flaky disk as
little as possible and leaves yesterday's arrangement in place."""


@dataclass(frozen=True)
class FaultPlan:
    """Everything that defines a deterministic fault-injection run."""

    seed: int = 0
    transient_rate: float = 0.0
    """Per-access probability of a retryable device error."""
    media_blocks: tuple[int, ...] = ()
    """Physical blocks that fail permanently, reads and writes alike."""
    random_media: int = 0
    """Additionally pin this many seeded-random reserved-area blocks."""
    crash_times: tuple[tuple[int, float], ...] = ()
    """Scheduled crashes as ``(day index, offset ms from day start)``."""
    crash_after_copies: tuple[int, ...] = ()
    """Crash the machine after this many block moves of a nightly cycle."""
    max_retries: int = 3
    """Bounded retries per access before a transient error escalates."""
    degrade_threshold: float | None = None
    """Day error rate above which the nightly rearrangement is degraded."""
    degrade_action: str = "clean"
    """Degraded-cycle behaviour: one of :data:`DEGRADE_ACTIONS`."""

    def validate(self) -> None:
        if not 0.0 <= self.transient_rate <= 1.0:
            raise ValueError(
                f"transient_rate must be in [0, 1], got {self.transient_rate}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.random_media < 0:
            raise ValueError("random_media must be non-negative")
        if self.degrade_action not in DEGRADE_ACTIONS:
            raise ValueError(
                f"degrade_action must be one of {DEGRADE_ACTIONS}, "
                f"got {self.degrade_action!r}"
            )
        if self.degrade_threshold is not None and self.degrade_threshold < 0:
            raise ValueError("degrade_threshold must be non-negative")
        for day, offset in self.crash_times:
            if day < 0 or offset < 0:
                raise ValueError(
                    f"crash_times entries must be non-negative, "
                    f"got ({day}, {offset})"
                )
        for copies in self.crash_after_copies:
            if copies < 0:
                raise ValueError("crash_after_copies must be non-negative")

    def injector(self) -> FaultInjector:
        """A fresh runtime injector for one run of this plan."""
        return FaultInjector(self)

    @property
    def is_empty(self) -> bool:
        """True when the plan can never inject anything."""
        return (
            self.transient_rate == 0.0
            and not self.media_blocks
            and not self.random_media
            and not self.crash_times
            and not self.crash_after_copies
        )
