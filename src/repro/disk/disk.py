"""The mechanical disk: turns one block access into a service-time breakdown.

A :class:`Disk` owns the head position and the (implicit) rotational state
and services exactly one request at a time — concurrency and queueing are
the device driver's job (:mod:`repro.driver`).  Each access is decomposed
the way the paper's measurements are analysed:

``service = controller overhead + seek + rotational latency + transfer``

with the optional read-ahead track buffer short-circuiting reads that hit
the buffer (Fujitsu M2266 only).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .geometry import DiskGeometry
from .models import DiskModel
from .rotation import RotationModel
from .seek import SeekModel
from .trackbuffer import TrackBuffer


@dataclass(frozen=True, slots=True)
class ServiceBreakdown:
    """Component delays of one serviced block access (all in ms)."""

    block: int
    cylinder: int
    is_read: bool
    start_ms: float
    seek_distance: int
    seek_ms: float
    rotation_ms: float
    transfer_ms: float
    overhead_ms: float
    buffer_hit: bool = False

    @property
    def service_ms(self) -> float:
        return self.overhead_ms + self.seek_ms + self.rotation_ms + self.transfer_ms

    @property
    def finish_ms(self) -> float:
        return self.start_ms + self.service_ms


@dataclass
class Disk:
    """A simulated drive built from a :class:`DiskModel` preset.

    The head starts at cylinder 0 (as after a recalibration at power-on).
    Besides timing, the disk keeps a sparse map of per-block *contents*
    (arbitrary Python values standing in for 8 KB of data) so that tests can
    verify that redirection and block movement never lose or corrupt data.
    """

    model: DiskModel
    head_cylinder: int = 0
    accesses: int = 0
    _track_buffer: TrackBuffer | None = field(default=None, repr=False)
    _contents: dict[int, object] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        geometry = self.model.geometry
        self._rotation = RotationModel(geometry)
        if self.model.track_buffer_bytes:
            self._track_buffer = TrackBuffer(
                geometry=geometry,
                capacity_bytes=self.model.track_buffer_bytes,
                host_transfer_ms=self.model.track_buffer_transfer_ms,
            )
        # Hot-path constants.  The seek table holds the piecewise model's
        # value for every reachable cylinder delta (verified equal in
        # tests/test_api.py), so a request costs one list index instead of
        # a branch + sqrt/cbrt/log evaluation.  The remaining scalars are
        # the exact floats the properties would recompute per access.
        seek = self.model.seek
        self._seek_table: list[float] = [
            seek.time(d) for d in range(geometry.cylinders)
        ]
        self._overhead_ms = self.model.controller_overhead_ms
        self._blocks_per_cylinder = geometry.blocks_per_cylinder
        self._sectors_per_block = geometry.sectors_per_block
        self._sectors_per_track = geometry.sectors_per_track
        self._total_blocks = geometry.total_blocks
        self._sector_time_ms = geometry.sector_time_ms
        self._rotation_time_ms = geometry.rotation_time_ms
        self._block_transfer_ms = geometry.block_transfer_time_ms(1)

    @property
    def geometry(self) -> DiskGeometry:
        return self.model.geometry

    @property
    def seek_model(self) -> SeekModel:
        return self.model.seek

    @property
    def track_buffer(self) -> TrackBuffer | None:
        return self._track_buffer

    def access(self, block: int, is_read: bool, now_ms: float) -> ServiceBreakdown:
        """Service a one-block access starting at ``now_ms``.

        Moves the head, updates the track buffer, and returns the timing
        breakdown.  The caller must not start another access before
        ``finish_ms`` of the returned breakdown.
        """
        if not 0 <= block < self._total_blocks:
            raise ValueError(
                f"block {block} out of range [0, {self._total_blocks})"
            )
        cylinder, index = divmod(block, self._blocks_per_cylinder)
        self.accesses += 1

        buffer = self._track_buffer
        if is_read and buffer is not None:
            if buffer.lookup_read(block):
                # Buffer hit: no mechanical work at all; the head stays put.
                return ServiceBreakdown(
                    block=block,
                    cylinder=cylinder,
                    is_read=True,
                    start_ms=now_ms,
                    seek_distance=0,
                    seek_ms=0.0,
                    rotation_ms=0.0,
                    transfer_ms=buffer.host_transfer_ms,
                    overhead_ms=self._overhead_ms,
                    buffer_hit=True,
                )

        distance = abs(cylinder - self.head_cylinder)
        seek_ms = self._seek_table[distance]
        arrival = now_ms + self._overhead_ms + seek_ms
        # Rotational latency, inlined from RotationModel.latency_to_sector
        # with the identical float operation sequence (the digest depends
        # on it): angle in sector units, wrap-guarded delta * sector time.
        start_sector = (
            index * self._sectors_per_block
        ) % self._sectors_per_track
        angle = (arrival / self._sector_time_ms) % self._sectors_per_track
        rotation_ms = (
            (start_sector - angle) % self._sectors_per_track
        ) * self._sector_time_ms
        if rotation_ms >= self._rotation_time_ms:
            rotation_ms -= self._rotation_time_ms

        self.head_cylinder = cylinder
        if buffer is not None:
            if is_read:
                buffer.fill_after_read(block)
            else:
                buffer.invalidate_write(block)

        return ServiceBreakdown(
            block=block,
            cylinder=cylinder,
            is_read=is_read,
            start_ms=now_ms,
            seek_distance=distance,
            seek_ms=seek_ms,
            rotation_ms=rotation_ms,
            transfer_ms=self._block_transfer_ms,
            overhead_ms=self._overhead_ms,
            buffer_hit=False,
        )

    def cylinder_of_block(self, block: int) -> int:
        return self.geometry.cylinder_of_block(block)

    # ------------------------------------------------------------------
    # Data contents (correctness bookkeeping, no timing effect)
    # ------------------------------------------------------------------

    def read_data(self, block: int) -> object:
        """Contents of ``block`` (None if never written)."""
        self.geometry.locate_block(block)  # validates the address
        return self._contents.get(block)

    def write_data(self, block: int, value: object) -> None:
        """Store ``value`` as the contents of ``block``."""
        self.geometry.locate_block(block)  # validates the address
        self._contents[block] = value

    def move_contents(self, block_mapping) -> int:
        """Permute stored contents: each block's data moves to
        ``block_mapping(block)``.  Used by whole-cylinder reorganization.
        Returns the number of blocks whose data actually moved."""
        moved = 0
        relocated: dict[int, object] = {}
        for block, value in self._contents.items():
            target = block_mapping(block)
            self.geometry.locate_block(target)
            relocated[target] = value
            if target != block:
                moved += 1
        self._contents = relocated
        return moved
