"""Disk mechanics substrate: geometry, seek/rotation models, drive presets.

This subpackage simulates the physical drives the paper measured
(Toshiba MK156F and Fujitsu M2266, Table 1): address arithmetic, the
published piecewise seek-time functions, a rotational-position model, the
Fujitsu's read-ahead track buffer, and the disk-label machinery that hides
the reserved cylinders from the file system.
"""

from .disk import Disk, ServiceBreakdown
from .geometry import (
    DEFAULT_BLOCK_BYTES,
    SECTOR_BYTES,
    BlockAddress,
    DiskGeometry,
)
from .label import (
    BLOCK_TABLE_BLOCKS,
    REARRANGED_MAGIC,
    DiskLabel,
    Partition,
)
from .models import (
    DISK_MODELS,
    FUJITSU_M2266,
    TOSHIBA_MK156F,
    DiskModel,
    disk_model,
)
from .rotation import RotationModel
from .seek import SeekCurve, SeekModel
from .trackbuffer import TrackBuffer

__all__ = [
    "BLOCK_TABLE_BLOCKS",
    "BlockAddress",
    "DEFAULT_BLOCK_BYTES",
    "DISK_MODELS",
    "Disk",
    "DiskGeometry",
    "DiskLabel",
    "DiskModel",
    "FUJITSU_M2266",
    "Partition",
    "REARRANGED_MAGIC",
    "RotationModel",
    "SECTOR_BYTES",
    "SeekCurve",
    "SeekModel",
    "ServiceBreakdown",
    "TOSHIBA_MK156F",
    "TrackBuffer",
    "disk_model",
]
