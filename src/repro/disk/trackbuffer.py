"""Read-ahead track buffer (the Fujitsu M2266's 256 KB buffer).

"With read-ahead buffering, when requested data is read off the recording
media into the disk's buffer, the disk continues reading data into its
buffer even after the requested piece of data is read.  Later, if blocks
that are already in the buffer are requested they are simply transferred to
the host from disk's buffer." (Section 5)

The model works at file-system-block granularity.  After a media read of
block *b*, the buffer holds *b* and the blocks that follow it on the same
cylinder, up to the buffer's capacity — the drive keeps reading as the
platter spins but will not seek on the host's behalf.  A later *read* of a
buffered block is a hit and costs only the host transfer time.  A write
invalidates any overlapping buffered block (the buffer is not a write
cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .geometry import DiskGeometry


@dataclass
class TrackBuffer:
    """Read-ahead buffer holding recently passed-over blocks.

    ``capacity_bytes`` bounds how far the drive reads ahead.
    ``host_transfer_ms`` is the time to move one block from the buffer to
    the host over the SCSI bus (the only cost of a buffer hit).
    """

    geometry: DiskGeometry
    capacity_bytes: int
    host_transfer_ms: float = 2.0
    hits: int = 0
    misses: int = 0
    # Buffer contents as a half-open interval [_start, _end) minus _holes
    # (blocks dropped by writes).  A refill is then two integer stores and
    # a set clear instead of materializing a 32-block set per media read.
    _start: int = field(default=0, repr=False)
    _end: int = field(default=0, repr=False)
    _holes: set[int] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes < self.geometry.block_bytes:
            raise ValueError("buffer must hold at least one block")
        if self.host_transfer_ms < 0:
            raise ValueError("host_transfer_ms must be non-negative")
        self._capacity_blocks = self.capacity_bytes // self.geometry.block_bytes
        self._blocks_per_cylinder = self.geometry.blocks_per_cylinder

    @property
    def capacity_blocks(self) -> int:
        return self._capacity_blocks

    def contains(self, block: int) -> bool:
        """True if a read of ``block`` would hit the buffer."""
        return self._start <= block < self._end and block not in self._holes

    def lookup_read(self, block: int) -> bool:
        """Record a read probe; returns True on a buffer hit."""
        if self._start <= block < self._end and block not in self._holes:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill_after_read(self, block: int) -> None:
        """Refill the buffer following a media read of ``block``.

        The buffer is replaced by ``block`` and its successors on the same
        cylinder, clipped to the buffer capacity: read-ahead follows the
        platter but does not seek.
        """
        per_cyl = self._blocks_per_cylinder
        cylinder_stop = (block // per_cyl + 1) * per_cyl
        self._start = block
        self._end = min(block + self._capacity_blocks, cylinder_stop)
        if self._holes:
            self._holes.clear()

    def invalidate_write(self, block: int) -> None:
        """Drop ``block`` from the buffer after it is overwritten."""
        if self._start <= block < self._end:
            self._holes.add(block)

    def invalidate_all(self) -> None:
        self._start = self._end = 0
        if self._holes:
            self._holes.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
