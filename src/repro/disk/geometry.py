"""Disk geometry: cylinders, tracks, sectors, and block address arithmetic.

The simulator addresses data at two granularities, mirroring the paper:

* **Sectors** are the disk's native unit (512 bytes on both of the paper's
  drives).  The mechanical models (rotation, transfer) work in sectors.
* **Blocks** are file-system blocks (8 KB in the paper, i.e. 16 sectors).
  All driver requests and all rearrangement decisions are in blocks, because
  "the size of a 'block' in the rearrangement system is the size of a file
  system block" (Section 4.1.2).

A :class:`DiskGeometry` converts a physical block number into the
``(cylinder, track, start sector)`` triple the mechanical models need.
Blocks are laid out cylinder-major: block 0 occupies the first 16 sectors of
cylinder 0, and so on.  Any sectors left over at the end of a cylinder after
packing whole blocks are unused padding, which keeps every block wholly
inside one cylinder (so a block access never requires a mid-transfer seek).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

SECTOR_BYTES = 512
"""Size of one disk sector in bytes (both of the paper's drives)."""

DEFAULT_BLOCK_BYTES = 8192
"""The paper's file-system block size: 8 kilobytes (Section 5)."""


@dataclass(frozen=True, slots=True)
class BlockAddress:
    """Physical location of one file-system block on the platter."""

    block: int
    cylinder: int
    track: int
    start_sector: int  # index of the block's first sector within its track
    sector_in_cylinder: int  # index of the first sector within the cylinder


@dataclass(frozen=True)
class DiskGeometry:
    """Static geometry of a disk drive.

    Parameters mirror a UNIX disk label: cylinder count, tracks (heads) per
    cylinder, sectors per track, and the rotational speed.  ``block_bytes``
    is the file-system block size used to carve the disk into blocks.
    """

    cylinders: int
    tracks_per_cylinder: int
    sectors_per_track: int
    rpm: float = 3600.0
    sector_bytes: int = SECTOR_BYTES
    block_bytes: int = DEFAULT_BLOCK_BYTES

    # Derived sizes below are ``cached_property``: the dataclass is frozen,
    # so each is a constant, and several sit on the per-request hot path.
    # Equality and hashing use the declared fields only, so the cache is
    # invisible to value semantics.

    def __post_init__(self) -> None:
        if self.cylinders <= 0:
            raise ValueError("cylinders must be positive")
        if self.tracks_per_cylinder <= 0:
            raise ValueError("tracks_per_cylinder must be positive")
        if self.sectors_per_track <= 0:
            raise ValueError("sectors_per_track must be positive")
        if self.rpm <= 0:
            raise ValueError("rpm must be positive")
        if self.block_bytes % self.sector_bytes != 0:
            raise ValueError("block_bytes must be a multiple of sector_bytes")
        if self.sectors_per_block > self.sectors_per_cylinder:
            raise ValueError("a block must fit within one cylinder")

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------

    @cached_property
    def sectors_per_block(self) -> int:
        """Sectors occupied by one file-system block (16 for 8 KB blocks)."""
        return self.block_bytes // self.sector_bytes

    @cached_property
    def sectors_per_cylinder(self) -> int:
        return self.tracks_per_cylinder * self.sectors_per_track

    @cached_property
    def blocks_per_cylinder(self) -> int:
        """Whole file-system blocks that fit in one cylinder.

        The fractional remainder of a cylinder is left as padding so that no
        block straddles a cylinder boundary.
        """
        return self.sectors_per_cylinder // self.sectors_per_block

    @cached_property
    def total_blocks(self) -> int:
        return self.cylinders * self.blocks_per_cylinder

    @cached_property
    def total_sectors(self) -> int:
        return self.cylinders * self.sectors_per_cylinder

    @cached_property
    def capacity_bytes(self) -> int:
        return self.total_sectors * self.sector_bytes

    # ------------------------------------------------------------------
    # Timing primitives
    # ------------------------------------------------------------------

    @cached_property
    def rotation_time_ms(self) -> float:
        """Duration of one full platter revolution, in milliseconds."""
        return 60_000.0 / self.rpm

    @cached_property
    def sector_time_ms(self) -> float:
        """Time for one sector to pass under the head, in milliseconds."""
        return self.rotation_time_ms / self.sectors_per_track

    def transfer_time_ms(self, sectors: int) -> float:
        """Media transfer time for ``sectors`` contiguous sectors."""
        if sectors < 0:
            raise ValueError("sectors must be non-negative")
        return sectors * self.sector_time_ms

    def block_transfer_time_ms(self, blocks: int = 1) -> float:
        """Media transfer time for ``blocks`` file-system blocks."""
        return self.transfer_time_ms(blocks * self.sectors_per_block)

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------

    def cylinder_of_block(self, block: int) -> int:
        """Cylinder holding physical block number ``block``."""
        self._check_block(block)
        return block // self.blocks_per_cylinder

    def locate_block(self, block: int) -> BlockAddress:
        """Full physical address of ``block``."""
        self._check_block(block)
        cylinder, index = divmod(block, self.blocks_per_cylinder)
        sector_in_cyl = index * self.sectors_per_block
        track, start_sector = divmod(sector_in_cyl, self.sectors_per_track)
        return BlockAddress(
            block=block,
            cylinder=cylinder,
            track=track,
            start_sector=start_sector,
            sector_in_cylinder=sector_in_cyl,
        )

    def block_at(self, cylinder: int, index_in_cylinder: int) -> int:
        """Physical block number of the ``index``-th block of ``cylinder``."""
        if not 0 <= cylinder < self.cylinders:
            raise ValueError(f"cylinder {cylinder} out of range")
        if not 0 <= index_in_cylinder < self.blocks_per_cylinder:
            raise ValueError(f"block index {index_in_cylinder} out of range")
        return cylinder * self.blocks_per_cylinder + index_in_cylinder

    def blocks_of_cylinder(self, cylinder: int) -> range:
        """All physical block numbers of ``cylinder``, in layout order."""
        if not 0 <= cylinder < self.cylinders:
            raise ValueError(f"cylinder {cylinder} out of range")
        first = cylinder * self.blocks_per_cylinder
        return range(first, first + self.blocks_per_cylinder)

    def middle_cylinder(self) -> int:
        """The disk's center cylinder (organ-pipe anchor point)."""
        return self.cylinders // 2

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.total_blocks:
            raise ValueError(
                f"block {block} out of range [0, {self.total_blocks})"
            )
