"""Disk labels, partitions, and the hidden reserved area.

The paper's driver creates the reserved space by editing the disk label so
that "the target disk is made to look smaller than it really is"
(Section 4.1.1): the file system sees a *virtual* disk with fewer cylinders,
and the hidden cylinders in the middle of the physical disk form the
reserved area.  The driver maps virtual addresses to physical ones.

:class:`DiskLabel` implements that mapping.  Virtual cylinders below the
reserved region map 1:1; virtual cylinders at or above it are shifted past
the hidden cylinders.  The first blocks of the reserved area are set aside
for the on-disk copy of the block table (Section 4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .geometry import DiskGeometry

REARRANGED_MAGIC = 0x5EA7B10C
"""Label marker identifying a disk initialized for rearrangement."""

BLOCK_TABLE_BLOCKS = 2
"""Blocks at the start of the reserved area holding the block-table copy."""


@dataclass(frozen=True)
class Partition:
    """A logical device: a contiguous span of *virtual* blocks."""

    name: str
    start_block: int
    num_blocks: int

    @property
    def end_block(self) -> int:
        return self.start_block + self.num_blocks

    def contains(self, virtual_block: int) -> bool:
        return self.start_block <= virtual_block < self.end_block


@dataclass
class DiskLabel:
    """Geometry advertisement plus the reserved-area record.

    ``reserved_cylinders == 0`` describes an ordinary (non-rearranged) disk
    whose virtual and physical address spaces coincide.
    """

    geometry: DiskGeometry
    reserved_cylinders: int = 0
    reserved_start_cylinder: int | None = None
    partitions: list[Partition] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.reserved_cylinders < self.geometry.cylinders:
            raise ValueError(
                "reserved cylinders must leave at least one visible cylinder"
            )
        if self.reserved_start_cylinder is None:
            # Center the reserved area, as the paper does: "the reserved
            # cylinders themselves are located in the middle of the disk".
            start = (self.geometry.cylinders - self.reserved_cylinders) // 2
            self.reserved_start_cylinder = start
        end = self.reserved_start_cylinder + self.reserved_cylinders
        if not 0 <= self.reserved_start_cylinder <= end <= self.geometry.cylinders:
            raise ValueError("reserved area does not fit on the disk")
        # Hot-path constants for virtual_to_physical_block, which runs
        # once per request.  Label fields are set once at creation.
        self._per_cyl = self.geometry.blocks_per_cylinder
        self._virtual_total = self.virtual_cylinders * self._per_cyl
        self._reserved_start = self.reserved_start_cylinder
        self._reserved_count = self.reserved_cylinders

    # ------------------------------------------------------------------
    # Identity and sizes
    # ------------------------------------------------------------------

    @property
    def is_rearranged(self) -> bool:
        """True when the label marks a disk initialized for rearrangement."""
        return self.reserved_cylinders > 0

    @property
    def magic(self) -> int | None:
        return REARRANGED_MAGIC if self.is_rearranged else None

    @property
    def virtual_cylinders(self) -> int:
        """Cylinder count advertised to the file system."""
        return self.geometry.cylinders - self.reserved_cylinders

    @property
    def virtual_total_blocks(self) -> int:
        return self.virtual_cylinders * self.geometry.blocks_per_cylinder

    @property
    def reserved_end_cylinder(self) -> int:
        assert self.reserved_start_cylinder is not None
        return self.reserved_start_cylinder + self.reserved_cylinders

    # ------------------------------------------------------------------
    # Virtual <-> physical mapping
    # ------------------------------------------------------------------

    def virtual_to_physical_cylinder(self, cylinder: int) -> int:
        if not 0 <= cylinder < self.virtual_cylinders:
            raise ValueError(f"virtual cylinder {cylinder} out of range")
        assert self.reserved_start_cylinder is not None
        if cylinder < self.reserved_start_cylinder:
            return cylinder
        return cylinder + self.reserved_cylinders

    def physical_to_virtual_cylinder(self, cylinder: int) -> int:
        if self.is_reserved_cylinder(cylinder):
            raise ValueError(f"physical cylinder {cylinder} is reserved")
        if not 0 <= cylinder < self.geometry.cylinders:
            raise ValueError(f"physical cylinder {cylinder} out of range")
        assert self.reserved_start_cylinder is not None
        if cylinder < self.reserved_start_cylinder:
            return cylinder
        return cylinder - self.reserved_cylinders

    def virtual_to_physical_block(self, block: int) -> int:
        """Map a file-system (virtual) block to its home physical block."""
        if not 0 <= block < self._virtual_total:
            raise ValueError(f"virtual block {block} out of range")
        per_cyl = self._per_cyl
        cylinder, index = divmod(block, per_cyl)
        if cylinder >= self._reserved_start:
            cylinder += self._reserved_count
        return cylinder * per_cyl + index

    def physical_to_virtual_block(self, block: int) -> int:
        """Inverse of :meth:`virtual_to_physical_block`."""
        per_cyl = self.geometry.blocks_per_cylinder
        cylinder, index = divmod(block, per_cyl)
        return self.physical_to_virtual_cylinder(cylinder) * per_cyl + index

    def is_reserved_cylinder(self, cylinder: int) -> bool:
        assert self.reserved_start_cylinder is not None
        return (
            self.reserved_start_cylinder
            <= cylinder
            < self.reserved_end_cylinder
        )

    def is_reserved_block(self, physical_block: int) -> bool:
        return self.is_reserved_cylinder(
            self.geometry.cylinder_of_block(physical_block)
        )

    # ------------------------------------------------------------------
    # Reserved-area layout
    # ------------------------------------------------------------------

    def reserved_data_blocks(self) -> list[int]:
        """Physical blocks available for rearranged data.

        Excludes the blocks at the start of the reserved area that hold the
        on-disk copy of the block table.
        """
        blocks: list[int] = []
        assert self.reserved_start_cylinder is not None
        for cylinder in range(
            self.reserved_start_cylinder, self.reserved_end_cylinder
        ):
            blocks.extend(self.geometry.blocks_of_cylinder(cylinder))
        return blocks[BLOCK_TABLE_BLOCKS:]

    def reserved_capacity_blocks(self) -> int:
        if not self.is_rearranged:
            return 0
        return (
            self.reserved_cylinders * self.geometry.blocks_per_cylinder
            - BLOCK_TABLE_BLOCKS
        )

    def block_table_home_blocks(self) -> list[int]:
        """Physical blocks holding the on-disk block-table copy."""
        if not self.is_rearranged:
            return []
        assert self.reserved_start_cylinder is not None
        first = self.geometry.blocks_of_cylinder(
            self.reserved_start_cylinder
        )[0]
        return list(range(first, first + BLOCK_TABLE_BLOCKS))

    def reserved_center_cylinder(self) -> int:
        """The middle cylinder of the reserved area (organ-pipe anchor)."""
        if not self.is_rearranged:
            raise ValueError("disk has no reserved area")
        assert self.reserved_start_cylinder is not None
        return self.reserved_start_cylinder + self.reserved_cylinders // 2

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------

    def add_partition(
        self, name: str, num_blocks: int, start_block: int | None = None
    ) -> Partition:
        """Add a partition; by default it follows the last existing one."""
        if start_block is None:
            start_block = 0
            if self.partitions:
                start_block = self.partitions[-1].end_block
        if start_block < 0:
            raise ValueError("partition start must be non-negative")
        if start_block + num_blocks > self.virtual_total_blocks:
            raise ValueError(
                f"partition {name!r} ({num_blocks} blocks at {start_block}) "
                f"exceeds virtual disk size {self.virtual_total_blocks}"
            )
        partition = Partition(
            name=name, start_block=start_block, num_blocks=num_blocks
        )
        self.partitions.append(partition)
        return partition

    def partition(self, name: str) -> Partition:
        for part in self.partitions:
            if part.name == name:
                return part
        raise KeyError(f"no partition named {name!r}")
