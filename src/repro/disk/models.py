"""Drive presets: the two disks from the paper's Table 1.

Geometry and the piecewise seek-time functions are transcribed exactly from
the paper.  The one parameter the paper does not publish directly is the
fixed per-request controller/bus overhead; it is calibrated so that
``seek + rotation + transfer + overhead`` reproduces the paper's measured
no-rearrangement mean service times (Tables 2 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .._compat import removed_alias
from .geometry import DiskGeometry
from .seek import SeekCurve, SeekModel


@dataclass(frozen=True)
class DiskModel:
    """Everything needed to instantiate a simulated drive."""

    name: str
    geometry: DiskGeometry
    seek: SeekModel
    controller_overhead_ms: float = 0.0
    track_buffer_bytes: int | None = None
    track_buffer_transfer_ms: float = 2.0

    def with_geometry(self, geometry: DiskGeometry) -> "DiskModel":
        """A copy of this model with substituted geometry (used by tests)."""
        seek = replace(
            self.seek,
            max_cylinders=geometry.cylinders,
            name=self.seek.name,
        )
        return replace(self, geometry=geometry, seek=seek)


def _toshiba_mk156f() -> DiskModel:
    geometry = DiskGeometry(
        cylinders=815,
        tracks_per_cylinder=10,
        sectors_per_track=34,
        rpm=3600.0,
    )
    seek = SeekModel(
        short=SeekCurve(a=6.248, b=1.393, c=-0.99, e=0.813),
        long=SeekCurve(a=17.503, b=0.03, linear=True),
        crossover=315,  # short branch applies for d < 315
        max_cylinders=geometry.cylinders,
        name="toshiba-mk156f",
    )
    return DiskModel(
        name="Toshiba MK156F",
        geometry=geometry,
        seek=seek,
        controller_overhead_ms=4.0,
    )


def _fujitsu_m2266() -> DiskModel:
    geometry = DiskGeometry(
        cylinders=1658,
        tracks_per_cylinder=15,
        sectors_per_track=85,
        rpm=3600.0,
    )
    seek = SeekModel(
        short=SeekCurve(a=1.205, b=0.65, c=-0.734, e=0.659),
        long=SeekCurve(a=7.44, b=0.0114, linear=True),
        crossover=226,  # short branch applies for d <= 225
        max_cylinders=geometry.cylinders,
        name="fujitsu-m2266",
    )
    return DiskModel(
        name="Fujitsu M2266",
        geometry=geometry,
        seek=seek,
        controller_overhead_ms=2.2,
        track_buffer_bytes=256 * 1024,
        track_buffer_transfer_ms=2.0,
    )


def _modern_disk() -> DiskModel:
    """A published-style geometry scaled to ~8 GB and over 2M blocks.

    Not one of the paper's drives: a composite of late-generation SCSI
    specifications (7200 RPM, ~1 MB cylinders, single-digit-millisecond
    average seeks) sized so that a full standard day exercises a
    multi-million-block device — the scale target of ``docs/scaling.md``.
    The 4 KB file-system block yields 2,097,152 blocks:
    8192 cylinders x 16 tracks x 128 sectors x 512 B = 8 GB.
    """
    geometry = DiskGeometry(
        cylinders=8192,
        tracks_per_cylinder=16,
        sectors_per_track=128,
        rpm=7200.0,
        block_bytes=4096,
    )
    # Square-root short branch meeting a shallow linear tail at the
    # crossover (short(1200) = 5.80 ms, long(1200) = 5.82 ms); full-stroke
    # is 13.5 ms and the average random seek lands near 7.5 ms.
    seek = SeekModel(
        short=SeekCurve(a=0.6, b=0.15),
        long=SeekCurve(a=4.5, b=0.0011, linear=True),
        crossover=1200,
        max_cylinders=geometry.cylinders,
        name="modern-disk",
    )
    return DiskModel(
        name="Modern Disk 8G",
        geometry=geometry,
        seek=seek,
        controller_overhead_ms=0.5,
        track_buffer_bytes=2 * 1024 * 1024,
        track_buffer_transfer_ms=0.5,
    )


TOSHIBA_MK156F = _toshiba_mk156f()
"""The paper's 135 MB Toshiba MK156F SCSI disk (Table 1)."""

FUJITSU_M2266 = _fujitsu_m2266()
"""The paper's 1 GB Fujitsu M2266 SCSI disk with track buffer (Table 1)."""

MODERN_DISK = _modern_disk()
"""A synthetic ~8 GB drive with 2,097,152 blocks (scale testing)."""

DISK_MODELS = {
    "toshiba": TOSHIBA_MK156F,
    "fujitsu": FUJITSU_M2266,
    "modern": MODERN_DISK,
}


@removed_alias(name="disk")
def disk_model(disk: str) -> DiskModel:
    """Look up a preset by short name (``"toshiba"``, ``"fujitsu"``, or
    ``"modern"``)."""
    try:
        return DISK_MODELS[disk.lower()]
    except KeyError:
        known = ", ".join(sorted(DISK_MODELS))
        raise KeyError(f"unknown disk model {disk!r}; known: {known}") from None
