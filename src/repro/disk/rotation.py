"""Rotational position and latency model.

The platters spin continuously at a fixed rate (3600 RPM on both of the
paper's drives), so the angular position under the heads is a pure function
of the simulation clock.  Rotational latency for an access is the time until
the target sector's leading edge arrives under the head.

Modelling the *absolute* rotational position (rather than drawing a uniform
random latency) matters for one of the paper's experiments: Table 10 shows
that the *interleaved* placement policy preserves the file system's
rotational optimization while organ-pipe placement defeats it.  That effect
only exists if consecutive accesses to rotationally staggered blocks see the
real angular geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from .geometry import DiskGeometry


@dataclass(frozen=True)
class RotationModel:
    """Angular bookkeeping for a disk spinning at a constant rate.

    Angles are expressed in *sector units*: the platter is divided into
    ``sectors_per_track`` angular slots, and sector ``s`` of any track begins
    at angular slot ``s``.  All tracks of a cylinder are assumed to be
    angularly aligned (no track skew), which matches the simple geometry the
    paper's drives advertise through SCSI.
    """

    geometry: DiskGeometry

    @property
    def rotation_time_ms(self) -> float:
        return self.geometry.rotation_time_ms

    @property
    def sector_time_ms(self) -> float:
        return self.geometry.sector_time_ms

    def angle_at(self, now_ms: float) -> float:
        """Angular position (in sector units) under the head at ``now_ms``."""
        if now_ms < 0:
            raise ValueError("time must be non-negative")
        sectors = now_ms / self.sector_time_ms
        return sectors % self.geometry.sectors_per_track

    def latency_to_sector(self, now_ms: float, sector: int) -> float:
        """Time until ``sector``'s leading edge is under the head.

        Returns a value in ``[0, rotation_time_ms)``.  A request for the
        sector currently *beginning* to pass under the head has latency 0.
        """
        if not 0 <= sector < self.geometry.sectors_per_track:
            raise ValueError(
                f"sector {sector} out of range "
                f"[0, {self.geometry.sectors_per_track})"
            )
        angle = self.angle_at(now_ms)
        delta_sectors = (sector - angle) % self.geometry.sectors_per_track
        # Guard against the float edge where delta wraps to a full rotation.
        latency = delta_sectors * self.sector_time_ms
        if latency >= self.rotation_time_ms:
            latency -= self.rotation_time_ms
        return latency

    def sector_passing_at(self, now_ms: float) -> int:
        """Index of the sector currently under the head."""
        return int(self.angle_at(now_ms))
