"""Seek-time models.

The paper publishes measured piecewise seek-time functions for both of its
drives (Table 1): a square-root/cube-root/log curve for short seeks and a
linear tail for long ones, with ``seektime(0) == 0``.  :class:`SeekModel`
captures that shape generically; the exact published coefficient sets live
in :mod:`repro.disk.models`.

The paper computes its reported *seek times* by pushing the measured seek
*distance* distribution through these functions, and
:meth:`SeekModel.mean_time` supports exactly that computation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping


@dataclass(frozen=True)
class SeekCurve:
    """One branch of a piecewise seek-time function.

    Evaluates ``a + b*sqrt(d) + c*cbrt(d) + e*ln(d)`` for the non-linear
    branch used at short distances, or ``a + b*d`` for the linear tail
    (with ``c`` and ``e`` zero).  Distances are in cylinders, times in
    milliseconds.
    """

    a: float
    b: float = 0.0
    c: float = 0.0
    e: float = 0.0
    linear: bool = False

    def __call__(self, distance: int) -> float:
        d = float(distance)
        if self.linear:
            return self.a + self.b * d
        return (
            self.a
            + self.b * math.sqrt(d)
            + self.c * d ** (1.0 / 3.0)
            + self.e * math.log(d)
        )


@dataclass(frozen=True)
class SeekModel:
    """Piecewise seek-time function ``seektime(d)`` in milliseconds.

    ``seektime(0)`` is always 0 (no head movement).  For ``0 < d``
    below ``crossover`` the ``short`` curve applies, otherwise ``long``.
    ``max_cylinders`` bounds the meaningful argument range and is used for
    validation only.
    """

    short: SeekCurve
    long: SeekCurve
    crossover: int
    max_cylinders: int
    name: str = "seek-model"

    def __call__(self, distance: int) -> float:
        return self.time(distance)

    def time(self, distance: int) -> float:
        """Seek time in ms for a move of ``distance`` cylinders."""
        d = abs(int(distance))
        if d == 0:
            return 0.0
        if d >= self.max_cylinders:
            raise ValueError(
                f"seek distance {d} exceeds disk span {self.max_cylinders}"
            )
        if d < self.crossover:
            return self.short(d)
        return self.long(d)

    def mean_time(self, distance_counts: Mapping[int, int]) -> float:
        """Mean seek time implied by a seek-distance histogram.

        This is the paper's methodology: "seek times ... were computed using
        the measured seek distance distribution and the seek time functions"
        (Section 5.2).
        """
        total = 0
        weighted = 0.0
        for distance, count in distance_counts.items():
            if count < 0:
                raise ValueError("histogram counts must be non-negative")
            total += count
            weighted += count * self.time(distance)
        if total == 0:
            return 0.0
        return weighted / total

    def times(self, distances: Iterable[int]) -> list[float]:
        """Seek times for a sequence of distances."""
        return [self.time(d) for d in distances]

    def full_stroke_time(self) -> float:
        """Seek time across the entire disk (a worst-case seek)."""
        return self.time(self.max_cylinders - 1)
