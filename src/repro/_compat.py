"""Deprecation and removed-keyword helpers (``docs/api.md``).

The public surface unified its parameter names — device-name keywords are
called ``device``, block-count keywords ``num_blocks``, and factory lookups
take the thing they look up (``disk=``, ``profile=``).  The old names were
deprecated for one release (with :class:`DeprecationWarning` aliases) and
have now been **removed**.  The guards below keep the old spellings from
failing with an anonymous "unexpected keyword argument" error: callers get
a :class:`TypeError` that names the replacement keyword.
"""

from __future__ import annotations

import functools
import warnings
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


def warn_deprecated(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit the one-release :class:`DeprecationWarning` for ``old``.

    The alias lifecycle: a renamed or replaced spelling warns (via this
    helper) for one release, then moves to :func:`removed_alias` /
    :func:`removed_name`, which raise with the same replacement text.
    ``stacklevel`` defaults to 3 — right for the common shape where the
    deprecated public function calls this helper directly.
    """
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def removed_alias(**aliases: str) -> Callable[[F], F]:
    """Reject removed keyword names with an error naming the new keyword.

    ``@removed_alias(old="new")`` makes ``fn(old=x)`` raise
    ``TypeError: fn() keyword 'old' was removed; use 'new'`` instead of
    the stock unexpected-keyword message.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            for old, new in aliases.items():
                if old in kwargs:
                    raise TypeError(
                        f"{fn.__qualname__}() keyword {old!r} was removed; "
                        f"use {new!r}"
                    )
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def removed_name(old: str, new: str) -> AttributeError:
    """The standard error for a removed attribute or method name."""
    return AttributeError(f"{old} was removed; use {new}")
