"""Removed-keyword guards for the unified parameter names (``docs/api.md``).

The public surface unified its parameter names — device-name keywords are
called ``device``, block-count keywords ``num_blocks``, and factory lookups
take the thing they look up (``disk=``, ``profile=``).  The old names were
deprecated for one release (with :class:`DeprecationWarning` aliases) and
have now been **removed**.  The guards below keep the old spellings from
failing with an anonymous "unexpected keyword argument" error: callers get
a :class:`TypeError` that names the replacement keyword.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


def removed_alias(**aliases: str) -> Callable[[F], F]:
    """Reject removed keyword names with an error naming the new keyword.

    ``@removed_alias(old="new")`` makes ``fn(old=x)`` raise
    ``TypeError: fn() keyword 'old' was removed; use 'new'`` instead of
    the stock unexpected-keyword message.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            for old, new in aliases.items():
                if old in kwargs:
                    raise TypeError(
                        f"{fn.__qualname__}() keyword {old!r} was removed; "
                        f"use {new!r}"
                    )
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def removed_name(old: str, new: str) -> AttributeError:
    """The standard error for a removed attribute or method name."""
    return AttributeError(f"{old} was removed; use {new}")
