"""Deprecation shims for renamed keywords (see ``docs/api.md``).

The public surface unified its parameter names — device-name keywords
are called ``device``, block-count keywords ``num_blocks``, and factory
lookups take the thing they look up (``disk=``, ``profile=``).  The old
names keep working for one release but emit :class:`DeprecationWarning`;
the test suite promotes those warnings to errors, so internal callers
must use the new names.
"""

from __future__ import annotations

import functools
import warnings
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


def deprecated_alias(**aliases: str) -> Callable[[F], F]:
    """Map deprecated keyword names onto their replacements.

    ``@deprecated_alias(old="new")`` makes ``fn(old=x)`` behave as
    ``fn(new=x)`` after emitting one :class:`DeprecationWarning`.
    Passing both the old and the new name is a :class:`TypeError`.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            for old, new in aliases.items():
                if old in kwargs:
                    if new in kwargs:
                        raise TypeError(
                            f"{fn.__qualname__}() got both {old!r} "
                            f"(deprecated) and {new!r}"
                        )
                    warnings.warn(
                        f"{fn.__qualname__}(): keyword {old!r} is "
                        f"deprecated, use {new!r}",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                    kwargs[new] = kwargs.pop(old)
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def deprecated_name(old: str, new: str) -> None:
    """Emit the standard warning for a deprecated attribute or method."""
    warnings.warn(
        f"{old} is deprecated, use {new}",
        DeprecationWarning,
        stacklevel=3,
    )
