"""repro: Adaptive Block Rearrangement (Akyürek & Salem, ICDE 1993).

A complete, simulator-based reproduction of the adaptive block
rearrangement system: a UNIX-style disk device driver that monitors its
request stream, estimates block reference frequencies, and copies the
hottest blocks into reserved cylinders near the middle of the disk
(organ-pipe layout) to cut seek times.

Quickstart — the stable facade is :mod:`repro.api`::

    from repro.api import run_campaign
    from repro.stats import summarize_on_off

    result = run_campaign(profile="system", disk="toshiba",
                          hours=1.0, days=4)
    summary = summarize_on_off(result.metrics())
    print(f"seek time reduction: {summary.seek_reduction:.0%}")

Subpackages
-----------

``repro.api``
    The supported entry points: ``simulate_day``, ``run_campaign``,
    ``run_bench``.  Import from here in scripts; the deeper module
    layout may shift between releases, this surface will not.
``repro.bench``
    The performance suite behind ``python -m repro bench``: deterministic
    scenarios, wall-clock/events-per-second reports, metrics digests and
    the committed-baseline regression gate.

``repro.core``
    The paper's contribution: reference stream analyzer, hot block list,
    placement policies (organ-pipe / interleaved / serial), block
    arranger, and the daily rearrangement controller.
``repro.disk``
    Disk mechanics: geometry, the paper's published seek-time functions,
    rotational-position model, read-ahead track buffer, disk labels with
    hidden reserved cylinders (Toshiba MK156F and Fujitsu M2266 presets).
``repro.driver``
    The modified device driver: strategy routine, block-table
    redirection, SCAN queueing, monitoring tables, ioctl entry points.
``repro.fs``
    FFS-style allocation (cylinder groups, rotational interleave), a
    simplified UFS, and the write-back buffer cache with periodic sync.
``repro.workload``
    Calibrated synthetic workloads for the paper's *system* and *users*
    file systems, with multi-day drift.
``repro.traces``
    Real-world block-trace ingestion and replay: streaming blkparse/MSR
    parsers, address mapping onto the simulated disk, time rescaling,
    and trace characterization (``repro ingest`` / ``repro replay``).
``repro.faults``
    Deterministic fault injection: transient/media errors, scheduled
    crashes, and the block-table invariant checker.
``repro.sim``
    Discrete-event engine and the day-by-day experiment campaigns.
``repro.stats``
    Histograms, per-day metrics, and paper-style table rendering.
"""

from . import api, traces
from .core import (
    BlockArranger,
    HotBlock,
    HotBlockList,
    InterleavedPlacement,
    OrganPipePlacement,
    RearrangementController,
    ReferenceStreamAnalyzer,
    SerialPlacement,
    make_policy,
)
from .disk import (
    Disk,
    DiskGeometry,
    DiskLabel,
    DiskModel,
    FUJITSU_M2266,
    TOSHIBA_MK156F,
    disk_model,
)
from .driver import (
    AdaptiveDiskDriver,
    BlockTable,
    DiskRequest,
    IoctlInterface,
    Op,
    ScanQueue,
    make_queue,
)
from .faults import (
    BlockTableInvariants,
    FaultInjector,
    FaultPlan,
    SimulatedCrash,
    parse_fault_spec,
)
from .fs import BufferCache, FileSystem
from .policy import (
    NightlyPolicy,
    NoRearrangement,
    OnlinePolicy,
    RearrangementPolicy,
    resolve_policy,
)
from .sim import (
    CampaignResult,
    Experiment,
    ExperimentConfig,
    Simulation,
    run_block_count_sweep,
    run_campaign,
    run_onoff_campaign,
    run_policy_campaign,
)
from .stats import DayMetrics, summarize_on_off
from .workload import (
    SYSTEM_FS_PROFILE,
    USERS_FS_PROFILE,
    WorkloadGenerator,
    WorkloadProfile,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveDiskDriver",
    "api",
    "BlockArranger",
    "BlockTable",
    "BlockTableInvariants",
    "BufferCache",
    "CampaignResult",
    "DayMetrics",
    "Disk",
    "DiskGeometry",
    "DiskLabel",
    "DiskModel",
    "DiskRequest",
    "Experiment",
    "ExperimentConfig",
    "FUJITSU_M2266",
    "FaultInjector",
    "FaultPlan",
    "FileSystem",
    "HotBlock",
    "HotBlockList",
    "InterleavedPlacement",
    "IoctlInterface",
    "NightlyPolicy",
    "NoRearrangement",
    "Op",
    "OnlinePolicy",
    "OrganPipePlacement",
    "RearrangementController",
    "RearrangementPolicy",
    "ReferenceStreamAnalyzer",
    "SYSTEM_FS_PROFILE",
    "ScanQueue",
    "SerialPlacement",
    "SimulatedCrash",
    "Simulation",
    "TOSHIBA_MK156F",
    "USERS_FS_PROFILE",
    "WorkloadGenerator",
    "WorkloadProfile",
    "disk_model",
    "make_policy",
    "make_queue",
    "parse_fault_spec",
    "resolve_policy",
    "run_block_count_sweep",
    "run_campaign",
    "run_onoff_campaign",
    "run_policy_campaign",
    "summarize_on_off",
    "traces",
]
