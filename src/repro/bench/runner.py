"""Timing, report files, and the benchmark regression gate.

A :class:`BenchReport` is one scenario's timed run.  Reports serialize to
``BENCH_<scenario>.json`` at the repository root (the perf trajectory the
ROADMAP asks for) and fold into a committed *baseline* file that the CI
``bench`` job compares against.

Wall-clock comparisons across machines are normalized by a **calibration
score**: a fixed pure-Python workload timed on the same interpreter right
before the scenarios.  The gate scales the current run's wall-clock by the
ratio of calibration scores before applying the regression threshold, so a
slower CI runner does not read as a code regression (and a faster one does
not hide one).  Digests are compared exactly — they are machine-independent
by construction.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .digest import metrics_digest
from .scenarios import Scenario, ScenarioResult

SCHEMA = "repro-bench/1"
BASELINE_SCHEMA = "repro-bench-baseline/1"
DEFAULT_THRESHOLD = 0.15
"""Fractional slowdown (normalized) above which the gate fails."""

DEFAULT_MEM_THRESHOLD = 0.25
"""Fractional peak-memory growth above which the gate fails.  Wider than
the time threshold: allocator behavior shifts slightly across Python
patch versions, while a real regression (say, a dict where an array
should be) moves peak memory by whole multiples."""


class BenchError(RuntimeError):
    """A benchmark comparison failed (regression or digest mismatch)."""


def machine_metadata() -> dict[str, Any]:
    """Where this report was produced (recorded, never compared)."""
    import os

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def calibration_score(target_s: float = 0.1) -> float:
    """Iterations/second of a fixed pure-Python workload on this machine.

    The workload mixes the operations the simulator leans on — integer
    arithmetic, dict updates, list appends, attribute-free float math — so
    its throughput tracks how fast this interpreter runs the simulator,
    which is what makes cross-machine wall-clock normalization meaningful.
    """

    def unit(reps: int) -> float:
        total = 0.0
        counts: dict[int, int] = {}
        seq: list[int] = []
        for i in range(reps):
            bucket = (i * 2654435761) % 97
            counts[bucket] = counts.get(bucket, 0) + 1
            seq.append(bucket)
            total += bucket * 0.015625 + total * 1e-9
        return total + len(seq) + len(counts)

    unit(10_000)  # warm-up
    reps = 50_000
    start = time.perf_counter()
    unit(reps)
    elapsed = time.perf_counter() - start
    # Scale the measured chunk up until it fills ~target_s for stability.
    while elapsed < target_s:
        reps *= 2
        start = time.perf_counter()
        unit(reps)
        elapsed = time.perf_counter() - start
    return reps / elapsed


@dataclass
class BenchReport:
    """One timed scenario run, ready to serialize."""

    scenario: str
    mode: str  # "full" or "quick"
    wall_s: float
    wall_s_all: list[float]
    events: int
    requests: int
    metrics_digest: str
    calibration: float
    peak_mem_bytes: int | None = None
    """Peak traced allocation (``tracemalloc``) of one untimed scenario
    run; ``None`` when the memory pass was skipped."""
    sim_wall_s: float | None = None
    """Seconds spent inside :meth:`Simulation.run` during the best
    repetition — the simulator's share of :attr:`wall_s`, excluding
    workload generation, analysis and reporting.  ``None`` when the
    scenario's simulations all ran in worker processes (the process-local
    accumulator saw nothing)."""
    machine: dict[str, Any] = field(default_factory=dict)
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.events / self.wall_s

    @property
    def sim_events_per_sec(self) -> float | None:
        """Simulator-only throughput: events over time spent inside
        :meth:`Simulation.run`.  This is the number the batch kernel
        moves; :attr:`events_per_sec` also carries generation and
        analysis, which the kernel does not touch."""
        if not self.sim_wall_s or self.sim_wall_s <= 0:
            return None
        return self.events / self.sim_wall_s

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "scenario": self.scenario,
            "mode": self.mode,
            "wall_s": self.wall_s,
            "wall_s_all": self.wall_s_all,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "sim_wall_s": self.sim_wall_s,
            "sim_events_per_sec": self.sim_events_per_sec,
            "requests": self.requests,
            "metrics_digest": self.metrics_digest,
            "calibration": self.calibration,
            "peak_mem_bytes": self.peak_mem_bytes,
            "machine": self.machine,
            "detail": self.detail,
        }


def _measure_peak_memory(scenario: Scenario, quick: bool, digest: str) -> int:
    """Peak traced allocation of one extra scenario run.

    Runs *outside* the timed repetitions: ``tracemalloc`` hooks every
    allocation and roughly doubles wall-clock, so a traced run must never
    contribute a timing sample.  The run's digest is still checked — the
    memory pass is also one more determinism witness.
    """
    import tracemalloc

    tracemalloc.start()
    try:
        result = scenario.run(quick)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    if metrics_digest(result.payload) != digest:
        raise BenchError(
            f"scenario {scenario.name!r} is nondeterministic: "
            f"digest changed under the memory-profiling run"
        )
    return peak


def run_scenario(
    scenario: Scenario,
    quick: bool = False,
    repeat: int = 1,
    calibration: float | None = None,
    measure_memory: bool = True,
) -> BenchReport:
    """Time ``scenario`` ``repeat`` times; keep the best wall-clock.

    Every repetition must produce the same digest (the scenarios are
    deterministic); a mismatch means nondeterminism crept into the
    simulator and is reported as :class:`BenchError` immediately.

    With ``measure_memory`` (the default) a final untimed repetition runs
    under ``tracemalloc`` and records the peak traced allocation.
    """
    # Imported here: repro.sim reaches repro.traces (replay) at package
    # init, which imports this package through the analysis layer.
    from ..sim import engine as _engine

    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    if calibration is None:
        calibration = calibration_score()
    walls: list[float] = []
    sim_walls: list[float] = []
    digest: str | None = None
    result: ScenarioResult | None = None
    for _ in range(repeat):
        _engine.reset_run_wall()
        start = time.perf_counter()
        result = scenario.run(quick)
        walls.append(time.perf_counter() - start)
        sim_walls.append(_engine.run_wall_s())
        this_digest = metrics_digest(result.payload)
        if digest is None:
            digest = this_digest
        elif digest != this_digest:
            raise BenchError(
                f"scenario {scenario.name!r} is nondeterministic: "
                f"digest changed between repetitions"
            )
    assert result is not None and digest is not None
    peak_mem = (
        _measure_peak_memory(scenario, quick, digest)
        if measure_memory
        else None
    )
    machine = machine_metadata()
    if "workers" in result.detail:
        # Multi-process scenarios (the fleet): wall-clock depends on the
        # worker count, so the execution width is machine metadata — a
        # baseline timed at one width must not gate a run at another.
        machine["workers"] = result.detail["workers"]
    best = min(range(len(walls)), key=walls.__getitem__)
    return BenchReport(
        scenario=scenario.name,
        mode="quick" if quick else "full",
        wall_s=walls[best],
        wall_s_all=walls,
        events=result.events,
        requests=result.requests,
        metrics_digest=digest,
        calibration=calibration,
        peak_mem_bytes=peak_mem,
        sim_wall_s=sim_walls[best] if sim_walls[best] > 0 else None,
        machine=machine,
        detail=dict(result.detail),
    )


def run_suite(
    scenarios: list[Scenario],
    quick: bool = False,
    repeat: int = 1,
    measure_memory: bool = True,
) -> list[BenchReport]:
    """Run several scenarios with one shared calibration measurement."""
    calibration = calibration_score()
    return [
        run_scenario(
            s,
            quick=quick,
            repeat=repeat,
            calibration=calibration,
            measure_memory=measure_memory,
        )
        for s in scenarios
    ]


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------


def write_report(report: BenchReport, out_dir: str | Path = ".") -> Path:
    """Write ``BENCH_<scenario>.json`` into ``out_dir``; returns the path."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{report.scenario}.json"
    path.write_text(json.dumps(report.to_json(), indent=2) + "\n")
    return path


def write_baseline(
    reports: list[BenchReport], path: str | Path
) -> Path:
    """Fold reports into the committed-baseline format used by CI."""
    modes = {report.mode for report in reports}
    if len(modes) > 1:
        raise ValueError("cannot mix quick and full reports in a baseline")
    document = {
        "schema": BASELINE_SCHEMA,
        "mode": modes.pop() if modes else "full",
        "machine": machine_metadata(),
        "scenarios": {
            report.scenario: {
                "wall_s": report.wall_s,
                "events": report.events,
                "events_per_sec": report.events_per_sec,
                "sim_wall_s": report.sim_wall_s,
                "sim_events_per_sec": report.sim_events_per_sec,
                "metrics_digest": report.metrics_digest,
                "calibration": report.calibration,
                "peak_mem_bytes": report.peak_mem_bytes,
                **(
                    {"workers": report.machine["workers"]}
                    if "workers" in report.machine
                    else {}
                ),
            }
            for report in reports
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def load_baseline(path: str | Path) -> dict[str, Any]:
    document = json.loads(Path(path).read_text())
    if document.get("schema") != BASELINE_SCHEMA:
        raise BenchError(
            f"{path} is not a bench baseline "
            f"(schema {document.get('schema')!r}, expected "
            f"{BASELINE_SCHEMA!r})"
        )
    return document


def compare_reports(
    reports: list[BenchReport],
    baseline: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    mem_threshold: float = DEFAULT_MEM_THRESHOLD,
) -> list[str]:
    """Check reports against a baseline; returns the list of failures.

    Four checks per scenario, in order of severity:

    1. the scenario exists in the baseline and modes match;
    2. the metrics digest is byte-identical (behavior unchanged);
    3. normalized wall-clock has not regressed by more than ``threshold``;
    4. peak traced memory has not grown by more than ``mem_threshold``
       (skipped when either side lacks a memory measurement, e.g. a
       baseline written before memory profiling existed).

    Normalization: ``wall * (baseline_calibration / current_calibration)``
    — i.e. "how long would this run have taken on the baseline machine".
    Memory is compared raw: allocation sizes do not depend on machine
    speed.  Every baseline field is read defensively, so a stale or
    hand-edited baseline produces a named problem, never a ``KeyError``.
    """
    problems: list[str] = []
    entries = baseline.get("scenarios", {})
    for report in reports:
        entry = entries.get(report.scenario)
        if entry is None:
            problems.append(
                f"{report.scenario}: not present in baseline — "
                "regenerate it with 'repro bench --baseline'"
            )
            continue
        if baseline.get("mode") != report.mode:
            problems.append(
                f"{report.scenario}: mode mismatch (baseline "
                f"{baseline.get('mode')!r}, run {report.mode!r})"
            )
            continue
        base_digest = entry.get("metrics_digest")
        base_wall = entry.get("wall_s")
        if base_digest is None or base_wall is None:
            problems.append(
                f"{report.scenario}: baseline entry is incomplete "
                "(missing metrics_digest/wall_s) — regenerate it with "
                "'repro bench --baseline'"
            )
            continue
        if base_digest != report.metrics_digest:
            problems.append(
                f"{report.scenario}: metrics digest changed "
                f"(baseline {base_digest[:23]}..., "
                f"run {report.metrics_digest[:23]}...) — simulated "
                "behavior is no longer identical"
            )
            continue
        base_workers = entry.get("workers")
        run_workers = report.machine.get("workers")
        if (
            base_workers is not None
            and run_workers is not None
            and base_workers != run_workers
        ):
            problems.append(
                f"{report.scenario}: worker-count mismatch (baseline "
                f"timed with {base_workers} worker(s), run used "
                f"{run_workers}) — wall-clock is not comparable; rerun "
                "with matching --workers or regenerate the baseline"
            )
            continue
        base_cal = float(entry.get("calibration") or 0.0)
        if base_cal > 0 and report.calibration > 0:
            speed_ratio = base_cal / report.calibration
        else:
            speed_ratio = 1.0
        normalized = report.wall_s * speed_ratio
        budget = float(base_wall) * (1.0 + threshold)
        if normalized > budget:
            problems.append(
                f"{report.scenario}: slowed beyond the {threshold:.0%} "
                f"budget (baseline {base_wall:.3f}s, normalized "
                f"run {normalized:.3f}s, raw {report.wall_s:.3f}s, "
                f"machine-speed ratio {1 / speed_ratio:.2f}x)"
            )
            continue
        base_mem = entry.get("peak_mem_bytes")
        if base_mem and report.peak_mem_bytes is not None:
            mem_budget = float(base_mem) * (1.0 + mem_threshold)
            if report.peak_mem_bytes > mem_budget:
                problems.append(
                    f"{report.scenario}: peak memory grew beyond the "
                    f"{mem_threshold:.0%} budget (baseline "
                    f"{base_mem / 1e6:.1f} MB, run "
                    f"{report.peak_mem_bytes / 1e6:.1f} MB)"
                )
    return problems


def render_report_line(report: BenchReport) -> str:
    """One human-readable summary line per scenario."""
    memory = (
        f"peak {report.peak_mem_bytes / 1e6:7.1f} MB  "
        if report.peak_mem_bytes is not None
        else ""
    )
    sim_eps = report.sim_events_per_sec
    sim = f"sim {sim_eps:>9.0f} ev/s  " if sim_eps is not None else ""
    return (
        f"{report.scenario:<18} {report.mode:<5} "
        f"wall {report.wall_s:8.3f}s  "
        f"events {report.events:>8}  "
        f"{report.events_per_sec:>10.0f} ev/s  "
        f"{sim}"
        f"requests {report.requests:>7}  "
        f"{memory}"
        f"{report.metrics_digest[:19]}..."
    )


def render_trajectory_lines(
    reports: list[BenchReport], baseline: dict[str, Any]
) -> list[str]:
    """Per-scenario events/sec trajectory against a baseline.

    Informational only — the gate never fails on throughput growth; this
    is the "are we actually getting faster" readout the ROADMAP's
    perf-trajectory item asks for.  Two ratios per scenario when the
    measurements allow: whole-wall events/sec (generation + simulation +
    analysis) and simulator-only events/sec (time inside
    ``Simulation.run``), each against the matching baseline field.  A
    baseline written before ``sim_events_per_sec`` existed yields only
    the whole-wall ratio.  Raw, machine-local ratios: no calibration
    normalization is applied (ev/s trajectories are meant to be read on
    one machine across commits).
    """
    lines: list[str] = []
    entries = baseline.get("scenarios", {})
    for report in reports:
        entry = entries.get(report.scenario)
        if not entry:
            continue
        parts = [
            f"{report.scenario:<18} {report.events_per_sec:>10.0f} ev/s"
        ]
        base_eps = entry.get("events_per_sec")
        if base_eps:
            parts.append(f"({report.events_per_sec / base_eps:5.2f}x)")
        sim_eps = report.sim_events_per_sec
        if sim_eps is not None:
            parts.append(f" sim {sim_eps:>10.0f} ev/s")
            base_sim = entry.get("sim_events_per_sec")
            if base_sim:
                parts.append(f"({sim_eps / base_sim:5.2f}x)")
        lines.append("  ".join(parts))
    return lines


def main_check(message: str) -> None:  # pragma: no cover - CLI glue
    print(message, file=sys.stderr)
