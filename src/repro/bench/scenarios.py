"""The benchmark scenario suite.

Three scenarios cover the simulator's hot paths from three angles:

``standard_day``
    The paper's bread-and-butter experiment: a training (off) day followed
    by a rearranged (on) day on the Toshiba disk under the *system*
    workload, nightly cycle included.  This is the scenario the headline
    performance numbers quote.

``block_sweep_slice``
    A slice of the Figure-8 block-count sweep on the Fujitsu disk —
    exercises the track-buffer read path, the larger geometry, and
    back-to-back rearrangement nights.

``fault_stress``
    The standard day with deterministic fault injection: transient errors
    with bounded retries, pinned media errors, a mid-day machine crash and
    a crash between nightly block moves.  Keeps the error paths honest and
    times them.

``trace_replay``
    The real-trace pipeline end to end: the bundled blkparse and MSR
    fixture traces are ingested (parse -> map -> rescale) and replayed
    through fresh drivers, repeatedly.  Times the ``repro.traces``
    subsystem and pins its metrics digest — ingest and replay are pure
    functions of the fixture bytes, so the digest must never move.

``large_disk``
    The standard day on the synthetic ~8 GB ``modern`` disk (2,097,152
    blocks) with the ``spacesaving`` analyzer counter — the scale target
    of ``docs/scaling.md``.  Guards the array-backed block table, the
    streaming sketch, and the vectorized placement pipeline against both
    time and peak-memory regressions on a multi-million-block device.

``fleet_day``
    The fleet stack end to end (``docs/fleet.md``): multi-tenant
    workload derivation, sharded ``MultiDiskExperiment`` execution, and
    streaming log-histogram aggregation.  Quick mode runs 64 Fujitsu
    devices (130,982 blocks each, 8 shards); full mode runs 1,000
    ``modern`` devices (2,097,152 blocks each, 125 shards).  Runs with
    ``workers=1`` so wall-clock and peak memory stay machine-comparable;
    the digest is identical at any worker count by construction.

``fleet_chaos``
    A small fleet day executed twice: once at ``workers=2`` under a
    seeded :class:`~repro.faults.ChaosPlan` (worker exceptions and hard
    exits, absorbed by a 3-attempt retry policy), once clean and serial.
    The scenario *asserts* the two digests match — the resilience
    layer's core guarantee (``docs/resilience.md``) is re-proven on
    every bench run — and times the fault-handling path.

``ssd_day``
    The flash counterpart (``docs/ftl.md``): the *users* workload runs
    once through the mechanical disk and twice through the page-mapped
    FTL — hot/cold write separation off, then on — all on identical
    generated days.  The scenario *asserts* the separation contract:
    analyzer-driven hot/cold separation must finish the campaign with
    lower overall write amplification than the separation-off run on the
    same seed.  Its detail records write amplification for both runs, GC
    run/move counts, the mapping-cache hit ratio, and max/mean erase
    counts, so the report doubles as a wear/GC summary.

``online_day``
    Online incremental rearrangement under live traffic
    (``docs/online.md``): the same two days run once under
    :class:`~repro.policy.OnlinePolicy` (idle-window migration on) and
    once under :class:`~repro.policy.NoRearrangement` (migration off).
    The scenario *asserts* the online run's contract — foreground
    p95/p99 service time stays within 1.25x (+2 ms histogram-resolution
    slack) of the migration-free run, blocks actually moved, and the
    online run's day-1 mean seek time improves on its day 0 — so the
    "low-priority migration must not hurt the foreground tail" guarantee
    is re-proven on every bench run.

Every scenario is deterministic: fixed seeds, fixed day lengths per mode.
``quick`` mode shrinks the simulated day so CI can afford the suite; the
digests of quick and full runs differ (different workloads) but each is
reproducible on any machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..faults.spec import parse_fault_spec
from ..sim.experiment import Experiment, ExperimentConfig
from ..workload.profiles import PROFILES
from .digest import day_metrics_payload


@dataclass(frozen=True)
class ScenarioResult:
    """What one scenario run produced (before timing is attached)."""

    payload: dict[str, Any]
    """Digest input: every simulated metric the scenario observed."""
    events: int
    """Simulation events dispatched across all days."""
    requests: int
    """Workload requests issued across all days."""
    detail: dict[str, Any] = field(default_factory=dict)
    """Scenario-specific context recorded in the report (not hashed)."""


@dataclass(frozen=True)
class Scenario:
    """A named, deterministic benchmark scenario."""

    name: str
    description: str
    run: Callable[[bool], ScenarioResult]


def _config(
    disk: str,
    hours: float,
    faults: str | None = None,
    counter: str = "exact",
) -> ExperimentConfig:
    profile = PROFILES["system"].scaled(hours=hours)
    plan = parse_fault_spec(faults) if faults else None
    return ExperimentConfig(
        profile=profile, disk=disk, seed=1993, faults=plan, counter=counter
    )


def _run_days(
    experiment: Experiment, schedule: list[bool]
) -> ScenarioResult:
    """Run an explicit on/off schedule, collecting payloads and counters."""
    days: list[dict[str, Any]] = []
    requests = 0
    for day, on_today in enumerate(schedule):
        on_tomorrow = schedule[day + 1] if day + 1 < len(schedule) else False
        result = experiment.run_day(
            rearranged=on_today, rearrange_tomorrow=on_tomorrow
        )
        requests += result.workload_requests
        days.append(
            {
                "metrics": day_metrics_payload(result.metrics),
                "workload_requests": result.workload_requests,
                "workload_reads": result.workload_reads,
                "rearranged_blocks": result.rearranged_blocks,
            }
        )
    return ScenarioResult(
        payload={"days": days},
        events=experiment.events_dispatched,
        requests=requests,
    )


def _standard_day(quick: bool) -> ScenarioResult:
    hours = 1.0 if quick else 15.0
    experiment = Experiment(_config("toshiba", hours))
    result = _run_days(experiment, [False, True])
    result.detail.update(disk="toshiba", hours=hours, days=2)
    return result


def _block_sweep_slice(quick: bool) -> ScenarioResult:
    hours = 0.25 if quick else 1.0
    counts = [200] if quick else [500, 3500]
    experiment = Experiment(_config("fujitsu", hours))
    days: list[dict[str, Any]] = []
    requests = 0

    def note(count: int, result) -> None:
        nonlocal requests
        requests += result.workload_requests
        days.append(
            {
                "count": count,
                "metrics": day_metrics_payload(result.metrics),
                "workload_requests": result.workload_requests,
                "rearranged_blocks": result.rearranged_blocks,
            }
        )

    note(
        0,
        experiment.run_day(
            rearranged=False,
            rearrange_tomorrow=bool(counts),
            num_blocks_tomorrow=counts[0] if counts else 0,
        ),
    )
    for index, count in enumerate(counts):
        next_count = counts[index + 1] if index + 1 < len(counts) else 0
        note(
            count,
            experiment.run_day(
                rearranged=count > 0,
                rearrange_tomorrow=index + 1 < len(counts),
                num_blocks_tomorrow=next_count,
            ),
        )
    return ScenarioResult(
        payload={"days": days},
        events=experiment.events_dispatched,
        requests=requests,
        detail={"disk": "fujitsu", "hours": hours, "counts": counts},
    )


def _fault_stress(quick: bool) -> ScenarioResult:
    hours = 0.5 if quick else 1.0
    crash_ms = int(hours * 1_800_000)  # mid-way through day 1
    spec = (
        "seed=7,transient=0.002,retries=3,media=rand:4,"
        f"crash=day1@{crash_ms},crash=copy40"
    )
    experiment = Experiment(_config("toshiba", hours, faults=spec))
    result = _run_days(experiment, [False, True])
    stats = experiment.driver.fault_stats
    result.payload["fault_stats"] = {
        "transient_faults": stats.transient_faults,
        "media_faults": stats.media_faults,
        "retries": stats.retries,
        "timeouts": stats.timeouts,
        "failed_requests": stats.failed_requests,
        "fallback_serves": stats.fallback_serves,
        "evictions": stats.evictions,
        "skipped_moves": stats.skipped_moves,
        "crashes": stats.crashes,
        "recoveries": stats.recoveries,
    }
    result.detail.update(disk="toshiba", hours=hours, spec=spec)
    return result


def _large_disk(quick: bool) -> ScenarioResult:
    hours = 0.5 if quick else 15.0
    experiment = Experiment(
        _config("modern", hours, counter="spacesaving")
    )
    result = _run_days(experiment, [False, True])
    result.detail.update(
        disk="modern",
        hours=hours,
        days=2,
        total_blocks=experiment.model.geometry.total_blocks,
        counter="spacesaving",
    )
    return result


def _fleet_day(quick: bool) -> ScenarioResult:
    from ..fleet import FleetSpec, run_fleet
    from ..workload.tenancy import TenancySpec

    if quick:
        devices, disk, tenants, hours = 64, "fujitsu", 256, 0.05
    else:
        devices, disk, tenants, hours = 1000, "modern", 4000, 0.05
    spec = FleetSpec(
        devices=devices,
        disk=disk,
        days=2,
        hours=hours,
        devices_per_shard=8,
        tenancy=TenancySpec(tenants=tenants),
        seed=1993,
    )
    # workers=1 keeps the timing machine-comparable (and tracemalloc
    # sees every allocation); the digest is identical at any width —
    # the fleet regression tests pin workers=1 against workers=8.
    result = run_fleet(spec, workers=1)
    return ScenarioResult(
        payload=result.payload(),
        events=result.events,
        requests=result.total_requests,
        detail={
            "disk": disk,
            "devices": devices,
            "shards": spec.num_shards,
            "tenants": tenants,
            "hours": hours,
            "days": 2,
            "workers": 1,
            "p50_ms": result.p50_ms,
            "p95_ms": result.p95_ms,
            "p99_ms": result.p99_ms,
            "fleet_digest": result.digest(),
        },
    )


def _fleet_chaos(quick: bool) -> ScenarioResult:
    from ..faults import ChaosPlan
    from ..fleet import FleetSpec, run_fleet
    from ..parallel import RetryPolicy
    from ..workload.tenancy import TenancySpec

    if quick:
        devices, tenants, hours = 16, 64, 0.02
    else:
        devices, tenants, hours = 64, 256, 0.05
    spec = FleetSpec(
        devices=devices,
        disk="toshiba",
        days=2,
        hours=hours,
        devices_per_shard=2,
        tenancy=TenancySpec(tenants=tenants),
        seed=1993,
    )
    # Single-attempt faults + max_attempts=3 guarantees completion: a
    # chaos-ridden run that finishes must be bit-identical to the clean
    # one, and this scenario proves it on every bench run.
    chaos = ChaosPlan(
        seed=29, exception_rate=0.25, exit_rate=0.1, attempts=1
    )
    retried = 0

    def count_retry(_failure) -> None:
        nonlocal retried
        retried += 1

    chaotic = run_fleet(
        spec,
        workers=2,
        retry=RetryPolicy(max_attempts=3, backoff_s=0.0, seed=spec.seed),
        chaos=chaos,
        chunk_size=1,
        on_retry=count_retry,
    )
    clean = run_fleet(spec, workers=1)
    if chaotic.digest() != clean.digest():
        raise RuntimeError(
            "chaos run digest diverged from fault-free run: "
            f"{chaotic.digest()} != {clean.digest()}"
        )
    return ScenarioResult(
        payload=chaotic.payload(),
        events=chaotic.events,
        requests=chaotic.total_requests,
        detail={
            "disk": "toshiba",
            "devices": devices,
            "shards": spec.num_shards,
            "hours": hours,
            "retried_tasks": chaotic.retried_tasks,
            "retries_observed": retried,
            "fleet_digest": chaotic.digest(),
            "clean_digest": clean.digest(),
        },
    )


ONLINE_TAIL_FACTOR = 1.25
"""Foreground p95/p99 under online migration must stay within this
factor of the migration-free run (plus histogram-resolution slack)."""

ONLINE_TAIL_SLACK_MS = 2.0
"""Absolute slack on the tail bound: service-time percentiles are read
from 1 ms-resolution histograms, so tiny tails need a floor."""


def _online_day(quick: bool) -> ScenarioResult:
    from ..policy import NoRearrangement, OnlinePolicy

    hours = 0.5 if quick else 15.0
    schedule = [False, True]
    base = _config("toshiba", hours)
    runs: dict[str, list] = {}
    day_results: dict[str, list] = {}
    online_stats = None
    events = 0
    requests = 0
    for key, policy in (
        ("online", OnlinePolicy()),
        ("off", NoRearrangement()),
    ):
        experiment = Experiment(replace(base, policy=policy))
        days: list[dict[str, Any]] = []
        results = []
        for day, on_today in enumerate(schedule):
            on_tomorrow = (
                schedule[day + 1] if day + 1 < len(schedule) else False
            )
            result = experiment.run_day(
                rearranged=on_today, rearrange_tomorrow=on_tomorrow
            )
            requests += result.workload_requests
            results.append(result)
            days.append(
                {
                    "metrics": day_metrics_payload(result.metrics),
                    "workload_requests": result.workload_requests,
                    "rearranged_blocks": result.rearranged_blocks,
                }
            )
        events += experiment.events_dispatched
        runs[key] = days
        day_results[key] = results
        if key == "online":
            assert experiment.controller.online_stats is not None
            online_stats = experiment.controller.online_stats
    assert online_stats is not None
    tails: dict[str, float] = {}
    for day in range(len(schedule)):
        for quantile in (0.95, 0.99):
            on = day_results["online"][day].metrics.all.service_percentile_ms(
                quantile
            )
            off = day_results["off"][day].metrics.all.service_percentile_ms(
                quantile
            )
            tails[f"day{day}_p{int(quantile * 100)}_online"] = on
            tails[f"day{day}_p{int(quantile * 100)}_off"] = off
            bound = ONLINE_TAIL_FACTOR * off + ONLINE_TAIL_SLACK_MS
            if on > bound:
                raise RuntimeError(
                    f"online migration hurt the foreground tail: day "
                    f"{day} p{int(quantile * 100)} {on:.2f} ms exceeds "
                    f"{bound:.2f} ms ({ONLINE_TAIL_FACTOR}x the "
                    f"migration-free {off:.2f} ms + "
                    f"{ONLINE_TAIL_SLACK_MS} ms)"
                )
    if online_stats.moves_completed == 0:
        raise RuntimeError("online policy committed no incremental moves")
    seek_day0 = day_results["online"][0].metrics.all.mean_seek_time_ms
    seek_day1 = day_results["online"][1].metrics.all.mean_seek_time_ms
    if seek_day1 >= seek_day0:
        raise RuntimeError(
            "online migration did not improve mean seek time: "
            f"day 1 {seek_day1:.3f} ms vs day 0 {seek_day0:.3f} ms"
        )
    return ScenarioResult(
        payload={
            "online": runs["online"],
            "off": runs["off"],
            "migration": online_stats.payload(),
        },
        events=events,
        requests=requests,
        detail={
            "disk": "toshiba",
            "hours": hours,
            "days": 2,
            "moves_completed": online_stats.moves_completed,
            "seek_day0_ms": seek_day0,
            "seek_day1_ms": seek_day1,
            **tails,
        },
    )


def _ssd_day(quick: bool) -> ScenarioResult:
    from ..sim.ssd import SsdConfig, SsdExperiment

    # Compress the clock but keep the full day's file churn: flash cost
    # depends on the write mix, not on arrival spacing, and ``scaled()``
    # would shrink the day's new-file traffic to the point where the
    # hot/cold mix (and separation's benefit) disappears.
    hours = 2.0
    num_days = 2 if quick else 3
    profile = replace(PROFILES["users"], day_hours=hours)
    # Reference leg: the same generated days through the mechanical disk.
    disk_experiment = Experiment(
        ExperimentConfig(profile=profile, disk="toshiba", seed=1993)
    )
    disk_leg = _run_days(
        disk_experiment, [False] + [True] * (num_days - 1)
    )
    events = disk_experiment.events_dispatched
    requests = disk_leg.requests
    ftl_days: dict[str, list[dict[str, Any]]] = {}
    ftl_results: dict[str, list] = {}
    for key, policy in (("unseparated", "off"), ("separated", "nightly")):
        experiment = SsdExperiment(
            SsdConfig(profile=profile, policy=policy, cmt_capacity=1024)
        )
        results = experiment.run_days(num_days)
        events += experiment.events_dispatched
        requests += sum(day.workload_requests for day in results)
        ftl_days[key] = [day.payload() for day in results]
        ftl_results[key] = results

    def overall_wa(results: list) -> float:
        host = sum(day.host_page_writes for day in results)
        flash = sum(day.flash_page_writes for day in results)
        return flash / host if host else 0.0

    wa_off = overall_wa(ftl_results["unseparated"])
    wa_on = overall_wa(ftl_results["separated"])
    if wa_on >= wa_off:
        raise RuntimeError(
            "hot/cold separation did not reduce write amplification: "
            f"{wa_on:.4f} (on) vs {wa_off:.4f} (off)"
        )
    separated = ftl_results["separated"]
    return ScenarioResult(
        payload={
            "disk": disk_leg.payload["days"],
            "ssd": ftl_days,
            "write_amplification": {
                "unseparated": round(wa_off, 6),
                "separated": round(wa_on, 6),
            },
        },
        events=events,
        requests=requests,
        detail={
            "reference_disk": "toshiba",
            "flash": "ssd",
            "hours": hours,
            "days": num_days,
            "write_amplification_off": wa_off,
            "write_amplification_on": wa_on,
            "gc_runs": sum(day.gc_runs for day in separated),
            "gc_page_moves": sum(day.gc_page_moves for day in separated),
            "cmt_hit_ratio": separated[-1].cmt_hit_ratio,
            "max_erase_count": separated[-1].max_erase_count,
            "mean_erase_count": separated[-1].mean_erase_count,
        },
    )


def _trace_replay(quick: bool) -> ScenarioResult:
    from ..traces import fixture_path, ingest_trace, replay_jobs

    iterations = 8 if quick else 60
    blkparse_fixture = fixture_path("sample.blkparse")
    msr_fixture = fixture_path("sample.msr.csv")
    payload: dict[str, Any] = {"iterations": iterations}
    events = 0
    requests = 0
    for index in range(iterations):
        blk = ingest_trace(
            blkparse_fixture, mapping="compact", loop="open"
        )
        blk_replay = replay_jobs(blk.jobs, disk="toshiba", rearrange=True)
        msr = ingest_trace(
            msr_fixture,
            mapping="linear",
            loop="closed",
            disk="fujitsu",
            time_scale=0.5,
        )
        msr_replay = replay_jobs(msr.jobs, disk="fujitsu")
        events += blk_replay.events + msr_replay.events
        requests += blk_replay.requests + msr_replay.requests
        if index == 0:
            payload["blkparse"] = {
                "metrics": day_metrics_payload(blk_replay.metrics),
                "jobs": len(blk.jobs),
                "requests": blk_replay.requests,
                "rearranged_blocks": blk_replay.rearranged_blocks,
                "working_set_blocks": blk.working_set_blocks,
                "sequential_fraction": blk.character.sequential_fraction,
            }
            payload["msr"] = {
                "metrics": day_metrics_payload(msr_replay.metrics),
                "jobs": len(msr.jobs),
                "requests": msr_replay.requests,
                "working_set_blocks": msr.working_set_blocks,
                "zipf_exponent": msr.character.zipf_exponent,
            }
    return ScenarioResult(
        payload=payload,
        events=events,
        requests=requests,
        detail={
            "fixtures": [blkparse_fixture.name, msr_fixture.name],
            "iterations": iterations,
        },
    )


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "standard_day",
            "off day + rearranged day, Toshiba, system workload",
            _standard_day,
        ),
        Scenario(
            "block_sweep_slice",
            "Figure-8 sweep slice, Fujitsu (track buffer on)",
            _block_sweep_slice,
        ),
        Scenario(
            "fault_stress",
            "standard day under transient/media faults and crashes",
            _fault_stress,
        ),
        Scenario(
            "trace_replay",
            "ingest + replay of the bundled blkparse/MSR fixture traces",
            _trace_replay,
        ),
        Scenario(
            "large_disk",
            "standard day on the 2M-block modern disk, spacesaving counter",
            _large_disk,
        ),
        Scenario(
            "fleet_day",
            "sharded multi-tenant fleet day with streaming aggregation",
            _fleet_day,
        ),
        Scenario(
            "fleet_chaos",
            "fleet day under injected worker faults; digest must match "
            "the clean run",
            _fleet_chaos,
        ),
        Scenario(
            "ssd_day",
            "users day on the page-mapped FTL, disk vs flash, separation "
            "on vs off; asserts separation lowers write amplification",
            _ssd_day,
        ),
        Scenario(
            "online_day",
            "idle-window incremental migration vs migration off; "
            "asserts the foreground-tail and seek-improvement contract",
            _online_day,
        ),
    )
}


def get_scenarios(names: list[str] | None = None) -> list[Scenario]:
    """Resolve scenario names (``None`` means the full suite, in order)."""
    if names is None:
        return list(SCENARIOS.values())
    missing = [name for name in names if name not in SCENARIOS]
    if missing:
        known = ", ".join(SCENARIOS)
        raise KeyError(
            f"unknown scenario(s) {', '.join(missing)}; known: {known}"
        )
    return [SCENARIOS[name] for name in names]
