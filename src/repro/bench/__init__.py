"""Continuous benchmarking: scenario suite, reports, and the regression gate.

``repro.bench`` is how this repository proves that a hot path got faster —
and that it did not get *different*.  Every scenario runs a deterministic,
seeded simulation slice, times it, and reduces the simulated metrics to a
canonical digest: two runs of the same scenario on any machine and any
commit must produce the same digest, or the optimization changed observable
behavior.  Wall-clock, by contrast, is machine-dependent; reports carry a
calibration score so the regression gate can normalize timings between the
committed baseline's machine and the current one.

Entry points::

    python -m repro bench                  # full suite -> BENCH_*.json
    python -m repro bench --quick          # CI-sized slices
    python -m repro bench --quick --compare benchmarks/results/baseline.json

See ``docs/benchmarking.md`` for the scenario definitions, the JSON
schema, and how the CI gate works.
"""

from .digest import day_metrics_payload, metrics_digest
from .runner import (
    BenchError,
    BenchReport,
    calibration_score,
    compare_reports,
    load_baseline,
    machine_metadata,
    run_scenario,
    run_suite,
    write_baseline,
    write_report,
)
from .scenarios import SCENARIOS, Scenario, ScenarioResult, get_scenarios

__all__ = [
    "BenchError",
    "BenchReport",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "calibration_score",
    "compare_reports",
    "day_metrics_payload",
    "get_scenarios",
    "load_baseline",
    "machine_metadata",
    "metrics_digest",
    "run_scenario",
    "run_suite",
    "write_baseline",
    "write_report",
]
