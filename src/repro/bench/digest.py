"""Canonical digests of simulated metrics.

The digest is the bench suite's correctness anchor: an optimization is only
an optimization if the scenario's digest is byte-identical before and after.
Every quantity a :class:`~repro.stats.metrics.DayMetrics` carries — the
full-resolution means *and* the bucketed distributions — feeds the hash, so
even a one-ULP float drift or a single request landing in a neighboring
histogram bucket changes it.

Floats are serialized with :func:`repr` semantics (``json`` uses
``float.__repr__``, the shortest round-trip form), which is stable for IEEE
doubles across platforms and Python versions >= 3.1.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..stats.metrics import SCOPES, DayMetrics


def day_metrics_payload(metrics: DayMetrics) -> dict[str, Any]:
    """Reduce one day's metrics to a canonical, JSON-ready mapping."""
    scopes: dict[str, Any] = {}
    for scope in SCOPES:
        m = metrics.scopes[scope]
        hist = m.service_histogram
        scopes[scope] = {
            "requests": m.requests,
            "mean_seek_distance": m.mean_seek_distance,
            "fcfs_mean_seek_distance": m.fcfs_mean_seek_distance,
            "zero_seek_fraction": m.zero_seek_fraction,
            "mean_seek_time_ms": m.mean_seek_time_ms,
            "fcfs_mean_seek_time_ms": m.fcfs_mean_seek_time_ms,
            "mean_service_ms": m.mean_service_ms,
            "mean_waiting_ms": m.mean_waiting_ms,
            "mean_rotation_ms": m.mean_rotation_ms,
            "mean_transfer_ms": m.mean_transfer_ms,
            "buffer_hits": m.buffer_hits,
            "errors": m.errors,
            "retries": m.retries,
            "service_buckets": {
                str(bucket): count
                for bucket, count in sorted(hist.buckets.items())
            },
            "service_total_ms": hist.total_ms,
            "service_max_ms": hist.max_ms,
        }
    return {
        "day": metrics.day,
        "rearranged": metrics.rearranged,
        "scopes": scopes,
    }


def canonical_json(payload: Any) -> str:
    """The canonical serialization hashed by :func:`metrics_digest`."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def metrics_digest(payload: Any) -> str:
    """``sha256:<hex>`` over the canonical JSON form of ``payload``."""
    encoded = canonical_json(payload).encode("utf-8")
    return "sha256:" + hashlib.sha256(encoded).hexdigest()
