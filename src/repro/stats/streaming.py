"""Streaming fleet aggregation: mergeable fixed-bin log-scale histograms.

A 1,000-device fleet day produces millions of service-time samples.
Shipping them (or even the per-device millisecond-resolution
:class:`~repro.stats.histogram.TimeHistogram` buckets, which are
unbounded in number) from worker processes to the aggregator would make
result exchange scale with traffic.  :class:`LogHistogram` is the fixed
transport: a bounded array of logarithmically spaced bins whose merge is
pure element-wise addition — commutative, associative, and independent
of the order shards report in — plus exact cumulative ``count`` /
``total_ms`` / ``max_ms`` so fleet means stay full-resolution while
quantiles are read off the log bins.

The log spacing matches how service-time distributions are consumed:
p50 around tens of milliseconds and p99 around hundreds land in bins of
proportional (relative) width, so tail quantiles keep the same relative
error as the median instead of degrading with absolute bucket width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from .histogram import TimeHistogram

__all__ = ["LogHistogram", "merge_histograms"]


@dataclass
class LogHistogram:
    """Fixed-bin log-scale histogram with exact cumulative stats.

    Bin ``i`` covers values in ``[min_value_ms * r**i, min_value_ms *
    r**(i+1))`` where ``r = 10 ** (1 / bins_per_decade)``; samples below
    ``min_value_ms`` clamp into bin 0 and samples beyond the last edge
    clamp into the last bin (``max_ms`` still records the true maximum).
    Two histograms merge only if their ``(min_value_ms, decades,
    bins_per_decade)`` configuration is identical — the merge is then a
    plain element-wise sum, so fleet aggregation is order-independent.
    """

    min_value_ms: float = 0.125
    decades: int = 7
    bins_per_decade: int = 32
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total_ms: float = 0.0
    total_sq_ms: float = 0.0
    max_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.min_value_ms <= 0:
            raise ValueError("min_value_ms must be positive")
        if self.decades < 1:
            raise ValueError("decades must be positive")
        if self.bins_per_decade < 1:
            raise ValueError("bins_per_decade must be positive")
        if not self.counts:
            self.counts = [0] * self.num_bins
        elif len(self.counts) != self.num_bins:
            raise ValueError(
                f"expected {self.num_bins} bins, got {len(self.counts)}"
            )

    @property
    def num_bins(self) -> int:
        return self.decades * self.bins_per_decade

    def config(self) -> tuple[float, int, int]:
        return (self.min_value_ms, self.decades, self.bins_per_decade)

    def _bin_index(self, value_ms: float) -> int:
        if value_ms <= self.min_value_ms:
            return 0
        index = int(
            math.log10(value_ms / self.min_value_ms) * self.bins_per_decade
        )
        return min(index, self.num_bins - 1)

    def bin_upper_edge(self, index: int) -> float:
        return self.min_value_ms * 10.0 ** ((index + 1) / self.bins_per_decade)

    def record(self, value_ms: float, weight: int = 1) -> None:
        if value_ms < 0:
            raise ValueError(f"negative time sample: {value_ms}")
        if weight < 0:
            raise ValueError("weight must be non-negative")
        if weight == 0:
            return
        self.counts[self._bin_index(value_ms)] += weight
        self.count += weight
        self.total_ms += value_ms * weight
        self.total_sq_ms += value_ms * value_ms * weight
        if value_ms > self.max_ms:
            self.max_ms = value_ms

    def absorb_time_histogram(self, hist: TimeHistogram) -> None:
        """Fold a device's millisecond histogram into the log bins.

        Each 1 ms bucket lands in the log bin of its upper edge (the
        value :meth:`TimeHistogram.percentile` would report), while the
        exact cumulative sums are carried over untouched — fleet means
        stay full-resolution even though the distribution is re-bucketed.
        """
        for bucket, bucket_count in hist.buckets.items():
            edge = (bucket + 1) * hist.resolution_ms
            self.counts[self._bin_index(edge)] += bucket_count
        self.count += hist.count
        self.total_ms += hist.total_ms
        self.total_sq_ms += hist.total_sq_ms
        self.max_ms = max(self.max_ms, hist.max_ms)

    @property
    def mean_ms(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total_ms / self.count

    @property
    def stdev_ms(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean_ms
        variance = max(self.total_sq_ms / self.count - mean * mean, 0.0)
        return math.sqrt(variance)

    def percentile(self, q: float) -> float:
        """Upper edge of the smallest bin covering fraction ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        needed = q * self.count
        running = 0
        for index, bin_count in enumerate(self.counts):
            running += bin_count
            if bin_count and running >= needed:
                edge = self.bin_upper_edge(index)
                if index == self.num_bins - 1 and self.max_ms > edge:
                    # Overflow bin: clamped samples exceed the edge.
                    return self.max_ms
                return min(edge, self.max_ms)
        return self.max_ms

    def merge(self, other: "LogHistogram") -> None:
        if other.config() != self.config():
            raise ValueError(
                "cannot merge log histograms of differing configuration: "
                f"{self.config()} vs {other.config()}"
            )
        for index, bin_count in enumerate(other.counts):
            self.counts[index] += bin_count
        self.count += other.count
        self.total_ms += other.total_ms
        self.total_sq_ms += other.total_sq_ms
        self.max_ms = max(self.max_ms, other.max_ms)

    def copy(self) -> "LogHistogram":
        return LogHistogram(
            min_value_ms=self.min_value_ms,
            decades=self.decades,
            bins_per_decade=self.bins_per_decade,
            counts=list(self.counts),
            count=self.count,
            total_ms=self.total_ms,
            total_sq_ms=self.total_sq_ms,
            max_ms=self.max_ms,
        )

    def payload(self) -> dict:
        """Digest/JSON form: configuration plus the nonzero bins only."""
        return {
            "min_value_ms": self.min_value_ms,
            "decades": self.decades,
            "bins_per_decade": self.bins_per_decade,
            "bins": {
                str(index): bin_count
                for index, bin_count in enumerate(self.counts)
                if bin_count
            },
            "count": self.count,
            "total_ms": self.total_ms,
            "total_sq_ms": self.total_sq_ms,
            "max_ms": self.max_ms,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "LogHistogram":
        hist = cls(
            min_value_ms=payload["min_value_ms"],
            decades=payload["decades"],
            bins_per_decade=payload["bins_per_decade"],
        )
        for index, bin_count in payload["bins"].items():
            hist.counts[int(index)] = int(bin_count)
        hist.count = int(payload["count"])
        hist.total_ms = float(payload["total_ms"])
        hist.max_ms = float(payload["max_ms"])
        hist.total_sq_ms = float(payload.get("total_sq_ms", 0.0))
        return hist


def merge_histograms(histograms) -> LogHistogram:
    """Merge an iterable of identically configured histograms into one."""
    iterator = iter(histograms)
    try:
        merged = next(iterator).copy()
    except StopIteration:
        raise ValueError("merge_histograms needs at least one histogram")
    for hist in iterator:
        merged.merge(hist)
    return merged
