"""Histograms matching the driver's recording resolutions.

Section 4.1.5: "Times are measured with microsecond resolution.  However,
time distributions are recorded with a resolution of one millisecond.
Cumulative service times and queueing times are recorded as well, using the
full resolution of the measurements."

:class:`TimeHistogram` therefore buckets samples at 1 ms resolution *and*
keeps an exact cumulative sum and count, so means are full-resolution while
distributions are bucketed — exactly how the paper's numbers are formed.
:class:`DistanceHistogram` is the analogous integer-keyed histogram for
seek distances in cylinders.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field


@dataclass
class TimeHistogram:
    """Millisecond-bucketed time distribution with exact cumulative stats."""

    resolution_ms: float = 1.0
    buckets: Counter = field(default_factory=Counter)
    count: int = 0
    total_ms: float = 0.0
    total_sq_ms: float = 0.0
    max_ms: float = 0.0

    def record(self, value_ms: float) -> None:
        if value_ms < 0:
            raise ValueError(f"negative time sample: {value_ms}")
        self.buckets[int(value_ms // self.resolution_ms)] += 1
        self.count += 1
        self.total_ms += value_ms
        self.total_sq_ms += value_ms * value_ms
        if value_ms > self.max_ms:
            self.max_ms = value_ms

    @property
    def mean_ms(self) -> float:
        """Full-resolution mean (from the cumulative sum, not the buckets)."""
        if self.count == 0:
            return 0.0
        return self.total_ms / self.count

    @property
    def stdev_ms(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean_ms
        variance = max(self.total_sq_ms / self.count - mean * mean, 0.0)
        return math.sqrt(variance)

    def fraction_below(self, threshold_ms: float) -> float:
        """Fraction of samples strictly below ``threshold_ms`` (bucketed).

        Used to read points off the paper's service-time CDFs (Figures 4
        and 6), e.g. "50% of all the requests are completed in less than 20
        milliseconds".
        """
        if self.count == 0:
            return 0.0
        limit = int(threshold_ms // self.resolution_ms)
        below = sum(
            count for bucket, count in self.buckets.items() if bucket < limit
        )
        return below / self.count

    def cdf(self) -> list[tuple[float, float]]:
        """Cumulative distribution as (upper edge ms, fraction <= edge)."""
        if self.count == 0:
            return []
        points: list[tuple[float, float]] = []
        running = 0
        for bucket in sorted(self.buckets):
            running += self.buckets[bucket]
            edge = (bucket + 1) * self.resolution_ms
            points.append((edge, running / self.count))
        return points

    def percentile(self, q: float) -> float:
        """Smallest bucket upper edge covering fraction ``q`` of samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        needed = q * self.count
        running = 0
        for bucket in sorted(self.buckets):
            running += self.buckets[bucket]
            if running >= needed:
                return (bucket + 1) * self.resolution_ms
        return self.max_ms

    def merge(self, other: "TimeHistogram") -> None:
        if other.resolution_ms != self.resolution_ms:
            raise ValueError("cannot merge histograms of differing resolution")
        self.buckets.update(other.buckets)
        self.count += other.count
        self.total_ms += other.total_ms
        self.total_sq_ms += other.total_sq_ms
        self.max_ms = max(self.max_ms, other.max_ms)


@dataclass
class DistanceHistogram:
    """Seek-distance distribution, in whole cylinders."""

    buckets: Counter = field(default_factory=Counter)
    count: int = 0
    total: int = 0

    def record(self, distance: int) -> None:
        if distance < 0:
            raise ValueError(f"negative seek distance: {distance}")
        self.buckets[int(distance)] += 1
        self.count += 1
        self.total += int(distance)

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def zero_fraction(self) -> float:
        """Fraction of zero-length seeks (Tables 3, 8 and 9)."""
        if self.count == 0:
            return 0.0
        return self.buckets.get(0, 0) / self.count

    def as_mapping(self) -> dict[int, int]:
        return dict(self.buckets)

    def mean_time_ms(self, seek_model) -> float:
        """Mean seek time via a seek-time function (the paper's method)."""
        return seek_model.mean_time(self.buckets)

    def merge(self, other: "DistanceHistogram") -> None:
        self.buckets.update(other.buckets)
        self.count += other.count
        self.total += other.total
