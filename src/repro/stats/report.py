"""Text rendering of the paper's tables and figures.

These helpers print the same rows the paper reports so the benchmark
harness output can be compared side by side with the published tables.
They are formatting only; all computation lives in
:mod:`repro.stats.metrics`.
"""

from __future__ import annotations

from typing import Sequence

from .histogram import TimeHistogram
from .metrics import DayMetrics, MinAvgMax, OnOffSummary, ScopeMetrics


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def _mam(m: MinAvgMax) -> str:
    return f"{_fmt(m.min):>7} {_fmt(m.avg):>7} {_fmt(m.max):>7}"


def render_onoff_table(
    rows: Sequence[tuple[str, str, OnOffSummary]],
    title: str,
) -> str:
    """Render a Table 2/4/5/6-style summary.

    ``rows`` are ``(disk name, scope label, summary)`` triples; each summary
    expands into an Off row and an On row of daily-mean min/avg/max values.
    """
    header = (
        f"{'Disk':<10} {'On/Off':<7} "
        f"{'Seek (min/avg/max)':>24} "
        f"{'Service (min/avg/max)':>24} "
        f"{'Waiting (min/avg/max)':>24}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for disk, __, summary in rows:
        lines.append(
            f"{disk:<10} {'Off':<7} {_mam(summary.off_seek):>24} "
            f"{_mam(summary.off_service):>24} {_mam(summary.off_waiting):>24}"
        )
        lines.append(
            f"{disk:<10} {'On':<7} {_mam(summary.on_seek):>24} "
            f"{_mam(summary.on_service):>24} {_mam(summary.on_waiting):>24}"
        )
        lines.append(
            f"{'':<10} {'':<7} seek {-summary.seek_reduction:+.0%}  "
            f"service {-summary.service_reduction:+.0%}  "
            f"waiting {-summary.waiting_reduction:+.0%}"
        )
    return "\n".join(lines)


DETAIL_ROWS = (
    ("FCFS Mean Seek Dist (cyln)", "fcfs_mean_seek_distance", 0),
    ("Mean Seek Distance (cyln)", "mean_seek_distance", 0),
    ("Zero-length Seeks (%)", "zero_seek_percent", 0),
    ("FCFS Mean Seek Time (ms)", "fcfs_mean_seek_time_ms", 2),
    ("Mean Seek Time (ms)", "mean_seek_time_ms", 2),
    ("Mean Service Time (ms)", "mean_service_ms", 2),
    ("Mean Waiting Time (ms)", "mean_waiting_ms", 2),
)


def render_detail_table(
    columns: Sequence[tuple[str, ScopeMetrics]],
    title: str,
) -> str:
    """Render a Table 3/8/9-style detail table.

    ``columns`` are ``(column label, metrics)`` pairs, e.g. ("Day 1 Off",
    off-day all-requests metrics).
    """
    label_width = max(len(label) for label, *__ in DETAIL_ROWS) + 2
    header = " " * label_width + "".join(
        f"{label:>14}" for label, __ in columns
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row_label, attr, digits in DETAIL_ROWS:
        cells = []
        for __, metrics in columns:
            cells.append(f"{getattr(metrics, attr):>14.{digits}f}")
        lines.append(f"{row_label:<{label_width}}" + "".join(cells))
    return "\n".join(lines)


def render_policy_table(
    rows: Sequence[tuple[str, dict[str, float], dict[str, float]]],
    title: str,
) -> str:
    """Render Table 7: % seek-time reduction per placement policy.

    ``rows`` are ``(disk, {policy: reduction for all requests},
    {policy: reduction for reads})``; reductions are fractions.
    """
    policies = ("organ-pipe", "interleaved", "serial")
    header = (
        f"{'Disk':<10}"
        + "".join(f"{p + ' (all)':>20}" for p in policies)
        + "".join(f"{p + ' (reads)':>20}" for p in policies)
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for disk, all_red, read_red in rows:
        cells = [f"{100 * all_red[p]:>20.0f}" for p in policies]
        cells += [f"{100 * read_red[p]:>20.0f}" for p in policies]
        lines.append(f"{disk:<10}" + "".join(cells))
    return "\n".join(lines)


def render_service_cdf(
    series: Sequence[tuple[str, TimeHistogram]],
    title: str,
    points_ms: Sequence[float] = (5, 10, 15, 20, 25, 30, 40, 50, 75, 100),
    bar_width: int = 0,
) -> str:
    """Render Figure 4/6-style service-time CDFs as a table of points.

    With ``bar_width > 0`` each series also gets an ASCII bar column so
    the curve shape is visible directly in a terminal.
    """
    header = f"{'<= ms':>8}" + "".join(
        f"{name:>16}" + (" " * (bar_width + 1) if bar_width else "")
        for name, __ in series
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for threshold in points_ms:
        row = [f"{threshold:>8.0f}"]
        for __, hist in series:
            fraction = hist.fraction_below(threshold)
            row.append(f"{100 * fraction:>15.1f}%")
            if bar_width:
                row.append(" " + ascii_bar(fraction, bar_width))
        lines.append("".join(row))
    return "\n".join(lines)


def ascii_bar(fraction: float, width: int = 40) -> str:
    """A fixed-width horizontal bar for a value in [0, 1]."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def render_access_distribution(
    series: Sequence[tuple[str, Sequence[int]]],
    title: str,
    ranks: Sequence[int] = (1, 10, 50, 100, 500, 1000, 2000),
) -> str:
    """Render Figure 5/7-style block-access distributions.

    ``series`` maps a label to reference counts sorted descending; the
    rendering reports the count at selected ranks plus the cumulative share
    of requests absorbed by the top-``rank`` blocks.
    """
    lines = [title]
    for name, counts in series:
        total = sum(counts) or 1
        lines.append(f"-- {name} ({len(counts)} referenced blocks, "
                     f"{total} requests)")
        lines.append(f"{'rank':>8} {'count':>10} {'cum share':>10}")
        cumulative = 0
        rank_set = sorted(r for r in ranks if r <= len(counts))
        next_idx = 0
        for i, count in enumerate(counts, start=1):
            cumulative += count
            if next_idx < len(rank_set) and i == rank_set[next_idx]:
                lines.append(
                    f"{i:>8} {count:>10} {cumulative / total:>9.1%}"
                )
                next_idx += 1
        lines.append("")
    return "\n".join(lines)


def render_sweep(
    points: Sequence[tuple[int, float, float]],
    title: str,
) -> str:
    """Render Figure 8: reduction vs number of rearranged blocks.

    ``points`` are ``(blocks rearranged, seek distance reduction,
    seek time reduction)`` with reductions as fractions.
    """
    header = f"{'blocks':>8} {'dist reduction':>16} {'time reduction':>16}"
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for blocks, dist_red, time_red in points:
        lines.append(
            f"{blocks:>8} {100 * dist_red:>15.1f}% {100 * time_red:>15.1f}%"
        )
    return "\n".join(lines)


def coverage_note(covered: int, total: int, what: str = "shard") -> str:
    """Annotation for statistics computed over a partial population.

    Degraded fleet runs tag their percentile lines with this so a
    partial p99 is never mistaken for the fleet-wide one, e.g.
    ``[degraded: covers 14/16 shards]``.  Empty when coverage is total.
    """
    if covered >= total:
        return ""
    return f"[degraded: covers {covered}/{total} {what}s]"


def render_day(metrics: DayMetrics, disk_name: str = "") -> str:
    """One-line daily summary, for campaign progress output.

    Error and retry counts appear only on days that had any, so
    fault-free campaign output is unchanged by the fault subsystem.
    """
    m = metrics.all
    flag = "on " if metrics.rearranged else "off"
    line = (
        f"day {metrics.day:>2} [{flag}] {disk_name:<8} "
        f"reqs={m.requests:>6} seek={m.mean_seek_time_ms:6.2f}ms "
        f"service={m.mean_service_ms:6.2f}ms wait={m.mean_waiting_ms:7.2f}ms "
        f"zero-seeks={m.zero_seek_percent:4.0f}%"
    )
    if m.errors or m.retries:
        line += f" errors={m.errors} retries={m.retries}"
    return line
