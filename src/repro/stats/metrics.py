"""Per-day metrics in the paper's vocabulary.

Each experimental day yields, per request class (all/read/write):

* mean seek **distance** in scheduled order and in arrival order (the FCFS
  counterfactual over original block positions — Table 3's "FCFS Mean Seek
  Dist"),
* mean seek **time**, computed by pushing the seek-distance histograms
  through the drive's seek-time function — the paper's stated methodology
  ("these were computed using the measured seek distance distribution and
  the seek time functions", Section 5.2),
* the zero-length-seek percentage,
* measured mean service and waiting (queueing) times, and rotation/transfer
  components (used for Table 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..disk.seek import SeekModel
from .histogram import TimeHistogram

if TYPE_CHECKING:  # avoid a circular import with repro.driver.monitor
    from ..driver.monitor import ClassStats

SCOPES = ("all", "read", "write")


@dataclass(frozen=True)
class ScopeMetrics:
    """One request class's metrics for one day."""

    requests: int
    mean_seek_distance: float
    fcfs_mean_seek_distance: float
    zero_seek_fraction: float
    mean_seek_time_ms: float
    fcfs_mean_seek_time_ms: float
    mean_service_ms: float
    mean_waiting_ms: float
    mean_rotation_ms: float
    mean_transfer_ms: float
    buffer_hits: int
    errors: int = 0
    """Injected device errors hit while serving this class's requests."""
    retries: int = 0
    """Bounded retry attempts issued after transient errors."""
    service_histogram: TimeHistogram = field(repr=False, hash=False, compare=False, default_factory=TimeHistogram)

    @property
    def zero_seek_percent(self) -> float:
        return 100.0 * self.zero_seek_fraction

    @property
    def mean_rotation_plus_transfer_ms(self) -> float:
        """The Table 10 quantity: rotational latency plus transfer time."""
        return self.mean_rotation_ms + self.mean_transfer_ms

    def service_percentile_ms(self, q: float) -> float:
        """Service-time percentile (1 ms resolution), e.g. q=0.5 for the
        median used to read points off the Figure 4/6 CDFs."""
        return self.service_histogram.percentile(q)

    def service_fraction_below(self, threshold_ms: float) -> float:
        """Fraction of requests completing under ``threshold_ms``."""
        return self.service_histogram.fraction_below(threshold_ms)


def scope_metrics(stats: ClassStats, seek_model: SeekModel) -> ScopeMetrics:
    """Reduce one of the driver's per-class tables to :class:`ScopeMetrics`."""
    return ScopeMetrics(
        requests=stats.requests,
        mean_seek_distance=stats.scheduled_seek.mean,
        fcfs_mean_seek_distance=stats.arrival_seek.mean,
        zero_seek_fraction=stats.scheduled_seek.zero_fraction,
        mean_seek_time_ms=seek_model.mean_time(stats.scheduled_seek.buckets),
        fcfs_mean_seek_time_ms=seek_model.mean_time(stats.arrival_seek.buckets),
        mean_service_ms=stats.service.mean_ms,
        mean_waiting_ms=stats.queueing.mean_ms,
        mean_rotation_ms=stats.rotation.mean_ms,
        mean_transfer_ms=stats.transfer.mean_ms,
        buffer_hits=stats.buffer_hits,
        errors=stats.errors,
        retries=stats.retries,
        service_histogram=stats.service,
    )


@dataclass(frozen=True)
class DayMetrics:
    """All request classes' metrics for one experimental day."""

    day: int
    rearranged: bool
    scopes: dict[str, ScopeMetrics]

    @property
    def all(self) -> ScopeMetrics:
        return self.scopes["all"]

    @property
    def read(self) -> ScopeMetrics:
        return self.scopes["read"]

    @property
    def write(self) -> ScopeMetrics:
        return self.scopes["write"]

    @classmethod
    def from_tables(
        cls,
        tables: dict[str, ClassStats],
        seek_model: SeekModel,
        day: int = 0,
        rearranged: bool = False,
    ) -> "DayMetrics":
        scopes = {
            scope: scope_metrics(tables[scope], seek_model)
            for scope in SCOPES
        }
        return cls(day=day, rearranged=rearranged, scopes=scopes)

    @classmethod
    def from_monitor(
        cls,
        monitor,
        seek_model: SeekModel,
        day: int = 0,
        rearranged: bool = False,
    ) -> "DayMetrics":
        """Reduce a :class:`~repro.driver.monitor.PerformanceMonitor`
        (the driver's own or a tracer's shadow copy) with read-and-clear
        semantics, mirroring the ``DKIOCREADSTATS`` path."""
        return cls.from_tables(
            monitor.read_and_clear(), seek_model, day=day, rearranged=rearranged
        )


@dataclass(frozen=True)
class MinAvgMax:
    """Min/avg/max of a set of daily means — the Tables 2/4/5/6 row shape."""

    min: float
    avg: float
    max: float

    @classmethod
    def of(cls, values: list[float]) -> "MinAvgMax":
        if not values:
            raise ValueError("cannot summarize an empty list of days")
        return cls(min=min(values), avg=sum(values) / len(values), max=max(values))


@dataclass(frozen=True)
class OnOffSummary:
    """The Table 2/4/5/6 row pair: daily-mean summaries for on vs off days."""

    scope: str
    off_seek: MinAvgMax
    on_seek: MinAvgMax
    off_service: MinAvgMax
    on_service: MinAvgMax
    off_waiting: MinAvgMax
    on_waiting: MinAvgMax

    @property
    def seek_reduction(self) -> float:
        """Fractional reduction in average daily mean seek time, on vs off."""
        if self.off_seek.avg == 0:
            return 0.0
        return 1.0 - self.on_seek.avg / self.off_seek.avg

    @property
    def service_reduction(self) -> float:
        if self.off_service.avg == 0:
            return 0.0
        return 1.0 - self.on_service.avg / self.off_service.avg

    @property
    def waiting_reduction(self) -> float:
        if self.off_waiting.avg == 0:
            return 0.0
        return 1.0 - self.on_waiting.avg / self.off_waiting.avg


def summarize_on_off(
    days: list[DayMetrics], scope: str = "all"
) -> OnOffSummary:
    """Fold a campaign's daily metrics into the paper's on/off summary."""
    on = [day.scopes[scope] for day in days if day.rearranged]
    off = [day.scopes[scope] for day in days if not day.rearranged]
    if not on or not off:
        raise ValueError("need at least one on day and one off day")
    return OnOffSummary(
        scope=scope,
        off_seek=MinAvgMax.of([m.mean_seek_time_ms for m in off]),
        on_seek=MinAvgMax.of([m.mean_seek_time_ms for m in on]),
        off_service=MinAvgMax.of([m.mean_service_ms for m in off]),
        on_service=MinAvgMax.of([m.mean_service_ms for m in on]),
        off_waiting=MinAvgMax.of([m.mean_waiting_ms for m in off]),
        on_waiting=MinAvgMax.of([m.mean_waiting_ms for m in on]),
    )


def seek_time_reduction_vs_fcfs(metrics: ScopeMetrics) -> float:
    """Table 7's quantity: % reduction in mean seek time relative to the
    seek time that would have been observed serving requests in arrival
    order with no rearrangement."""
    if metrics.fcfs_mean_seek_time_ms == 0:
        return 0.0
    return 1.0 - metrics.mean_seek_time_ms / metrics.fcfs_mean_seek_time_ms
