"""Measurement: histograms, per-day metrics, and paper-style reports."""

from .histogram import DistanceHistogram, TimeHistogram
from .metrics import (
    DayMetrics,
    MinAvgMax,
    OnOffSummary,
    SCOPES,
    ScopeMetrics,
    scope_metrics,
    seek_time_reduction_vs_fcfs,
    summarize_on_off,
)
from .report import (
    render_access_distribution,
    render_day,
    render_detail_table,
    render_onoff_table,
    render_policy_table,
    render_service_cdf,
    render_sweep,
)

__all__ = [
    "DayMetrics",
    "DistanceHistogram",
    "MinAvgMax",
    "OnOffSummary",
    "SCOPES",
    "ScopeMetrics",
    "TimeHistogram",
    "render_access_distribution",
    "render_day",
    "render_detail_table",
    "render_onoff_table",
    "render_policy_table",
    "render_service_cdf",
    "render_sweep",
    "scope_metrics",
    "seek_time_reduction_vs_fcfs",
    "summarize_on_off",
]
