"""Measurement: histograms, per-day metrics, and paper-style reports."""

from .histogram import DistanceHistogram, TimeHistogram
from .metrics import (
    DayMetrics,
    MinAvgMax,
    OnOffSummary,
    SCOPES,
    ScopeMetrics,
    scope_metrics,
    seek_time_reduction_vs_fcfs,
    summarize_on_off,
)
from .report import (
    render_access_distribution,
    render_day,
    render_detail_table,
    render_onoff_table,
    render_policy_table,
    render_service_cdf,
    render_sweep,
)
from .streaming import LogHistogram, merge_histograms

__all__ = [
    "DayMetrics",
    "DistanceHistogram",
    "LogHistogram",
    "MinAvgMax",
    "OnOffSummary",
    "SCOPES",
    "ScopeMetrics",
    "TimeHistogram",
    "merge_histograms",
    "render_access_distribution",
    "render_day",
    "render_detail_table",
    "render_onoff_table",
    "render_policy_table",
    "render_service_cdf",
    "render_sweep",
    "scope_metrics",
    "seek_time_reduction_vs_fcfs",
    "summarize_on_off",
]
