"""Device-driver substrate: the paper's modified SCSI disk driver.

Implements the strategy path (label mapping, block-table redirection, SCAN
queueing), the block-movement ioctls (``DKIOCBCOPY``/``DKIOCCLEAN``), the
request and performance monitoring tables, and the raw-interface request
splitting — Section 4.1 of the paper, in simulation form.
"""

from .blocktable import BlockTable, BlockTableEntry
from .driver import AdaptiveDiskDriver, RearrangementIOCounter
from .errors import (
    BadAddressError,
    BusyError,
    DeviceTimeout,
    DriverError,
    MediaError,
)
from .ftl import (
    FLASH_MODELS,
    GC_POLICIES,
    FlashGeometry,
    FtlDriver,
    FtlStats,
    flash_model,
)
from .ioctl import IoctlCommand, IoctlInterface, ReservedAreaInfo
from .monitor import (
    ClassStats,
    FaultStats,
    PerformanceMonitor,
    RequestMonitor,
    RequestRecord,
)
from .physio import physio, split_raw_request
from .protocol import DeviceDriver
from .queue import (
    QUEUE_POLICIES,
    CScanQueue,
    DiskQueue,
    FCFSQueue,
    SSTFQueue,
    ScanQueue,
    make_queue,
)
from .request import DiskRequest, Op, read_request, write_request

__all__ = [
    "AdaptiveDiskDriver",
    "BadAddressError",
    "BlockTable",
    "BlockTableEntry",
    "BusyError",
    "CScanQueue",
    "ClassStats",
    "DeviceDriver",
    "DeviceTimeout",
    "DiskQueue",
    "DiskRequest",
    "DriverError",
    "FCFSQueue",
    "FLASH_MODELS",
    "FaultStats",
    "FlashGeometry",
    "FtlDriver",
    "FtlStats",
    "GC_POLICIES",
    "MediaError",
    "IoctlCommand",
    "IoctlInterface",
    "Op",
    "PerformanceMonitor",
    "QUEUE_POLICIES",
    "RearrangementIOCounter",
    "RequestMonitor",
    "RequestRecord",
    "ReservedAreaInfo",
    "SSTFQueue",
    "ScanQueue",
    "flash_model",
    "make_queue",
    "physio",
    "read_request",
    "split_raw_request",
    "write_request",
]
