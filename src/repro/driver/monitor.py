"""Request monitoring and performance monitoring (Sections 4.1.4, 4.1.5).

Two independent facilities, both modelled on the paper's driver tables:

* :class:`RequestMonitor` — a small bounded table recording (block number,
  size, op) for each arriving request.  A user-level process (the reference
  stream analyzer) periodically reads and clears it; if it fills before
  being cleared, recording is *suspended* (requests are silently dropped
  from the record, never from service).

* :class:`PerformanceMonitor` — seek-distance distributions in arrival
  order (the FCFS counterfactual) and in scheduled order, plus service-time
  and queueing-time distributions, all kept separately for reads, writes
  and the combined stream.  Arrival-order distances are computed over the
  *home* (original, un-rearranged) cylinders so that on rearranged days the
  counterfactual still reflects "no block rearrangement" (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..stats.histogram import DistanceHistogram, TimeHistogram
from .request import DiskRequest


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """One row of the driver's request table."""

    logical_block: int
    size_blocks: int
    is_read: bool
    arrival_ms: float


@dataclass
class RequestMonitor:
    """Bounded in-driver request table with read-and-clear semantics."""

    capacity: int = 8192
    enabled: bool = True
    suspended_count: int = 0
    recorded_count: int = 0
    _table: list[RequestRecord] = field(default_factory=list)

    def record(self, request: DiskRequest) -> None:
        """Record an arriving request, or count a suspension if full."""
        if not self.enabled:
            return
        if len(self._table) >= self.capacity:
            self.suspended_count += 1
            return
        self._table.append(
            RequestRecord(
                logical_block=request.logical_block,
                size_blocks=request.size_blocks,
                is_read=request.is_read,
                arrival_ms=request.arrival_ms,
            )
        )
        self.recorded_count += 1

    def read_and_clear(self) -> list[RequestRecord]:
        """The ioctl used by the reference stream analyzer (Section 4.1.4)."""
        records = self._table
        self._table = []
        return records

    def __len__(self) -> int:
        return len(self._table)

    @property
    def is_full(self) -> bool:
        return len(self._table) >= self.capacity


@dataclass
class ClassStats:
    """Per-class (read/write/all) statistics tables."""

    arrival_seek: DistanceHistogram = field(default_factory=DistanceHistogram)
    scheduled_seek: DistanceHistogram = field(default_factory=DistanceHistogram)
    service: TimeHistogram = field(default_factory=TimeHistogram)
    queueing: TimeHistogram = field(default_factory=TimeHistogram)
    rotation: TimeHistogram = field(default_factory=TimeHistogram)
    transfer: TimeHistogram = field(default_factory=TimeHistogram)
    requests: int = 0
    buffer_hits: int = 0
    errors: int = 0
    """Injected device errors (transient or media) hit while serving."""
    retries: int = 0
    """Bounded retry attempts issued after transient errors."""


@dataclass
class FaultStats:
    """Driver-level fault and recovery accounting (one per device).

    Cumulative counters, plus a day window (``day_requests`` /
    ``day_errors``) with read-and-reset semantics used by the
    rearrangement controller's health check.  The counters are only
    touched on fault paths, so a fault-free run never writes them.
    """

    transient_faults: int = 0
    media_faults: int = 0
    retries: int = 0
    timeouts: int = 0
    failed_requests: int = 0
    fallback_serves: int = 0
    """Redirected accesses served from the block's original home after a
    media error destroyed its reserved-area copy."""
    evictions: int = 0
    """Block-table entries dropped because their reserved slot went bad."""
    skipped_moves: int = 0
    """Nightly block moves abandoned after an unrecoverable error."""
    crashes: int = 0
    recoveries: int = 0
    day_requests: int = 0
    day_errors: int = 0

    @property
    def total_faults(self) -> int:
        return self.transient_faults + self.media_faults

    @property
    def day_error_rate(self) -> float:
        """Errors per request over the current day window."""
        if self.day_requests == 0:
            return 0.0
        return self.day_errors / self.day_requests

    def start_new_day(self) -> None:
        """Reset the day window (the controller's end-of-day read)."""
        self.day_requests = 0
        self.day_errors = 0


@dataclass
class PerformanceMonitor:
    """The driver's self-measurement tables.

    Call :meth:`note_arrival` when strategy receives a request (this feeds
    the arrival-order/FCFS seek-distance distribution) and
    :meth:`note_completion` when the disk finishes it.
    """

    _classes: dict[str, ClassStats] = field(
        default_factory=lambda: {
            "all": ClassStats(),
            "read": ClassStats(),
            "write": ClassStats(),
        }
    )
    _last_arrival_cylinder: dict[str, int | None] = field(
        default_factory=lambda: {"all": None, "read": None, "write": None}
    )

    def __post_init__(self) -> None:
        self._bind_scopes()

    def _bind_scopes(self) -> None:
        """Prebind the (scope, stats) pairs touched per request.

        Every note_* call updates "all" plus the direction scope; binding
        the pairs once replaces two dict lookups and a tuple build per
        call with a single dict index on ``is_read``.  Rebound whenever
        the tables are replaced (:meth:`read_and_clear`).
        """
        classes = self._classes
        self._scope_pairs = {
            True: (("all", classes["all"]), ("read", classes["read"])),
            False: (("all", classes["all"]), ("write", classes["write"])),
        }

    def _scopes(self, is_read: bool) -> tuple[str, str]:
        return ("all", "read" if is_read else "write")

    def note_arrival(self, request: DiskRequest) -> None:
        home = request.home_cylinder
        if home is None:
            raise ValueError("request has no home cylinder; map it first")
        last_by_scope = self._last_arrival_cylinder
        for scope, stats in self._scope_pairs[request.is_read]:
            last = last_by_scope[scope]
            if last is not None:
                stats.arrival_seek.record(abs(home - last))
            last_by_scope[scope] = home
            stats.requests += 1

    def note_completion(self, request: DiskRequest) -> None:
        if request.seek_distance is None:
            raise ValueError("request has no service breakdown")
        for __, stats in self._scope_pairs[request.is_read]:
            stats.scheduled_seek.record(request.seek_distance)
            stats.service.record(request.service_ms)
            stats.queueing.record(request.queueing_ms)
            if request.rotation_ms is not None:
                stats.rotation.record(request.rotation_ms)
            if request.transfer_ms is not None:
                stats.transfer.record(request.transfer_ms)
            if request.buffer_hit:
                stats.buffer_hits += 1

    def note_fault(self, is_read: bool) -> None:
        """Count one injected device error against the request classes."""
        for __, stats in self._scope_pairs[is_read]:
            stats.errors += 1

    def note_retry(self, is_read: bool) -> None:
        """Count one bounded retry attempt against the request classes."""
        for __, stats in self._scope_pairs[is_read]:
            stats.retries += 1

    def stats(self, scope: str = "all") -> ClassStats:
        """Statistics for ``"all"``, ``"read"`` or ``"write"`` requests."""
        try:
            return self._classes[scope]
        except KeyError:
            raise KeyError(
                f"unknown scope {scope!r}; use 'all', 'read' or 'write'"
            ) from None

    def read_and_clear(self) -> dict[str, ClassStats]:
        """The ioctl semantics: return the tables and reset them."""
        tables = self._classes
        self._classes = {
            "all": ClassStats(),
            "read": ClassStats(),
            "write": ClassStats(),
        }
        self._last_arrival_cylinder = {"all": None, "read": None, "write": None}
        self._bind_scopes()
        return tables
