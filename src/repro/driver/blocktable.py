"""The block table: redirection map for rearranged blocks.

Section 4.1.2: when a block is copied into the reserved space, its old and
new physical addresses are entered into the block table; the strategy
routine consults the table on every request.  A copy of the table is stored
at the beginning of the reserved area for start-up and recovery.  The disk
copy always correctly lists the rearranged blocks and their reserved-area
positions, but its *dirty bits* may be stale — so after a crash every entry
is conservatively marked dirty, ensuring updates to repositioned blocks are
never lost.

This module models both the in-memory table and its on-disk copy; writing
the disk copy is an explicit step (:meth:`BlockTable.write_to_disk`) so the
crash-recovery semantics can be exercised by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BlockTableEntry:
    """One rearranged block: original home, reserved-area copy, dirty bit."""

    original_block: int
    reserved_block: int
    dirty: bool = False


@dataclass
class BlockTable:
    """In-memory block table plus its on-disk shadow.

    ``capacity`` bounds the number of entries (the reserved area's data
    capacity); ``None`` means unbounded.
    """

    capacity: int | None = None
    _by_original: dict[int, BlockTableEntry] = field(default_factory=dict)
    _by_reserved: dict[int, int] = field(default_factory=dict)
    _disk_copy: dict[int, tuple[int, bool]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # In-memory operations
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_original)

    def __contains__(self, original_block: int) -> bool:
        return original_block in self._by_original

    def lookup(self, original_block: int) -> BlockTableEntry | None:
        """Entry for ``original_block``, or None if it is not rearranged."""
        return self._by_original.get(original_block)

    def original_of(self, reserved_block: int) -> int | None:
        """Original home of the block stored at ``reserved_block``."""
        return self._by_reserved.get(reserved_block)

    def add(self, original_block: int, reserved_block: int) -> BlockTableEntry:
        """Register a block just copied into the reserved area (clean)."""
        if original_block in self._by_original:
            raise ValueError(f"block {original_block} is already rearranged")
        if reserved_block in self._by_reserved:
            raise ValueError(
                f"reserved block {reserved_block} is already occupied"
            )
        if self.capacity is not None and len(self) >= self.capacity:
            raise ValueError("block table is full")
        entry = BlockTableEntry(original_block, reserved_block)
        self._by_original[original_block] = entry
        self._by_reserved[reserved_block] = original_block
        return entry

    def remove(self, original_block: int) -> BlockTableEntry:
        """Drop the entry for a block moved back to its original home."""
        try:
            entry = self._by_original.pop(original_block)
        except KeyError:
            raise KeyError(
                f"block {original_block} is not in the block table"
            ) from None
        del self._by_reserved[entry.reserved_block]
        return entry

    def mark_dirty(self, original_block: int) -> None:
        """Record that the reserved-area copy has been updated."""
        entry = self._by_original.get(original_block)
        if entry is None:
            raise KeyError(f"block {original_block} is not in the block table")
        entry.dirty = True

    def entries(self) -> list[BlockTableEntry]:
        """All entries, in insertion order."""
        return list(self._by_original.values())

    def dirty_entries(self) -> list[BlockTableEntry]:
        return [entry for entry in self._by_original.values() if entry.dirty]

    def occupied_reserved_blocks(self) -> set[int]:
        return set(self._by_reserved)

    def clear(self) -> None:
        self._by_original.clear()
        self._by_reserved.clear()

    # ------------------------------------------------------------------
    # On-disk copy and crash recovery
    # ------------------------------------------------------------------

    def write_to_disk(self) -> None:
        """Flush the current table to its reserved-area disk copy.

        The driver forces this after every ``DKIOCBCOPY`` and after each
        block is moved out during ``DKIOCCLEAN`` (Section 4.1.3).
        """
        self._disk_copy = {
            entry.original_block: (entry.reserved_block, entry.dirty)
            for entry in self._by_original.values()
        }

    def disk_copy(self) -> dict[int, tuple[int, bool]]:
        """A snapshot view of the on-disk table (for tests/inspection)."""
        return dict(self._disk_copy)

    def crash(self) -> None:
        """Simulate a system crash: the in-memory table is lost."""
        self._by_original.clear()
        self._by_reserved.clear()

    def recover(self) -> None:
        """Rebuild the in-memory table from the disk copy after a crash.

        All entries are marked dirty regardless of their stored bits: "all
        blocks are marked as dirty when memory-resident copy of the table is
        recreated after a failure.  This conservative strategy ensures that
        updates to repositioned blocks will not be lost" (Section 4.1.2).
        """
        self._by_original.clear()
        self._by_reserved.clear()
        for original, (reserved, __) in self._disk_copy.items():
            entry = BlockTableEntry(original, reserved, dirty=True)
            self._by_original[original] = entry
            self._by_reserved[reserved] = original
