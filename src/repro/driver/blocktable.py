"""The block table: redirection map for rearranged blocks.

Section 4.1.2: when a block is copied into the reserved space, its old and
new physical addresses are entered into the block table; the strategy
routine consults the table on every request.  A copy of the table is stored
at the beginning of the reserved area for start-up and recovery.  The disk
copy always correctly lists the rearranged blocks and their reserved-area
positions, but its *dirty bits* may be stale — so after a crash every entry
is conservatively marked dirty, ensuring updates to repositioned blocks are
never lost.

This module models both the in-memory table and its on-disk copy; writing
the disk copy is an explicit step (:meth:`BlockTable.write_to_disk`) so the
crash-recovery semantics can be exercised by tests.

Two implementations share the same contract:

* :class:`BlockTable` — the default, array-backed.  The forward map
  (original physical block → reserved block) and the reverse map are flat
  ``array('i')`` vectors indexed by block number with ``-1`` meaning
  "absent", so the per-request lookup is a bounds check plus one array
  index and the per-entry footprint is a few bytes instead of a dict slot
  plus a boxed entry object.  Entry metadata that is genuinely per-entry
  (insertion order, the disk-copy shadow) stays in small dicts bounded by
  the number of *rearranged* blocks, never by the size of the disk.
* :class:`DictBlockTable` — the original dict-of-entries implementation,
  kept as the executable specification.  The equivalence test in
  ``tests/test_blocktable.py`` drives both through randomized
  add/remove/dirty/flush/crash/recover interleavings and requires
  identical observable state after every step.

Because the driver rewrites the on-disk copy after *every* block move, a
full O(entries) snapshot per flush would make the nightly cycle quadratic
in the number of moved blocks.  :class:`BlockTable` instead tracks the
blocks whose state changed since the last flush and folds only those into
the shadow, reproducing the snapshot semantics (including dict insertion
order, which fixes the move-out order after a crash recovery) at
O(changes) per flush.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

_ABSENT = -1


@dataclass
class BlockTableEntry:
    """One rearranged block: original home, reserved-area copy, dirty bit."""

    original_block: int
    reserved_block: int
    dirty: bool = False


class BlockTable:
    """In-memory block table plus its on-disk shadow (array-backed).

    ``capacity`` bounds the number of entries (the reserved area's data
    capacity); ``None`` means unbounded.  The address-space arrays grow on
    demand; callers that know the device size can :meth:`reserve` it up
    front to avoid incremental growth.

    :meth:`entries` and :meth:`lookup` materialize fresh
    :class:`BlockTableEntry` snapshots — mutating a returned entry does
    not write through to the table.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = capacity
        self._forward = array("i")  # original block -> reserved block
        self._reverse = array("i")  # reserved block -> original block
        self._dirty = bytearray()  # indexed by original block
        # Insertion-ordered original -> sequence number; bounded by the
        # number of rearranged blocks (the reserved area's capacity).
        self._order: dict[int, int] = {}
        self._next_seq = 0
        # On-disk shadow, in the order a full snapshot would produce,
        # plus the sequence number each key was last written with and the
        # set of blocks whose memory state changed since the last flush.
        self._disk_map: dict[int, tuple[int, bool]] = {}
        self._disk_seq: dict[int, int] = {}
        self._unflushed: set[int] = set()

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------

    def reserve(self, num_blocks: int) -> None:
        """Pre-size both address-space arrays for a ``num_blocks`` device."""
        if num_blocks > 0:
            self._ensure(self._forward, num_blocks - 1)
            self._ensure(self._reverse, num_blocks - 1)
            if len(self._dirty) < num_blocks:
                self._dirty.extend(b"\x00" * (num_blocks - len(self._dirty)))

    @staticmethod
    def _ensure(vector: array, index: int) -> None:
        if index >= len(vector):
            vector.extend([_ABSENT] * (index + 1 - len(vector)))

    # ------------------------------------------------------------------
    # In-memory operations
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, original_block: int) -> bool:
        forward = self._forward
        return (
            0 <= original_block < len(forward)
            and forward[original_block] != _ABSENT
        )

    def reserved_of(self, original_block: int) -> int:
        """Reserved-area home of ``original_block``, or ``-1`` (hot path)."""
        forward = self._forward
        if 0 <= original_block < len(forward):
            return forward[original_block]
        return _ABSENT

    def lookup(self, original_block: int) -> BlockTableEntry | None:
        """Entry for ``original_block``, or None if it is not rearranged."""
        reserved = self.reserved_of(original_block)
        if reserved == _ABSENT:
            return None
        return BlockTableEntry(
            original_block, reserved, bool(self._dirty[original_block])
        )

    def original_of(self, reserved_block: int) -> int | None:
        """Original home of the block stored at ``reserved_block``."""
        reverse = self._reverse
        if 0 <= reserved_block < len(reverse):
            original = reverse[reserved_block]
            if original != _ABSENT:
                return original
        return None

    def add(self, original_block: int, reserved_block: int) -> BlockTableEntry:
        """Register a block just copied into the reserved area (clean)."""
        if original_block < 0 or reserved_block < 0:
            raise ValueError("block numbers must be non-negative")
        if original_block in self:
            raise ValueError(f"block {original_block} is already rearranged")
        if self.original_of(reserved_block) is not None:
            raise ValueError(
                f"reserved block {reserved_block} is already occupied"
            )
        if self.capacity is not None and len(self) >= self.capacity:
            raise ValueError("block table is full")
        self._ensure(self._forward, original_block)
        self._ensure(self._reverse, reserved_block)
        if original_block >= len(self._dirty):
            self._dirty.extend(
                b"\x00" * (original_block + 1 - len(self._dirty))
            )
        self._forward[original_block] = reserved_block
        self._reverse[reserved_block] = original_block
        self._dirty[original_block] = 0
        self._order[original_block] = self._next_seq
        self._next_seq += 1
        self._unflushed.add(original_block)
        return BlockTableEntry(original_block, reserved_block)

    def remove(self, original_block: int) -> BlockTableEntry:
        """Drop the entry for a block moved back to its original home."""
        reserved = self.reserved_of(original_block)
        if reserved == _ABSENT:
            raise KeyError(
                f"block {original_block} is not in the block table"
            )
        entry = BlockTableEntry(
            original_block, reserved, bool(self._dirty[original_block])
        )
        self._forward[original_block] = _ABSENT
        self._reverse[reserved] = _ABSENT
        self._dirty[original_block] = 0
        del self._order[original_block]
        self._unflushed.add(original_block)
        return entry

    def mark_dirty(self, original_block: int) -> None:
        """Record that the reserved-area copy has been updated."""
        if original_block not in self:
            raise KeyError(f"block {original_block} is not in the block table")
        self._dirty[original_block] = 1
        self._unflushed.add(original_block)

    def entries(self) -> list[BlockTableEntry]:
        """All entries, in insertion order (fresh snapshot objects)."""
        forward = self._forward
        dirty = self._dirty
        return [
            BlockTableEntry(block, forward[block], bool(dirty[block]))
            for block in self._order
        ]

    def dirty_entries(self) -> list[BlockTableEntry]:
        forward = self._forward
        dirty = self._dirty
        return [
            BlockTableEntry(block, forward[block], True)
            for block in self._order
            if dirty[block]
        ]

    def occupied_reserved_blocks(self) -> set[int]:
        forward = self._forward
        return {forward[block] for block in self._order}

    def clear(self) -> None:
        self._drop_memory()

    def _drop_memory(self) -> None:
        forward = self._forward
        reverse = self._reverse
        dirty = self._dirty
        for block in self._order:
            reverse[forward[block]] = _ABSENT
            forward[block] = _ABSENT
            dirty[block] = 0
            self._unflushed.add(block)
        self._order.clear()

    # ------------------------------------------------------------------
    # On-disk copy and crash recovery
    # ------------------------------------------------------------------

    def write_to_disk(self) -> None:
        """Flush the current table to its reserved-area disk copy.

        The driver forces this after every ``DKIOCBCOPY`` and after each
        block is moved out during ``DKIOCCLEAN`` (Section 4.1.3).  Only
        the blocks whose state changed since the last flush are folded in;
        the result — contents *and* iteration order — is identical to a
        full snapshot of the in-memory table.
        """
        if not self._unflushed:
            return
        order = self._order
        disk_map = self._disk_map
        disk_seq = self._disk_seq
        present: list[int] = []
        for block in self._unflushed:
            if block in order:
                present.append(block)
            else:
                disk_map.pop(block, None)
                disk_seq.pop(block, None)
        # Blocks (re)added since their last write must land at the end of
        # the shadow in insertion order; ascending sequence number is
        # exactly that order.  Blocks only re-dirtied update in place.
        present.sort(key=order.__getitem__)
        forward = self._forward
        dirty = self._dirty
        for block in present:
            seq = order[block]
            value = (forward[block], bool(dirty[block]))
            if disk_seq.get(block) == seq:
                disk_map[block] = value
            else:
                disk_map.pop(block, None)
                disk_map[block] = value
                disk_seq[block] = seq
        self._unflushed.clear()

    def disk_copy(self) -> dict[int, tuple[int, bool]]:
        """A snapshot view of the on-disk table (for tests/inspection)."""
        return dict(self._disk_map)

    def crash(self) -> None:
        """Simulate a system crash: the in-memory table is lost."""
        self._drop_memory()

    def recover(self) -> None:
        """Rebuild the in-memory table from the disk copy after a crash.

        All entries are marked dirty regardless of their stored bits: "all
        blocks are marked as dirty when memory-resident copy of the table is
        recreated after a failure.  This conservative strategy ensures that
        updates to repositioned blocks will not be lost" (Section 4.1.2).
        """
        self._drop_memory()
        self._unflushed.clear()
        for original, (reserved, __) in self._disk_map.items():
            self._ensure(self._forward, original)
            self._ensure(self._reverse, reserved)
            if original >= len(self._dirty):
                self._dirty.extend(
                    b"\x00" * (original + 1 - len(self._dirty))
                )
            self._forward[original] = reserved
            self._reverse[reserved] = original
            self._dirty[original] = 1
            seq = self._next_seq
            self._next_seq += 1
            self._order[original] = seq
            # Re-align the shadow's sequence numbers so the next flush
            # updates dirty bits in place without reordering.
            self._disk_seq[original] = seq
            self._unflushed.add(original)


@dataclass
class DictBlockTable:
    """The original dict-of-entries block table (reference implementation).

    Semantically identical to :class:`BlockTable`; kept as the executable
    specification for the equivalence tests.  Unlike the array-backed
    table, :meth:`entries`/:meth:`lookup` return the *live* entry objects.
    """

    capacity: int | None = None
    _by_original: dict[int, BlockTableEntry] = field(default_factory=dict)
    _by_reserved: dict[int, int] = field(default_factory=dict)
    _disk_copy: dict[int, tuple[int, bool]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # In-memory operations
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_original)

    def __contains__(self, original_block: int) -> bool:
        return original_block in self._by_original

    def reserved_of(self, original_block: int) -> int:
        entry = self._by_original.get(original_block)
        return _ABSENT if entry is None else entry.reserved_block

    def lookup(self, original_block: int) -> BlockTableEntry | None:
        """Entry for ``original_block``, or None if it is not rearranged."""
        return self._by_original.get(original_block)

    def original_of(self, reserved_block: int) -> int | None:
        """Original home of the block stored at ``reserved_block``."""
        return self._by_reserved.get(reserved_block)

    def add(self, original_block: int, reserved_block: int) -> BlockTableEntry:
        """Register a block just copied into the reserved area (clean)."""
        if original_block in self._by_original:
            raise ValueError(f"block {original_block} is already rearranged")
        if reserved_block in self._by_reserved:
            raise ValueError(
                f"reserved block {reserved_block} is already occupied"
            )
        if self.capacity is not None and len(self) >= self.capacity:
            raise ValueError("block table is full")
        entry = BlockTableEntry(original_block, reserved_block)
        self._by_original[original_block] = entry
        self._by_reserved[reserved_block] = original_block
        return entry

    def remove(self, original_block: int) -> BlockTableEntry:
        """Drop the entry for a block moved back to its original home."""
        try:
            entry = self._by_original.pop(original_block)
        except KeyError:
            raise KeyError(
                f"block {original_block} is not in the block table"
            ) from None
        del self._by_reserved[entry.reserved_block]
        return entry

    def mark_dirty(self, original_block: int) -> None:
        """Record that the reserved-area copy has been updated."""
        entry = self._by_original.get(original_block)
        if entry is None:
            raise KeyError(f"block {original_block} is not in the block table")
        entry.dirty = True

    def entries(self) -> list[BlockTableEntry]:
        """All entries, in insertion order."""
        return list(self._by_original.values())

    def dirty_entries(self) -> list[BlockTableEntry]:
        return [entry for entry in self._by_original.values() if entry.dirty]

    def occupied_reserved_blocks(self) -> set[int]:
        return set(self._by_reserved)

    def clear(self) -> None:
        self._by_original.clear()
        self._by_reserved.clear()

    # ------------------------------------------------------------------
    # On-disk copy and crash recovery
    # ------------------------------------------------------------------

    def write_to_disk(self) -> None:
        """Flush the current table to its reserved-area disk copy."""
        self._disk_copy = {
            entry.original_block: (entry.reserved_block, entry.dirty)
            for entry in self._by_original.values()
        }

    def disk_copy(self) -> dict[int, tuple[int, bool]]:
        """A snapshot view of the on-disk table (for tests/inspection)."""
        return dict(self._disk_copy)

    def crash(self) -> None:
        """Simulate a system crash: the in-memory table is lost."""
        self._by_original.clear()
        self._by_reserved.clear()

    def recover(self) -> None:
        """Rebuild the in-memory table from the disk copy after a crash."""
        self._by_original.clear()
        self._by_reserved.clear()
        for original, (reserved, __) in self._disk_copy.items():
            entry = BlockTableEntry(original, reserved, dirty=True)
            self._by_original[original] = entry
            self._by_reserved[reserved] = original
