"""Raw (character) interface request splitting (Section 4.1.2).

Through the raw interface "it is possible that requests larger than the
block size will be forwarded to the driver.  This raises the possibility
that part of the requested data may have been rearranged and part may not.
To accommodate such requests, the driver's ``physio`` routine was modified
to break large requests into block-sized subrequests."

:func:`split_raw_request` performs exactly that decomposition; each
subrequest then takes the normal strategy path, so every block is
individually redirected (or not) through the block table.
"""

from __future__ import annotations

from .request import DiskRequest, Op


def split_raw_request(request: DiskRequest) -> list[DiskRequest]:
    """Break a raw multi-block request into block-sized subrequests.

    Subrequests share the parent's arrival time and direction and cover
    consecutive logical blocks.  A single-block request is returned as a
    one-element list (already conformant).
    """
    if request.size_blocks < 1:
        raise ValueError("raw request must cover at least one block")
    if request.size_blocks == 1:
        return [request]
    return [
        DiskRequest(
            logical_block=request.logical_block + offset,
            op=request.op,
            arrival_ms=request.arrival_ms,
            size_blocks=1,
            tag=request.tag,
        )
        for offset in range(request.size_blocks)
    ]


def physio(driver, request: DiskRequest, now_ms: float) -> list[DiskRequest]:
    """Submit a raw request: split it and run each piece through strategy.

    "The raw I/O interface works through the physio routine, which calls
    the strategy routine one or more times to satisfy a raw request"
    (Section 3.2).  Returns the submitted subrequests.  The driver/engine
    pair still controls timing; this helper only performs the submission
    (the caller is responsible for pumping the simulation, as usual).
    """
    subrequests = split_raw_request(request)
    for sub in subrequests:
        completion = driver.strategy(sub, now_ms)
        # The engine normally schedules completions; when physio is used
        # standalone (tests), drain the disk synchronously.
        while completion is not None:
            __, completion = driver.complete(completion)
    return subrequests


__all__ = ["Op", "physio", "split_raw_request"]
