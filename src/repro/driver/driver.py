"""The adaptive device driver (Section 4.1).

:class:`AdaptiveDiskDriver` is the modified SCSI driver of the paper, in
simulation form.  It owns:

* the **strategy** path — logical-to-physical mapping through the disk
  label, block-table redirection of rearranged blocks, request/performance
  monitoring, and the disk queue (SCAN by default, as in the measured
  system);
* the **block movement** entry points used by the user-level block arranger
  (``DKIOCBCOPY`` / ``DKIOCCLEAN``, Section 4.1.3), including the paper's
  exact I/O cost accounting (3 I/Os per copy-in; 1 I/O per move-out plus 2
  extra when the block is dirty);
* the **attach** semantics — on start-up a rearranged disk's block table is
  read back from the reserved area, conservatively marking every entry
  dirty after a crash.

The driver is clocked externally: the simulation engine calls
:meth:`strategy` when a request arrives and :meth:`complete` when the disk
finishes an operation; both return the completion time of any newly started
disk operation so the engine can schedule the next event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..disk.disk import Disk, ServiceBreakdown
from ..disk.label import DiskLabel
from ..obs.tracer import NULL_TRACER, Tracer
from .blocktable import BlockTable
from .monitor import PerformanceMonitor, RequestMonitor
from .queue import DiskQueue, ScanQueue
from .request import DiskRequest


class DriverError(Exception):
    """Raised on misuse of the driver (bad addresses, busy conflicts...)."""


@dataclass
class RearrangementIOCounter:
    """I/O operations spent moving blocks (Section 4.1.3 accounting)."""

    copy_in_ios: int = 0
    move_out_ios: int = 0
    table_write_ios: int = 0

    @property
    def total(self) -> int:
        return self.copy_in_ios + self.move_out_ios + self.table_write_ios


@dataclass
class AdaptiveDiskDriver:
    """The paper's modified disk driver, one instance per physical disk."""

    disk: Disk
    label: DiskLabel
    queue: DiskQueue = field(default_factory=ScanQueue)
    request_monitor: RequestMonitor = field(default_factory=RequestMonitor)
    perf_monitor: PerformanceMonitor = field(default_factory=PerformanceMonitor)
    block_table: BlockTable = field(default_factory=BlockTable)
    io_counter: RearrangementIOCounter = field(
        default_factory=RearrangementIOCounter
    )
    cylinder_map: dict[int, int] | None = None
    """Optional whole-cylinder permutation (physical -> physical), used by
    the cylinder-shuffling baseline (:mod:`repro.core.cylshuffle`).  A
    block whose home cylinder is remapped is served from the mapped
    cylinder at the same within-cylinder offset.  Applied only when the
    block table does not already redirect the block."""
    name: str = "disk0"
    """Device name; set by the simulation engine on registration and used
    to label this driver's tracer events in multi-device runs."""
    tracer: Tracer = NULL_TRACER
    """Request-lifecycle observation hooks (engine-installed by default)."""
    _current: DiskRequest | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.label.geometry is not self.disk.geometry:
            if self.label.geometry != self.disk.geometry:
                raise DriverError("label geometry does not match the disk")
        if self.label.is_rearranged and self.block_table.capacity is None:
            self.block_table.capacity = self.label.reserved_capacity_blocks()

    # ------------------------------------------------------------------
    # Attach / recovery
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Start-up: read the block table back from the reserved area.

        After a crash the in-memory table is rebuilt from the disk copy
        with every entry marked dirty (Section 4.1.2).
        """
        if self.label.is_rearranged:
            self.block_table.recover()

    # ------------------------------------------------------------------
    # Strategy path
    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._current is not None

    @property
    def current_request(self) -> DiskRequest | None:
        return self._current

    @property
    def queued(self) -> int:
        return len(self.queue)

    def strategy(self, request: DiskRequest, now_ms: float) -> float | None:
        """Accept a request; start the disk if it is idle.

        Returns the completion time of a newly started disk operation, or
        ``None`` if the disk was already busy and the request only queued.
        """
        if now_ms < request.arrival_ms:
            raise DriverError("strategy called before the request's arrival")
        if request.size_blocks != 1:
            raise DriverError(
                "strategy takes single-block requests; use physio for "
                "larger raw transfers"
            )

        physical = self.label.virtual_to_physical_block(request.logical_block)
        request.physical_block = physical
        request.home_cylinder = self.disk.geometry.cylinder_of_block(physical)

        entry = self.block_table.lookup(physical)
        if entry is not None:
            request.target_block = entry.reserved_block
            request.redirected = True
        else:
            request.target_block = self._apply_cylinder_map(physical)
            request.redirected = request.target_block != physical

        self.request_monitor.record(request)
        self.perf_monitor.note_arrival(request)

        target_cylinder = self.disk.geometry.cylinder_of_block(
            request.target_block
        )
        self.queue.push(request, target_cylinder)
        self.tracer.request_enqueued(self.name, request, now_ms, len(self.queue))
        if not self.busy:
            return self._start_next(now_ms)
        return None

    def complete(self, now_ms: float) -> tuple[DiskRequest, float | None]:
        """Finish the in-flight operation; start the next queued one.

        Returns ``(completed request, completion time of next op or None)``.
        """
        if self._current is None:
            raise DriverError("complete called with no operation in flight")
        request = self._current
        self._current = None
        request.complete_ms = now_ms
        self.perf_monitor.note_completion(request)
        self.tracer.service_complete(self.name, request, now_ms)
        next_completion = None
        if self.queue:
            next_completion = self._start_next(now_ms)
        return request, next_completion

    def _start_next(self, now_ms: float) -> float:
        request = self.queue.pop(self.disk.head_cylinder)
        assert request.target_block is not None
        breakdown = self.disk.access(
            request.target_block, request.is_read, now_ms
        )
        self._apply_breakdown(request, breakdown, now_ms)
        self.tracer.seek_started(
            self.name, request, now_ms, breakdown.seek_distance
        )
        if not request.is_read:
            self._apply_write(request)
        self._current = request
        return breakdown.finish_ms

    def _apply_breakdown(
        self,
        request: DiskRequest,
        breakdown: ServiceBreakdown,
        now_ms: float,
    ) -> None:
        request.submit_ms = now_ms
        request.seek_distance = breakdown.seek_distance
        request.seek_ms = breakdown.seek_ms
        request.rotation_ms = breakdown.rotation_ms
        request.transfer_ms = breakdown.transfer_ms
        request.buffer_hit = breakdown.buffer_hit

    def _apply_cylinder_map(self, physical_block: int) -> int:
        """Remap a block through the cylinder permutation, if one is set."""
        if self.cylinder_map is None:
            return physical_block
        per_cyl = self.disk.geometry.blocks_per_cylinder
        cylinder, index = divmod(physical_block, per_cyl)
        return self.cylinder_map.get(cylinder, cylinder) * per_cyl + index

    def _apply_write(self, request: DiskRequest) -> None:
        """Dirty-bit bookkeeping for writes to rearranged blocks."""
        if request.redirected and request.physical_block in self.block_table:
            self.block_table.mark_dirty(request.physical_block)
        if request.tag is not None:
            assert request.target_block is not None
            self.disk.write_data(request.target_block, request.tag)

    def read_data(self, logical_block: int) -> object:
        """Read the current contents of a logical block (test hook).

        Follows the same mapping as the strategy routine, so it observes
        redirection exactly as the file system would.
        """
        physical = self.label.virtual_to_physical_block(logical_block)
        entry = self.block_table.lookup(physical)
        if entry is not None:
            target = entry.reserved_block
        else:
            target = self._apply_cylinder_map(physical)
        return self.disk.read_data(target)

    # ------------------------------------------------------------------
    # Block movement (DKIOCBCOPY / DKIOCCLEAN, Section 4.1.3)
    # ------------------------------------------------------------------

    def bcopy(self, logical_block: int, reserved_block: int, now_ms: float) -> float:
        """Copy one block into the reserved area (``DKIOCBCOPY``).

        Performs three I/O operations — read the original, write the
        reserved copy, force the block table to disk — mechanically through
        the drive, and returns the time at which the copy finished.  Must
        be called while the disk is idle (the experiments rearrange at the
        end of the day, outside the measurement window).
        """
        if self.busy:
            raise DriverError("cannot move blocks while the disk is busy")
        if not self.label.is_rearranged:
            raise DriverError("disk has no reserved area")
        if not self.label.is_reserved_block(reserved_block):
            raise DriverError(
                f"destination {reserved_block} is not in the reserved area"
            )
        if reserved_block in self.label.block_table_home_blocks():
            raise DriverError(
                f"destination {reserved_block} holds the block-table copy"
            )
        physical = self.label.virtual_to_physical_block(logical_block)

        clock = now_ms
        clock = self.disk.access(physical, True, clock).finish_ms
        value = self.disk.read_data(physical)
        clock = self.disk.access(reserved_block, False, clock).finish_ms
        if value is not None:
            self.disk.write_data(reserved_block, value)
        self.io_counter.copy_in_ios += 2

        self.block_table.add(physical, reserved_block)
        clock = self._write_block_table(clock)
        return clock

    def clean(self, now_ms: float) -> float:
        """Empty the reserved area (``DKIOCCLEAN``).

        Dirty blocks are first copied back to their original positions
        (2 extra I/Os); after each block is moved out the block table is
        updated and rewritten to disk (1 I/O).  Returns the finish time.
        """
        if self.busy:
            raise DriverError("cannot move blocks while the disk is busy")
        clock = now_ms
        for entry in self.block_table.entries():
            if entry.dirty:
                clock = self.disk.access(
                    entry.reserved_block, True, clock
                ).finish_ms
                value = self.disk.read_data(entry.reserved_block)
                clock = self.disk.access(
                    entry.original_block, False, clock
                ).finish_ms
                if value is not None:
                    self.disk.write_data(entry.original_block, value)
                self.io_counter.move_out_ios += 2
            self.block_table.remove(entry.original_block)
            clock = self._write_block_table(clock)
        return clock

    def _write_block_table(self, now_ms: float) -> float:
        """Force the block-table copy in the reserved area to disk."""
        clock = now_ms
        for table_block in self.label.block_table_home_blocks():
            clock = self.disk.access(table_block, False, clock).finish_ms
        self.block_table.write_to_disk()
        self.io_counter.table_write_ios += 1
        return clock
