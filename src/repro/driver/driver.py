"""The adaptive device driver (Section 4.1).

:class:`AdaptiveDiskDriver` is the modified SCSI driver of the paper, in
simulation form.  It owns:

* the **strategy** path — logical-to-physical mapping through the disk
  label, block-table redirection of rearranged blocks, request/performance
  monitoring, and the disk queue (SCAN by default, as in the measured
  system);
* the **block movement** entry points used by the user-level block arranger
  (``DKIOCBCOPY`` / ``DKIOCCLEAN``, Section 4.1.3), including the paper's
  exact I/O cost accounting (3 I/Os per copy-in; 1 I/O per move-out plus 2
  extra when the block is dirty);
* the **attach** semantics — on start-up a rearranged disk's block table is
  read back from the reserved area, conservatively marking every entry
  dirty after a crash;
* the **error path** — when a :class:`~repro.faults.FaultInjector` is
  attached, every constituent disk access can fail: transient errors are
  retried a bounded number of times with the full mechanical cost charged
  per attempt; a permanent media error under a rearranged block's
  reserved copy falls back to serving the block from its original home
  and evicts the block-table entry; crashes interrupt the nightly cycle
  between block moves and are recovered with the paper's all-dirty
  protocol.  With no injector attached (the default) none of this costs
  anything — the hot path tests one attribute against ``None``.

The driver is clocked externally: the simulation engine calls
:meth:`strategy` when a request arrives and :meth:`complete` when the disk
finishes an operation; both return the completion time of any newly started
disk operation so the engine can schedule the next event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..disk.disk import Disk, ServiceBreakdown
from ..disk.label import DiskLabel
from ..obs.tracer import NULL_TRACER, Tracer
from .blocktable import BlockTable
from .errors import (
    BadAddressError,
    BusyError,
    DeviceTimeout,
    DriverError,
    MediaError,
)
from .monitor import FaultStats, PerformanceMonitor, RequestMonitor
from .queue import DiskQueue, ScanQueue
from .request import DiskRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector

__all__ = [
    "AdaptiveDiskDriver",
    "BadAddressError",
    "BusyError",
    "DeviceTimeout",
    "DriverError",
    "MediaError",
    "RearrangementIOCounter",
]


@dataclass
class RearrangementIOCounter:
    """I/O operations spent moving blocks (Section 4.1.3 accounting)."""

    copy_in_ios: int = 0
    move_out_ios: int = 0
    table_write_ios: int = 0

    @property
    def total(self) -> int:
        return self.copy_in_ios + self.move_out_ios + self.table_write_ios


@dataclass
class AdaptiveDiskDriver:
    """The paper's modified disk driver, one instance per physical disk."""

    disk: Disk
    label: DiskLabel
    queue: DiskQueue = field(default_factory=ScanQueue)
    request_monitor: RequestMonitor = field(default_factory=RequestMonitor)
    perf_monitor: PerformanceMonitor = field(default_factory=PerformanceMonitor)
    block_table: BlockTable = field(default_factory=BlockTable)
    io_counter: RearrangementIOCounter = field(
        default_factory=RearrangementIOCounter
    )
    cylinder_map: dict[int, int] | None = None
    """Optional whole-cylinder permutation (physical -> physical), used by
    the cylinder-shuffling baseline (:mod:`repro.core.cylshuffle`).  A
    block whose home cylinder is remapped is served from the mapped
    cylinder at the same within-cylinder offset.  Applied only when the
    block table does not already redirect the block."""
    name: str = "disk0"
    """Device name; set by the simulation engine on registration and used
    to label this driver's tracer events in multi-device runs."""
    tracer: Tracer = NULL_TRACER
    """Request-lifecycle observation hooks (engine-installed by default)."""
    faults: FaultInjector | None = None
    """Fault injector; ``None`` (the default) disables the error path
    entirely and keeps the happy path byte-identical to a fault-free
    build."""
    fault_stats: FaultStats = field(default_factory=FaultStats)
    """Error/retry/recovery counters; only written on fault paths."""
    _current: DiskRequest | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.label.geometry is not self.disk.geometry:
            if self.label.geometry != self.disk.geometry:
                raise DriverError("label geometry does not match the disk")
        if self.label.is_rearranged and self.block_table.capacity is None:
            self.block_table.capacity = self.label.reserved_capacity_blocks()
        if self.faults is not None:
            self.faults.bind_label(self.label)
        self._blocks_per_cylinder = self.disk.geometry.blocks_per_cylinder
        # Pre-size the array-backed redirection map for the whole device
        # so the hot path never pays incremental growth.
        reserve = getattr(self.block_table, "reserve", None)
        if reserve is not None:
            reserve(self.disk.geometry.total_blocks)

    # ------------------------------------------------------------------
    # Attach / recovery
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Start-up: read the block table back from the reserved area.

        After a crash the in-memory table is rebuilt from the disk copy
        with every entry marked dirty (Section 4.1.2).
        """
        if self.label.is_rearranged:
            self.block_table.recover()

    def crash(self, now_ms: float) -> list[DiskRequest]:
        """Power failure: volatile driver state vanishes.

        The in-memory block table is lost (the on-disk copy in the
        reserved area survives), and every request that was queued or in
        flight is dropped.  The lost requests are returned so the caller
        can model client retries (the paper's NFS clients resubmit
        outstanding requests once the server returns).
        """
        lost: list[DiskRequest] = []
        if self._current is not None:
            lost.append(self._current)
            self._current = None
        while self.queue:
            lost.append(self.queue.pop(self.disk.head_cylinder))
        self.block_table.crash()
        self.fault_stats.crashes += 1
        return lost

    def recover(self, now_ms: float) -> float:
        """Reboot after :meth:`crash`: replay the attach protocol.

        Re-reads the block-table copy from the reserved area (one access
        per table home block, charged mechanically), rebuilds the
        in-memory table with every entry dirty, and proves the recovered
        state structurally sound.  Returns the time recovery finished.
        """
        self.tracer.recovery_begin(
            self.name, now_ms, len(self.block_table.disk_copy())
        )
        clock = now_ms
        if self.label.is_rearranged:
            for table_block in self.label.block_table_home_blocks():
                clock = self.disk.access(table_block, True, clock).finish_ms
            self.block_table.recover()
            from ..faults.invariants import BlockTableInvariants

            BlockTableInvariants(self.label).check_recovery(self.block_table)
        self.fault_stats.recoveries += 1
        self.tracer.recovery_end(self.name, clock, len(self.block_table))
        return clock

    # ------------------------------------------------------------------
    # Strategy path
    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._current is not None

    @property
    def current_request(self) -> DiskRequest | None:
        return self._current

    @property
    def queued(self) -> int:
        return len(self.queue)

    def strategy(self, request: DiskRequest, now_ms: float) -> float | None:
        """Accept a request; start the disk if it is idle.

        Returns the completion time of a newly started disk operation, or
        ``None`` if the disk was already busy and the request only queued.
        """
        if now_ms < request.arrival_ms:
            raise DriverError("strategy called before the request's arrival")
        if request.size_blocks != 1:
            raise BadAddressError(
                f"strategy on {self.name} takes single-block requests, got "
                f"{request.size_blocks} blocks at logical block "
                f"{request.logical_block}; use physio for larger raw "
                "transfers"
            )

        physical = self.label.virtual_to_physical_block(request.logical_block)
        request.physical_block = physical
        # The label always yields an in-range physical block, so the
        # cylinder is plain integer division (no re-validation).
        request.home_cylinder = physical // self._blocks_per_cylinder

        reserved = self.block_table.reserved_of(physical)
        if reserved >= 0:
            request.target_block = reserved
            request.redirected = True
        else:
            request.target_block = self._apply_cylinder_map(physical)
            request.redirected = request.target_block != physical

        self.request_monitor.record(request)
        self.perf_monitor.note_arrival(request)
        if self.faults is not None:
            self.fault_stats.day_requests += 1

        return self._enqueue(request, now_ms)

    def enqueue_migration(
        self, request: DiskRequest, now_ms: float
    ) -> float | None:
        """Queue one constituent I/O of an online block move.

        Migration steps carry a pre-resolved physical ``target_block``
        (no label mapping, no block-table redirection) and enter the
        ordinary disk queue, where SCAN ordering lets foreground
        requests preempt them naturally.  They are invisible to the
        monitoring tables: the analyzer must not count the rearranger's
        own traffic, and the performance monitor describes foreground
        requests only (:meth:`complete` skips them symmetrically).
        """
        if request.target_block is None:
            raise BadAddressError(
                "migration steps must carry a resolved target_block"
            )
        request.migration = True
        return self._enqueue(request, now_ms, record=False)

    def resubmit(self, request: DiskRequest, now_ms: float) -> float | None:
        """Re-queue a request that was lost in a crash (client retry).

        The retry is not a new logical arrival: the monitoring tables
        already recorded it, so only the mapping is redone — against the
        *recovered* block table — before the request rejoins the queue.
        """
        physical = self.label.virtual_to_physical_block(request.logical_block)
        request.physical_block = physical
        reserved = self.block_table.reserved_of(physical)
        if reserved >= 0:
            request.target_block = reserved
            request.redirected = True
        else:
            request.target_block = self._apply_cylinder_map(physical)
            request.redirected = request.target_block != physical
        return self._enqueue(request, now_ms, record=False)

    def _enqueue(
        self, request: DiskRequest, now_ms: float, record: bool = True
    ) -> float | None:
        assert request.target_block is not None
        target_cylinder = request.target_block // self._blocks_per_cylinder
        self.queue.push(request, target_cylinder)
        if record and self.tracer is not NULL_TRACER:
            # Crash resubmissions are not new arrivals: the monitors (and
            # any trace being written) already saw this request once.
            self.tracer.request_enqueued(
                self.name, request, now_ms, len(self.queue)
            )
        if not self.busy:
            return self._start_next(now_ms)
        return None

    def complete(self, now_ms: float) -> tuple[DiskRequest, float | None]:
        """Finish the in-flight operation; start the next queued one.

        Returns ``(completed request, completion time of next op or None)``.
        """
        if self._current is None:
            raise DriverError("complete called with no operation in flight")
        request = self._current
        self._current = None
        request.complete_ms = now_ms
        if not request.migration:
            # Migration steps never noted an arrival, so they must not
            # note a completion either — the performance tables describe
            # foreground traffic only (their queueing *impact* on
            # foreground requests is measured, their own service is not).
            self.perf_monitor.note_completion(request)
            if self.tracer is not NULL_TRACER:
                self.tracer.service_complete(self.name, request, now_ms)
        next_completion = None
        if self.queue:
            next_completion = self._start_next(now_ms)
        return request, next_completion

    def _start_next(self, now_ms: float) -> float:
        request = self.queue.pop(self.disk.head_cylinder)
        assert request.target_block is not None
        if self.faults is None:
            breakdown = self.disk.access(
                request.target_block, request.is_read, now_ms
            )
        else:
            breakdown = self._access_with_faults(request, now_ms)
        self._apply_breakdown(request, breakdown, now_ms)
        if self.tracer is not NULL_TRACER:
            self.tracer.seek_started(
                self.name, request, now_ms, breakdown.seek_distance
            )
        if not request.is_read:
            self._apply_write(request)
        self._current = request
        return breakdown.finish_ms

    def _access_with_faults(
        self, request: DiskRequest, now_ms: float
    ) -> ServiceBreakdown:
        """Serve one request through the injector's error model.

        Every attempt — failed ones included — costs a full mechanical
        access from the clock where the previous attempt ended, so
        retries show up in the measured service time exactly as the
        paper's per-attempt accounting demands.  Returns the breakdown
        of the final attempt, whose ``finish_ms`` reflects the whole
        faulted service.
        """
        assert self.faults is not None and request.target_block is not None
        stats = self.fault_stats
        clock = now_ms
        attempt = 0
        while True:
            breakdown = self.disk.access(
                request.target_block, request.is_read, clock
            )
            fault = self.faults.draw(
                request.target_block, request.is_read, clock
            )
            if fault is None:
                return breakdown
            stats.day_errors += 1
            self.perf_monitor.note_fault(request.is_read)
            self.tracer.fault_injected(
                self.name, clock, request.target_block, fault, request.is_read
            )
            clock = breakdown.finish_ms
            if fault == "media":
                stats.media_faults += 1
                if request.redirected and (
                    request.physical_block in self.block_table
                ):
                    # The reserved copy is gone; evict the entry durably
                    # and serve the block from its original home.
                    assert request.physical_block is not None
                    self.block_table.remove(request.physical_block)
                    try:
                        clock = self._write_block_table(clock)
                    except (MediaError, DeviceTimeout) as exc:
                        # The eviction stays memory-only; after a crash
                        # the stale disk copy resurrects the mapping and
                        # the media error simply evicts it again.
                        if exc.now_ms is not None:
                            clock = exc.now_ms
                    request.target_block = request.physical_block
                    request.redirected = False
                    stats.evictions += 1
                    stats.fallback_serves += 1
                    continue
                stats.failed_requests += 1
                request.failed = True
                return breakdown
            stats.transient_faults += 1
            attempt += 1
            if attempt > self.faults.max_retries:
                stats.timeouts += 1
                stats.failed_requests += 1
                request.failed = True
                return breakdown
            stats.retries += 1
            self.perf_monitor.note_retry(request.is_read)
            self.tracer.retry(
                self.name, clock, request.target_block, attempt,
                request.is_read,
            )

    def _apply_breakdown(
        self,
        request: DiskRequest,
        breakdown: ServiceBreakdown,
        now_ms: float,
    ) -> None:
        request.submit_ms = now_ms
        request.seek_distance = breakdown.seek_distance
        request.seek_ms = breakdown.seek_ms
        request.rotation_ms = breakdown.rotation_ms
        request.transfer_ms = breakdown.transfer_ms
        request.buffer_hit = breakdown.buffer_hit

    def _apply_cylinder_map(self, physical_block: int) -> int:
        """Remap a block through the cylinder permutation, if one is set."""
        if self.cylinder_map is None:
            return physical_block
        per_cyl = self.disk.geometry.blocks_per_cylinder
        cylinder, index = divmod(physical_block, per_cyl)
        return self.cylinder_map.get(cylinder, cylinder) * per_cyl + index

    def _apply_write(self, request: DiskRequest) -> None:
        """Dirty-bit bookkeeping for writes to rearranged blocks."""
        if request.failed:
            return
        if request.redirected and request.physical_block in self.block_table:
            self.block_table.mark_dirty(request.physical_block)
        if request.tag is not None:
            assert request.target_block is not None
            self.disk.write_data(request.target_block, request.tag)

    def read_data(self, logical_block: int) -> object:
        """Read the current contents of a logical block (test hook).

        Follows the same mapping as the strategy routine, so it observes
        redirection exactly as the file system would.
        """
        physical = self.label.virtual_to_physical_block(logical_block)
        reserved = self.block_table.reserved_of(physical)
        if reserved >= 0:
            target = reserved
        else:
            target = self._apply_cylinder_map(physical)
        return self.disk.read_data(target)

    # ------------------------------------------------------------------
    # Block movement (DKIOCBCOPY / DKIOCCLEAN, Section 4.1.3)
    # ------------------------------------------------------------------

    def bcopy(self, logical_block: int, reserved_block: int, now_ms: float) -> float:
        """Copy one block into the reserved area (``DKIOCBCOPY``).

        Performs three I/O operations — read the original, write the
        reserved copy, force the block table to disk — mechanically through
        the drive, and returns the time at which the copy finished.  Must
        be called while the disk is idle (the experiments rearrange at the
        end of the day, outside the measurement window).

        With faults attached this is also a crash point: the injector may
        raise :class:`~repro.faults.SimulatedCrash` *between* copies, and
        an unrecoverable error on either constituent I/O raises
        :class:`MediaError`/:class:`DeviceTimeout` with the clock attached
        — the copy is then abandoned with the block table unchanged.
        """
        if self.busy:
            raise BusyError(
                f"cannot move blocks while {self.name} is busy"
            )
        if not self.label.is_rearranged:
            raise BadAddressError(f"{self.name} has no reserved area")
        if not self.label.is_reserved_block(reserved_block):
            raise BadAddressError(
                f"destination {reserved_block} on {self.name} is not in "
                "the reserved area"
            )
        if reserved_block in self.label.block_table_home_blocks():
            raise BadAddressError(
                f"destination {reserved_block} on {self.name} holds the "
                "block-table copy"
            )
        physical = self.label.virtual_to_physical_block(logical_block)

        if self.faults is not None:
            self.faults.check_move_crash(now_ms)

        clock = now_ms
        clock = self._moved_access(physical, True, clock)
        value = self.disk.read_data(physical)
        clock = self._moved_access(reserved_block, False, clock)
        self.disk.write_data(reserved_block, value)
        self.io_counter.copy_in_ios += 2

        self.block_table.add(physical, reserved_block)
        try:
            clock = self._write_block_table(clock)
        except (MediaError, DeviceTimeout):
            # The data copy landed but the table update did not make it
            # to disk; undo the in-memory entry so memory never claims a
            # redirection the disk copy cannot recover.
            self.block_table.remove(physical)
            raise
        if self.faults is not None:
            self.faults.note_move_done()
        return clock

    def clean(self, now_ms: float) -> float:
        """Empty the reserved area (``DKIOCCLEAN``).

        Dirty blocks are first copied back to their original positions
        (2 extra I/Os); after each block is moved out the block table is
        updated and rewritten to disk (1 I/O).  Returns the finish time.

        Fault handling degrades per entry: an entry whose move-out hits
        an unrecoverable error is *kept* — its reserved-area copy is the
        only good copy of the data — and the clean continues with the
        remaining entries.
        """
        if self.busy:
            raise BusyError(
                f"cannot move blocks while {self.name} is busy"
            )
        clock = now_ms
        for entry in self.block_table.entries():
            if self.faults is not None:
                self.faults.check_move_crash(clock)
            if entry.dirty:
                try:
                    clock = self._moved_access(
                        entry.reserved_block, True, clock
                    )
                    value = self.disk.read_data(entry.reserved_block)
                    clock = self._moved_access(
                        entry.original_block, False, clock
                    )
                except (MediaError, DeviceTimeout) as exc:
                    if exc.now_ms is not None:
                        clock = exc.now_ms
                    self.fault_stats.skipped_moves += 1
                    continue
                self.disk.write_data(entry.original_block, value)
                self.io_counter.move_out_ios += 2
            self.block_table.remove(entry.original_block)
            clock = self._write_block_table(clock)
            if self.faults is not None:
                self.faults.note_move_done()
        return clock

    def _moved_access(self, block: int, is_read: bool, now_ms: float) -> float:
        """One constituent I/O of a block move, through the error model.

        Returns the finish time.  Transient errors retry in place (each
        attempt charged); a media error raises :class:`MediaError` and an
        exhausted retry budget raises :class:`DeviceTimeout`, both with
        the clock after the final attempt attached.
        """
        if self.faults is None:
            return self.disk.access(block, is_read, now_ms).finish_ms
        stats = self.fault_stats
        clock = now_ms
        attempt = 0
        while True:
            breakdown = self.disk.access(block, is_read, clock)
            fault = self.faults.draw(block, is_read, clock)
            clock = breakdown.finish_ms
            if fault is None:
                return clock
            stats.day_errors += 1
            self.perf_monitor.note_fault(is_read)
            self.tracer.fault_injected(
                self.name, breakdown.start_ms, block, fault, is_read
            )
            if fault == "media":
                stats.media_faults += 1
                raise MediaError(
                    f"permanent media error at block {block} on "
                    f"{self.name}",
                    now_ms=clock,
                )
            stats.transient_faults += 1
            attempt += 1
            if attempt > self.faults.max_retries:
                stats.timeouts += 1
                raise DeviceTimeout(
                    f"block {block} on {self.name} timed out after "
                    f"{attempt} attempts",
                    now_ms=clock,
                )
            stats.retries += 1
            self.perf_monitor.note_retry(is_read)
            self.tracer.retry(self.name, clock, block, attempt, is_read)

    def _write_block_table(self, now_ms: float) -> float:
        """Force the block-table copy in the reserved area to disk."""
        clock = now_ms
        for table_block in self.label.block_table_home_blocks():
            clock = self._moved_access(table_block, False, clock)
        self.block_table.write_to_disk()
        self.io_counter.table_write_ios += 1
        return clock
