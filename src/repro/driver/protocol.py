"""The device-driver contract the simulation engine clocks against.

The engine does not know what an *adaptive* driver is — it only needs a
device that accepts requests, reports completion times, and can be started
up.  :class:`DeviceDriver` is that boundary, written as a
:class:`typing.Protocol` so any structurally conforming object (the
paper's :class:`~repro.driver.driver.AdaptiveDiskDriver`, a trivial
fixed-latency stub in a test, a future SSD model) can be registered with
:class:`~repro.sim.engine.Simulation` under its own device name.

The clocking contract, shared by every implementation:

* :meth:`strategy` is called when a request arrives.  If the device was
  idle it starts the operation and returns its completion time; if it was
  busy it queues the request and returns ``None``.
* :meth:`complete` is called by the engine at exactly the returned
  completion time.  It returns the finished request plus the completion
  time of the next operation the device started, or ``None`` if its queue
  drained.

Each driver keeps its *own* in-flight bookkeeping; the engine tracks one
pending-completion event per device and never assumes a global
single-operation invariant, which is what lets one event loop clock N
disks concurrently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.tracer import Tracer
    from .request import DiskRequest


@runtime_checkable
class DeviceDriver(Protocol):
    """Structural interface of one simulated device behind the engine."""

    name: str
    """Device name; the engine registers the driver under this key and
    tracers label the driver's events with it."""

    tracer: Tracer
    """Observation hooks.  Drivers default this to
    :data:`~repro.obs.tracer.NULL_TRACER`; the engine installs its own
    tracer on registration unless one was set explicitly."""

    @property
    def busy(self) -> bool:
        """True while a disk operation is in flight."""
        ...

    def attach(self) -> None:
        """Start-up / crash-recovery entry point."""
        ...

    def strategy(self, request: DiskRequest, now_ms: float) -> float | None:
        """Accept a request; return the new completion time, if any."""
        ...

    def complete(self, now_ms: float) -> tuple[DiskRequest, float | None]:
        """Finish the in-flight operation; return it plus the next
        operation's completion time (or ``None``)."""
        ...
