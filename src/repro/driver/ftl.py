"""A DFTL-style page-mapped flash translation layer (ROADMAP item 3).

On flash the device itself remaps blocks: writes are out-of-place, a
translation layer tracks where each logical page currently lives, and a
garbage collector compacts partially-invalid erase blocks.  Seek distance
is meaningless here — the cost model the 1993 paper optimises disappears
— but the analyzer's frequency data gets a second life driving *hot/cold
data separation*: writes classified hot go to their own write frontier,
so erase blocks fill with pages of similar lifetime and the collector
finds victims that are mostly invalid (fewer live pages to migrate, lower
write amplification).

:class:`FtlDriver` implements the same externally-clocked
:class:`~repro.driver.protocol.DeviceDriver` contract as the disk driver,
so the engine, workloads, tracing and fault scheduling all apply
unchanged.  The mapping design follows DFTL (Gupta, Kim & Urgaonkar,
ASPLOS 2009):

* a **cached mapping table** (CMT) holds a bounded set of logical-page →
  physical-page entries with LRU replacement; a miss costs a real flash
  read of the translation page holding the entry;
* **translation pages** — each packing
  :attr:`FlashGeometry.entries_per_tpage` consecutive mappings — live on
  flash like data and are themselves written out of place;
* a **global translation directory** (GTD, in RAM) locates the current
  copy of every translation page;
* evicting a *dirty* CMT entry batch-writes every dirty entry bound for
  the same translation page (one read-modify-write instead of many).

Writes are log-structured across per-purpose frontiers (``cold``,
``hot``, ``trans``, ``gc``); superseded pages are marked invalid in a RAM
bitmap.  When the free-block pool drains to ``gc_low_blocks``, garbage
collection selects victims — ``greedy`` (fewest valid pages) or
``cost-benefit`` (Rosenblum & Ousterhout's ``(1-u)/2u · age``) —
migrates the survivors, patches their mappings, and erases, charging all
of it to the host request that tripped the threshold (the synchronous-GC
worst case) and bumping per-block wear counters.

Power-cut semantics mirror real hardware: the per-page out-of-band
metadata (owning logical page + program sequence number) and page
contents survive a crash; the CMT, validity bitmap and frontiers do not.
Recovery scans the OOB area, keeps the highest sequence number per
logical page, rewrites translation pages that disagree with the scan, and
resumes with an empty cache.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core.counters import SpaceSavingSketch
from ..obs.tracer import NULL_TRACER, Tracer
from .errors import BadAddressError, DriverError
from .request import DiskRequest

__all__ = [
    "FLASH_MODELS",
    "FlashGeometry",
    "FtlDriver",
    "FtlStats",
    "GC_POLICIES",
    "SSD_4CH",
    "flash_model",
]

GC_POLICIES = ("greedy", "cost-benefit")
"""Victim-selection policies accepted by the collector, config, and CLI."""

# RAM page states (rebuilt from the OOB scan after a crash).
_FREE, _VALID, _INVALID = 0, 1, 2

# OOB owner encoding: >= 0 is a data page's logical page number, -1 is
# erased, and a translation page for virtual translation page ``tvpn``
# stores ``-(tvpn + 2)`` so the two namespaces cannot collide.
_ERASED = -1


def _trans_owner(tvpn: int) -> int:
    return -(tvpn + 2)


@dataclass(frozen=True)
class FlashGeometry:
    """Physical shape and raw timing of one flash device.

    Latencies are per *operation* in microseconds — flash has no
    mechanical state, so service time is just the sum of the page
    operations an access triggers (mapping misses and garbage collection
    included, which is what makes them expensive).
    """

    channels: int
    blocks_per_channel: int
    pages_per_block: int
    page_bytes: int = 4096
    page_read_us: float = 25.0
    page_write_us: float = 200.0
    erase_us: float = 1500.0

    def __post_init__(self) -> None:
        for name in ("channels", "blocks_per_channel", "pages_per_block"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.page_bytes < 16 or self.page_bytes % 8:
            raise ValueError("page_bytes must be a multiple of 8, >= 16")

    @property
    def total_blocks(self) -> int:
        return self.channels * self.blocks_per_channel

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def entries_per_tpage(self) -> int:
        """Mapping entries per translation page (8 bytes per entry)."""
        return self.page_bytes // 8


SSD_4CH = FlashGeometry(
    channels=4,
    blocks_per_channel=69,
    pages_per_block=64,
    page_bytes=4096,
)
"""The ``ssd`` preset: 4 channels x 69 blocks x 64 x 4KB pages (17,664
pages raw).  Sized so the Toshiba reference disk's virtual span (16,107
single-block pages, plus its 32 translation pages) fits with roughly 9%
spare area — a typical consumer over-provisioning ratio, tight enough
that a preconditioned drive garbage-collects daily."""

FLASH_MODELS: dict[str, FlashGeometry] = {"ssd": SSD_4CH}


def flash_model(flash: str) -> FlashGeometry:
    """Look up a flash geometry preset by name."""
    try:
        return FLASH_MODELS[flash]
    except KeyError:
        known = ", ".join(sorted(FLASH_MODELS))
        raise KeyError(
            f"unknown flash model {flash!r}; known models: {known}"
        ) from None


@dataclass
class FtlStats:
    """Cumulative FTL activity counters (reset by :meth:`clear`)."""

    host_page_reads: int = 0
    host_page_writes: int = 0
    flash_page_reads: int = 0
    flash_page_writes: int = 0
    translation_reads: int = 0
    translation_writes: int = 0
    cmt_hits: int = 0
    cmt_misses: int = 0
    gc_runs: int = 0
    gc_page_moves: int = 0
    crashes: int = 0
    recoveries: int = 0
    recovery_rewrites: int = 0

    @property
    def write_amplification(self) -> float:
        """Total flash page writes per host page write (1.0 = none)."""
        if self.host_page_writes == 0:
            return 0.0
        return self.flash_page_writes / self.host_page_writes

    @property
    def cmt_hit_ratio(self) -> float:
        lookups = self.cmt_hits + self.cmt_misses
        return self.cmt_hits / lookups if lookups else 0.0

    def payload(self) -> dict:
        """Canonical JSON-ready form for digests and reports."""
        return {
            "host_page_reads": self.host_page_reads,
            "host_page_writes": self.host_page_writes,
            "flash_page_reads": self.flash_page_reads,
            "flash_page_writes": self.flash_page_writes,
            "translation_reads": self.translation_reads,
            "translation_writes": self.translation_writes,
            "cmt_hits": self.cmt_hits,
            "cmt_misses": self.cmt_misses,
            "gc_runs": self.gc_runs,
            "gc_page_moves": self.gc_page_moves,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "recovery_rewrites": self.recovery_rewrites,
            "write_amplification": round(self.write_amplification, 6),
            "cmt_hit_ratio": round(self.cmt_hit_ratio, 6),
        }


@dataclass
class FtlDriver:
    """Page-mapped SSD behind the :class:`DeviceDriver` contract.

    Requests are served FIFO (flash has no arm to schedule around); each
    service charges the page operations the access *actually* triggers —
    mapping-cache misses, dirty-entry writebacks, and any synchronous
    garbage collection the write tripped — so queueing and response
    times reflect FTL internals the way seek times reflect arm movement
    on the disk backend.
    """

    geometry: FlashGeometry
    logical_pages: int
    cmt_capacity: int = 8192
    gc_policy: str = "greedy"
    gc_low_blocks: int = 8
    gc_high_blocks: int = 16
    separation: bool = False
    """Route writes classified hot to their own frontier.  Off: every
    host write shares the ``cold`` frontier (the no-rearrangement
    baseline)."""
    hot_threshold: int = 2
    """A write is hot when its sketch count reaches this threshold."""
    sketch: SpaceSavingSketch | None = None
    """Frequency classifier for separation; defaults to a 1024-counter
    Space-Saving sketch when ``separation`` is on."""
    name: str = "ssd0"
    tracer: Tracer = NULL_TRACER
    faults: object | None = None
    """Reserved for injector integration; the FTL models power-cut loss
    (the crash protocol) rather than per-access media errors."""
    _current: DiskRequest | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        g = self.geometry
        if self.logical_pages < 1:
            raise DriverError("logical_pages must be >= 1")
        if self.gc_policy not in GC_POLICIES:
            raise DriverError(
                f"unknown gc policy {self.gc_policy!r}; "
                f"known: {', '.join(GC_POLICIES)}"
            )
        if not 0 < self.gc_low_blocks < self.gc_high_blocks:
            raise DriverError("need 0 < gc_low_blocks < gc_high_blocks")
        if self.cmt_capacity < 1:
            raise DriverError("cmt_capacity must be >= 1")
        self._entries = g.entries_per_tpage
        self._tvpns = -(-self.logical_pages // self._entries)
        spare = g.total_pages - self.logical_pages - self._tvpns
        if spare < (self.gc_high_blocks + 2) * g.pages_per_block:
            raise DriverError(
                f"flash too small: {self.logical_pages} logical + "
                f"{self._tvpns} translation pages leave {spare} spare "
                f"pages of {g.total_pages}"
            )
        if self.separation and self.sketch is None:
            self.sketch = SpaceSavingSketch(capacity=1024)
        self.stats = FtlStats()
        self._ppb = g.pages_per_block
        total, blocks = g.total_pages, g.total_blocks
        # Persistent (survives power cuts): OOB owner + program sequence,
        # page contents (tags), translation-page contents, wear counters.
        self._page_owner = [_ERASED] * total
        self._page_seq = [0] * total
        self._page_tag: dict[int, object] = {}
        self._tpages: dict[int, dict[int, int]] = {}
        self.erase_count = [0] * blocks
        # Volatile (lost at power cut): validity map, per-block valid
        # counts and modification times, frontiers, free pool, CMT, GTD.
        self._state = bytearray(total)
        self._valid_count = [0] * blocks
        self._block_mtime = [0] * blocks
        self._seq = 0
        self._free: deque[int] = deque(range(blocks))
        self._in_free = set(range(blocks))
        self._frontier_block: dict[str, int | None] = {
            "cold": None, "hot": None, "trans": None, "gc": None,
        }
        self._frontier_next: dict[str, int] = {
            "cold": 0, "hot": 0, "trans": 0, "gc": 0,
        }
        self._cmt: dict[int, int] = {}
        self._dirty_by_tvpn: dict[int, set[int]] = {}
        self._gtd = [-1] * self._tvpns
        self._queue: deque[DiskRequest] = deque()
        self._now_ms = 0.0
        self._preconditioning = False

    # ------------------------------------------------------------------
    # DeviceDriver contract
    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._current is not None

    @property
    def queued(self) -> int:
        return len(self._queue)

    def attach(self) -> None:
        """Start-up hook; the FTL has no reserved-area table to re-read."""

    def strategy(self, request: DiskRequest, now_ms: float) -> float | None:
        if now_ms < request.arrival_ms:
            raise DriverError("strategy called before the request's arrival")
        if request.size_blocks != 1:
            raise BadAddressError(
                f"strategy on {self.name} takes single-block requests, got "
                f"{request.size_blocks} blocks at logical block "
                f"{request.logical_block}"
            )
        if not 0 <= request.logical_block < self.logical_pages:
            raise BadAddressError(
                f"logical block {request.logical_block} outside "
                f"{self.name}'s {self.logical_pages} logical pages"
            )
        return self._enqueue(request, now_ms)

    def complete(self, now_ms: float) -> tuple[DiskRequest, float | None]:
        if self._current is None:
            raise DriverError("complete called with no operation in flight")
        request = self._current
        self._current = None
        request.complete_ms = now_ms
        if not request.migration and self.tracer is not NULL_TRACER:
            self.tracer.service_complete(self.name, request, now_ms)
        next_completion = None
        if self._queue:
            next_completion = self._start_next(now_ms)
        return request, next_completion

    def _enqueue(
        self, request: DiskRequest, now_ms: float, record: bool = True
    ) -> float | None:
        self._queue.append(request)
        if record and self.tracer is not NULL_TRACER:
            self.tracer.request_enqueued(
                self.name, request, now_ms, len(self._queue)
            )
        if not self.busy:
            return self._start_next(now_ms)
        return None

    def _start_next(self, now_ms: float) -> float:
        request = self._queue.popleft()
        self._now_ms = now_ms
        request.submit_ms = now_ms
        cost_us = self._collect_if_low()
        lpn = request.logical_block
        if request.is_read:
            ppn, cost = self._resolve(lpn, insert=True)
            cost_us += cost
            self.stats.host_page_reads += 1
            if ppn >= 0:
                cost_us += self.geometry.page_read_us
                self.stats.flash_page_reads += 1
            request.physical_block = ppn if ppn >= 0 else None
            request.target_block = request.physical_block
        else:
            cost_us += self._write_logical(lpn, request.tag)
            ppn = self._cmt[lpn]
            request.physical_block = ppn
            request.target_block = ppn
        request.transfer_ms = cost_us / 1000.0
        self._current = request
        return now_ms + cost_us / 1000.0

    # ------------------------------------------------------------------
    # Mapping layer (DFTL: CMT + translation pages + GTD)
    # ------------------------------------------------------------------

    def _resolve(self, lpn: int, insert: bool) -> tuple[int, float]:
        """Find ``lpn``'s current physical page; charge any flash reads.

        Returns ``(ppn, cost_us)`` with ``ppn = -1`` for a never-written
        page.  ``insert`` caches the entry (clean) on a miss; reads want
        that, writes install the *new* mapping themselves.
        """
        cmt = self._cmt
        ppn = cmt.get(lpn)
        if ppn is not None:
            self.stats.cmt_hits += 1
            cmt[lpn] = cmt.pop(lpn)  # LRU touch
            return ppn, 0.0
        self.stats.cmt_misses += 1
        cost = 0.0
        tvpn = lpn // self._entries
        tppn = self._gtd[tvpn]
        if tppn >= 0:
            cost += self.geometry.page_read_us
            self.stats.flash_page_reads += 1
            self.stats.translation_reads += 1
            ppn = self._tpages[tppn].get(lpn, -1)
        else:
            ppn = -1
        if insert and ppn >= 0:
            cmt[lpn] = ppn
            cost += self._evict_if_full()
        return ppn, cost

    def _install(self, lpn: int, ppn: int) -> float:
        """Install a fresh (dirty) mapping for ``lpn``."""
        self._cmt.pop(lpn, None)
        self._cmt[lpn] = ppn
        self._dirty_by_tvpn.setdefault(lpn // self._entries, set()).add(lpn)
        return self._evict_if_full()

    def _evict_if_full(self) -> float:
        cost = 0.0
        while len(self._cmt) > self.cmt_capacity:
            victim = next(iter(self._cmt))
            ppn = self._cmt.pop(victim)
            tvpn = victim // self._entries
            dirty = self._dirty_by_tvpn.get(tvpn)
            if dirty is not None and victim in dirty:
                cost += self._writeback(tvpn, extra={victim: ppn})
        return cost

    def _writeback(
        self, tvpn: int, extra: dict[int, int] | None = None
    ) -> float:
        """Flush every dirty entry of one translation page (batched RMW)."""
        updates = dict(extra) if extra else {}
        dirty = self._dirty_by_tvpn.pop(tvpn, None)
        if dirty:
            cmt = self._cmt
            for lpn in dirty:
                if lpn in cmt:
                    updates[lpn] = cmt[lpn]
        if not updates:
            return 0.0
        cost = 0.0
        old = self._gtd[tvpn]
        if old >= 0:
            cost += self.geometry.page_read_us
            self.stats.flash_page_reads += 1
            self.stats.translation_reads += 1
            content = dict(self._tpages[old])
            self._invalidate(old)
        else:
            content = {}
        content.update(updates)
        new = self._program("trans", _trans_owner(tvpn))
        self._tpages[new] = content
        self._gtd[tvpn] = new
        cost += self.geometry.page_write_us
        self.stats.translation_writes += 1
        if self.tracer is not NULL_TRACER and not self._preconditioning:
            self.tracer.mapping_writeback(
                self.name, self._now_ms, tvpn, len(updates)
            )
        return cost

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def _write_logical(self, lpn: int, tag: object | None) -> float:
        old, cost = self._resolve(lpn, insert=False)
        role = "cold"
        if self.sketch is not None and not self._preconditioning:
            self.sketch.observe(lpn)
            if (
                self.separation
                and self.sketch.count_of(lpn) >= self.hot_threshold
            ):
                role = "hot"
        new = self._program(role, lpn, tag)
        cost += self.geometry.page_write_us
        self.stats.host_page_writes += 1
        if old >= 0:
            self._invalidate(old)
        cost += self._install(lpn, new)
        return cost

    def _program(self, role: str, owner: int, tag: object | None = None) -> int:
        """Program the next page of ``role``'s frontier; return its ppn."""
        block = self._frontier_block[role]
        if block is None:
            if not self._free:
                raise DriverError(
                    f"{self.name} has no free flash blocks (GC starved)"
                )
            block = self._free.popleft()
            self._in_free.discard(block)
            self._frontier_block[role] = block
            self._frontier_next[role] = 0
        ppn = block * self._ppb + self._frontier_next[role]
        self._frontier_next[role] += 1
        if self._frontier_next[role] == self._ppb:
            self._frontier_block[role] = None  # sealed: now a GC candidate
        self._seq += 1
        self._page_owner[ppn] = owner
        self._page_seq[ppn] = self._seq
        self._state[ppn] = _VALID
        self._valid_count[block] += 1
        self._block_mtime[block] = self._seq
        if tag is not None:
            self._page_tag[ppn] = tag
        self.stats.flash_page_writes += 1
        return ppn

    def _invalidate(self, ppn: int) -> None:
        self._state[ppn] = _INVALID
        block = ppn // self._ppb
        self._valid_count[block] -= 1
        self._block_mtime[block] = self._seq

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def _collect_if_low(self) -> float:
        """Run GC if the free pool hit the low watermark; charge the cost."""
        if len(self._free) > self.gc_low_blocks:
            return 0.0
        cost = 0.0
        while len(self._free) < self.gc_high_blocks:
            victim = self._select_victim()
            if victim is None:
                break
            cost += self._collect(victim)
        return cost

    def _candidates(self):
        frontiers = set(
            b for b in self._frontier_block.values() if b is not None
        )
        for block in range(self.geometry.total_blocks):
            if block in self._in_free or block in frontiers:
                continue
            if self._valid_count[block] >= self._ppb:
                continue  # nothing to reclaim
            yield block

    def _select_victim(self) -> int | None:
        if self.gc_policy == "greedy":
            best = min(
                self._candidates(),
                key=lambda b: (self._valid_count[b], b),
                default=None,
            )
            return best
        # cost-benefit: maximize (1-u)/(2u) * age, deterministic tie-break
        # on the lower block id; a fully-invalid block is a free win.
        best, best_key = None, None
        for block in self._candidates():
            valid = self._valid_count[block]
            age = self._seq - self._block_mtime[block]
            if valid == 0:
                score = float("inf")
            else:
                u = valid / self._ppb
                score = (1.0 - u) / (2.0 * u) * age
            key = (score, -block)
            if best_key is None or key > best_key:
                best, best_key = block, key
        return best

    def _collect(self, victim: int) -> float:
        g = self.geometry
        cost = 0.0
        base = victim * self._ppb
        data_moves: list[tuple[int, int]] = []
        trans_moves: list[tuple[int, int]] = []
        for ppn in range(base, base + self._ppb):
            if self._state[ppn] != _VALID:
                continue
            owner = self._page_owner[ppn]
            if owner >= 0:
                data_moves.append((owner, ppn))
            else:
                trans_moves.append((-owner - 2, ppn))
        # Relocate surviving translation pages first so any mapping
        # rewrites below see the directory pointing outside the victim.
        for tvpn, old in trans_moves:
            cost += g.page_read_us + g.page_write_us
            self.stats.flash_page_reads += 1
            content = self._tpages[old]
            self._invalidate(old)
            new = self._program("trans", _trans_owner(tvpn))
            self._tpages[new] = content
            self._gtd[tvpn] = new
            self.stats.gc_page_moves += 1
        # Relocate surviving data pages; patch cached mappings in place
        # (dirty, no flash cost now) and batch the uncached ones per
        # translation page.
        pending: dict[int, dict[int, int]] = {}
        for lpn, old in data_moves:
            cost += g.page_read_us + g.page_write_us
            self.stats.flash_page_reads += 1
            new = self._program("gc", lpn, self._page_tag.get(old))
            self._invalidate(old)
            self.stats.gc_page_moves += 1
            if lpn in self._cmt:
                self._cmt[lpn] = new  # no LRU touch: GC is not a reference
                self._dirty_by_tvpn.setdefault(
                    lpn // self._entries, set()
                ).add(lpn)
            else:
                pending.setdefault(lpn // self._entries, {})[lpn] = new
        for tvpn in sorted(pending):
            updates = pending[tvpn]
            old_t = self._gtd[tvpn]
            if old_t >= 0:
                cost += g.page_read_us
                self.stats.flash_page_reads += 1
                self.stats.translation_reads += 1
                content = dict(self._tpages[old_t])
                self._invalidate(old_t)
            else:
                content = {}
            content.update(updates)
            new_t = self._program("trans", _trans_owner(tvpn))
            self._tpages[new_t] = content
            self._gtd[tvpn] = new_t
            cost += g.page_write_us
            self.stats.translation_writes += 1
        cost += g.erase_us
        self._erase(victim)
        self.stats.gc_runs += 1
        if self.tracer is not NULL_TRACER and not self._preconditioning:
            self.tracer.gc_run(
                self.name,
                self._now_ms,
                victim,
                self.gc_policy,
                len(data_moves) + len(trans_moves),
                self.erase_count[victim],
            )
        return cost

    def _erase(self, block: int) -> None:
        base = block * self._ppb
        for ppn in range(base, base + self._ppb):
            self._page_owner[ppn] = _ERASED
            self._page_seq[ppn] = 0
            self._state[ppn] = _FREE
            self._page_tag.pop(ppn, None)
            self._tpages.pop(ppn, None)
        self._valid_count[block] = 0
        self.erase_count[block] += 1
        self._free.append(block)
        self._in_free.add(block)

    # ------------------------------------------------------------------
    # Wear reporting
    # ------------------------------------------------------------------

    @property
    def max_erase_count(self) -> int:
        return max(self.erase_count)

    @property
    def mean_erase_count(self) -> float:
        return sum(self.erase_count) / len(self.erase_count)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    # ------------------------------------------------------------------
    # Crash protocol (power cut)
    # ------------------------------------------------------------------

    def crash(self, now_ms: float) -> list[DiskRequest]:
        """Power cut: RAM state vanishes; OOB metadata and data survive.

        Returns the requests that were queued or in flight so the caller
        can model client retries, exactly like the disk driver.
        """
        lost: list[DiskRequest] = []
        if self._current is not None:
            lost.append(self._current)
            self._current = None
        while self._queue:
            lost.append(self._queue.popleft())
        self._cmt.clear()
        self._dirty_by_tvpn.clear()
        for role in self._frontier_block:
            self._frontier_block[role] = None
        self.stats.crashes += 1
        return lost

    def recover(self, now_ms: float) -> float:
        """Rebuild volatile state from the out-of-band scan.

        Every programmed page is read (charged); the highest program
        sequence number wins per logical page and per translation page.
        Translation pages whose stored mapping disagrees with the scan —
        entries were cached dirty when the power failed — are rewritten
        from the scan, which is authoritative.  Returns the time
        recovery finished.
        """
        g = self.geometry
        total = g.total_pages
        latest_data: dict[int, tuple[int, int]] = {}
        latest_trans: dict[int, tuple[int, int]] = {}
        programmed: list[int] = []
        for ppn in range(total):
            owner = self._page_owner[ppn]
            if owner == _ERASED:
                continue
            programmed.append(ppn)
            seq = self._page_seq[ppn]
            if owner >= 0:
                cur = latest_data.get(owner)
                if cur is None or seq > cur[0]:
                    latest_data[owner] = (seq, ppn)
            else:
                tvpn = -owner - 2
                cur = latest_trans.get(tvpn)
                if cur is None or seq > cur[0]:
                    latest_trans[tvpn] = (seq, ppn)
        if self.tracer is not NULL_TRACER:
            self.tracer.recovery_begin(self.name, now_ms, len(programmed))
        # Rebuild validity: winners valid, every other programmed page
        # invalid.
        self._state = bytearray(total)
        for block in range(g.total_blocks):
            self._valid_count[block] = 0
        for ppn in programmed:
            self._state[ppn] = _INVALID
        winners = [ppn for _, ppn in latest_data.values()]
        winners.extend(ppn for _, ppn in latest_trans.values())
        for ppn in winners:
            self._state[ppn] = _VALID
            self._valid_count[ppn // self._ppb] += 1
        # Free pool: blocks with no programmed page at all, ascending.
        self._free.clear()
        self._in_free.clear()
        for block in range(g.total_blocks):
            base = block * self._ppb
            if all(
                self._page_owner[p] == _ERASED
                for p in range(base, base + self._ppb)
            ):
                self._free.append(block)
                self._in_free.add(block)
        cost_us = len(programmed) * g.page_read_us
        # Reconcile translation pages against the (authoritative) scan.
        desired_by_tvpn: dict[int, dict[int, int]] = {}
        for lpn, (_, ppn) in latest_data.items():
            desired_by_tvpn.setdefault(lpn // self._entries, {})[lpn] = ppn
        rewrites = 0
        for tvpn in range(self._tvpns):
            desired = desired_by_tvpn.get(tvpn, {})
            stored = latest_trans.get(tvpn)
            stored_map = self._tpages.get(stored[1]) if stored else None
            if stored_map == desired:
                self._gtd[tvpn] = stored[1]  # type: ignore[index]
                continue
            if not desired:
                self._gtd[tvpn] = -1
                if stored is not None:
                    self._invalidate(stored[1])
                continue
            if stored is not None:
                self._invalidate(stored[1])
            new = self._program("trans", _trans_owner(tvpn))
            self._tpages[new] = desired
            self._gtd[tvpn] = new
            cost_us += g.page_write_us
            self.stats.translation_writes += 1
            rewrites += 1
        self.stats.recoveries += 1
        self.stats.recovery_rewrites += rewrites
        clock = now_ms + cost_us / 1000.0
        if self.tracer is not NULL_TRACER:
            self.tracer.recovery_end(self.name, clock, rewrites)
        return clock

    def resubmit(self, request: DiskRequest, now_ms: float) -> float | None:
        """Re-queue a request lost in a crash (client retry, not a new
        arrival — no tracer enqueue event)."""
        return self._enqueue(request, now_ms, record=False)

    # ------------------------------------------------------------------
    # Test hook + preconditioning
    # ------------------------------------------------------------------

    def read_data(self, logical_block: int) -> object:
        """Current contents of a logical page (test hook; charge-free)."""
        ppn = self._cmt.get(logical_block)
        if ppn is None:
            tppn = self._gtd[logical_block // self._entries]
            if tppn < 0:
                return None
            ppn = self._tpages[tppn].get(logical_block, -1)
        if ppn < 0:
            return None
        return self._page_tag.get(ppn)

    def precondition(
        self,
        seed: int,
        target_free_blocks: int | None = None,
        cycles: int = 2,
    ) -> None:
        """Age the drive so the measured day sees steady-state GC.

        Sequentially fills every logical page (data, then one write per
        translation page), then runs ``cycles`` rounds of uniformly
        random overwrites — drawn from a generator seeded with ``seed``,
        so runs are reproducible — each round draining the free pool to
        the GC trigger and collecting back to the high watermark.  The
        cycling matters: a freshly-filled drive is full of free-win
        victims (fully invalid blocks) that would make the first measured
        day's garbage collection artificially cheap; after a couple of
        write/collect rounds the validity distribution is the steady
        state that write amplification and hot/cold separation are about.
        Ends with the free pool at ``target_free_blocks`` (default: two
        blocks above the trigger) and all counters cleared, so reported
        stats cover the measured window only.
        """
        import numpy as np

        if self.stats.host_page_writes or self._seq:
            raise DriverError("precondition() requires a fresh device")
        if target_free_blocks is None:
            target_free_blocks = self.gc_low_blocks + 2
        if target_free_blocks <= self.gc_low_blocks:
            raise DriverError(
                "precondition target must stay above the GC trigger"
            )
        self._preconditioning = True
        try:
            entries = self._entries
            content: dict[int, int] = {}
            tvpn = 0
            for lpn in range(self.logical_pages):
                content[lpn] = self._program("cold", lpn)
                if len(content) == entries or lpn == self.logical_pages - 1:
                    tppn = self._program("trans", _trans_owner(tvpn))
                    self._tpages[tppn] = content
                    self._gtd[tvpn] = tppn
                    content = {}
                    tvpn += 1
            rng = np.random.default_rng(seed)

            def churn(down_to: int) -> None:
                while len(self._free) > down_to:
                    for lpn in rng.integers(0, self.logical_pages, size=256):
                        self._write_logical(int(lpn), None)
                        if len(self._free) <= down_to:
                            break

            for _ in range(cycles):
                churn(self.gc_low_blocks)
                while len(self._free) < self.gc_high_blocks:
                    victim = self._select_victim()
                    if victim is None:
                        break
                    self._collect(victim)
            # Consume the free wins the churn left behind (mostly
            # fully-cycled translation blocks): the measured window
            # should pay for its collections, not inherit free ones.
            for block in list(self._candidates()):
                if self._valid_count[block] == 0:
                    self._collect(block)
            churn(target_free_blocks)
        finally:
            self._preconditioning = False
        self.stats = FtlStats()
