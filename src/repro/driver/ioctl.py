"""ioctl-style entry points into the driver (Sections 4.1.3, 4.1.4, 4.1.5).

The paper controls the modified driver from user-level programs through the
``ioctl`` system call.  :class:`IoctlInterface` is that boundary: the
user-level reference stream analyzer and block arranger in
:mod:`repro.core` talk to the driver exclusively through this object, never
through the driver's internals — mirroring the kernel/user split of the
real implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..disk.geometry import DiskGeometry
from .driver import AdaptiveDiskDriver
from .monitor import ClassStats, RequestRecord


class IoctlCommand(Enum):
    """The driver's special-purpose entry points."""

    DKIOCBCOPY = "bcopy"  # copy a block into the reserved area
    DKIOCCLEAN = "clean"  # empty the reserved area
    DKIOCREADREQS = "read_requests"  # read & clear the request table
    DKIOCREADSTATS = "read_stats"  # read & clear the performance tables
    DKIOCGGEOM = "get_geometry"  # read disk geometry entries


@dataclass(frozen=True)
class ReservedAreaInfo:
    """Reserved-area description returned by the geometry ioctl."""

    start_cylinder: int
    cylinders: int
    capacity_blocks: int
    data_blocks: tuple[int, ...]
    center_cylinder: int


@dataclass
class IoctlInterface:
    """User-process view of one adaptive driver."""

    driver: AdaptiveDiskDriver

    @property
    def device_name(self) -> str:
        """Name of the device this interface controls (e.g. ``disk0``)."""
        return self.driver.name

    # -- block movement -------------------------------------------------

    def bcopy(self, logical_block: int, reserved_block: int, now_ms: float) -> float:
        """``DKIOCBCOPY``: copy ``logical_block`` to ``reserved_block``."""
        return self.driver.bcopy(logical_block, reserved_block, now_ms)

    def clean(self, now_ms: float) -> float:
        """``DKIOCCLEAN``: move every rearranged block back home."""
        return self.driver.clean(now_ms)

    # -- monitoring ------------------------------------------------------

    def read_requests(self) -> list[RequestRecord]:
        """Read and clear the request-monitoring table (Section 4.1.4)."""
        return self.driver.request_monitor.read_and_clear()

    def read_stats(self) -> dict[str, ClassStats]:
        """Read and clear the performance tables (Section 4.1.5)."""
        return self.driver.perf_monitor.read_and_clear()

    # -- geometry ----------------------------------------------------------

    def get_geometry(self) -> DiskGeometry:
        return self.driver.disk.geometry

    def get_reserved_area(self) -> ReservedAreaInfo:
        """Reserved-area layout, as recorded in the disk label."""
        label = self.driver.label
        if not label.is_rearranged:
            raise ValueError("disk is not initialized for rearrangement")
        assert label.reserved_start_cylinder is not None
        return ReservedAreaInfo(
            start_cylinder=label.reserved_start_cylinder,
            cylinders=label.reserved_cylinders,
            capacity_blocks=label.reserved_capacity_blocks(),
            data_blocks=tuple(label.reserved_data_blocks()),
            center_cylinder=label.reserved_center_cylinder(),
        )

    def call(self, command: IoctlCommand, *args, **kwargs):
        """Dispatch by command code, as a real ioctl switch would."""
        handlers = {
            IoctlCommand.DKIOCBCOPY: self.bcopy,
            IoctlCommand.DKIOCCLEAN: self.clean,
            IoctlCommand.DKIOCREADREQS: self.read_requests,
            IoctlCommand.DKIOCREADSTATS: self.read_stats,
            IoctlCommand.DKIOCGGEOM: self.get_geometry,
        }
        return handlers[command](*args, **kwargs)
