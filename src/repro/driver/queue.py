"""Disk queueing (head-scheduling) policies.

The paper's driver "maintains a queue of outstanding requests for each
physical device, managed using a disk queueing policy" and the measured
system "implements a SCAN policy" (Sections 3.2 and 5.2).  SCAN is therefore
the default everywhere; FCFS is needed both as a policy and as the paper's
counterfactual baseline, and SSTF/C-SCAN are provided for the queue-policy
ablation benchmark.

A policy holds pending requests keyed by target cylinder and yields the next
request to service given the current head position.
"""

from __future__ import annotations

import bisect
import itertools
from abc import ABC, abstractmethod
from collections import deque
from typing import Iterator

from .request import DiskRequest


class DiskQueue(ABC):
    """Interface shared by all queueing policies."""

    __slots__ = ()

    name: str = "abstract"

    @abstractmethod
    def push(self, request: DiskRequest, cylinder: int) -> None:
        """Enqueue ``request`` whose target lives on ``cylinder``."""

    @abstractmethod
    def pop(self, head_cylinder: int) -> DiskRequest:
        """Remove and return the next request to service."""

    @abstractmethod
    def __iter__(self) -> Iterator[DiskRequest]:
        """Iterate pending requests without removing them.

        Order is the policy's internal storage order (arrival order for
        FCFS, cylinder order for the sorted policies); used by
        instrumentation and tests, never by the service path."""

    @abstractmethod
    def __len__(self) -> int: ...

    def __bool__(self) -> bool:
        return len(self) > 0


class FCFSQueue(DiskQueue):
    """First-come-first-served: requests are serviced in arrival order."""

    name = "fcfs"

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: deque[DiskRequest] = deque()

    def push(self, request: DiskRequest, cylinder: int) -> None:
        self._queue.append(request)

    def pop(self, head_cylinder: int) -> DiskRequest:
        if not self._queue:
            raise IndexError("pop from empty disk queue")
        return self._queue.popleft()

    def __iter__(self) -> Iterator[DiskRequest]:
        return iter(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class _SortedCylinderQueue(DiskQueue):
    """Shared machinery: requests kept sorted by (cylinder, arrival seq).

    One list of ``(cylinder, seq, request)`` entries rather than parallel
    key/request lists: half the ``list.insert``/``list.pop`` element moves
    per operation.  Probe keys are 2-tuples — a ``(cylinder, seq)`` prefix
    never ties a stored entry (``seq`` is unique), so tuple comparison
    always resolves before reaching the request.
    """

    __slots__ = ("_entries", "_seq")

    def __init__(self) -> None:
        self._entries: list[tuple[int, int, DiskRequest]] = []
        self._seq = itertools.count()

    def push(self, request: DiskRequest, cylinder: int) -> None:
        entry = (cylinder, next(self._seq), request)
        bisect.insort_left(self._entries, entry)

    def __iter__(self) -> Iterator[DiskRequest]:
        return (entry[2] for entry in self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def _pop_index(self, index: int) -> DiskRequest:
        return self._entries.pop(index)[2]

    def _first_at_or_above(self, cylinder: int) -> int:
        """Index of the first queued request on a cylinder >= ``cylinder``."""
        return bisect.bisect_left(self._entries, (cylinder, -1))

    def _cylinder_at(self, index: int) -> int:
        return self._entries[index][0]


class ScanQueue(_SortedCylinderQueue):
    """SCAN (elevator): sweep in one direction, reverse at the last request.

    Within a cylinder, requests are serviced in arrival order, which is what
    produces the paper's zero-length-seek batching once hot blocks share
    reserved cylinders (Section 5.2).
    """

    name = "scan"

    __slots__ = ("ascending",)

    def __init__(self, ascending: bool = True) -> None:
        super().__init__()
        self.ascending = ascending

    def pop(self, head_cylinder: int) -> DiskRequest:
        if not self._entries:
            raise IndexError("pop from empty disk queue")
        if self.ascending:
            index = self._first_at_or_above(head_cylinder)
            if index == len(self._entries):
                self.ascending = False
                return self.pop(head_cylinder)
            return self._pop_index(index)
        index = self._first_at_or_above(head_cylinder + 1) - 1
        if index < 0:
            self.ascending = True
            return self.pop(head_cylinder)
        return self._pop_index(index)


class CScanQueue(_SortedCylinderQueue):
    """C-SCAN: sweep upward only, wrapping to the lowest pending cylinder."""

    name = "cscan"

    __slots__ = ()

    def pop(self, head_cylinder: int) -> DiskRequest:
        if not self._entries:
            raise IndexError("pop from empty disk queue")
        index = self._first_at_or_above(head_cylinder)
        if index == len(self._entries):
            index = 0  # wrap around to the lowest cylinder
        return self._pop_index(index)


class SSTFQueue(_SortedCylinderQueue):
    """Shortest-seek-time-first: greedily pick the nearest cylinder."""

    name = "sstf"

    __slots__ = ()

    def pop(self, head_cylinder: int) -> DiskRequest:
        if not self._entries:
            raise IndexError("pop from empty disk queue")
        above = self._first_at_or_above(head_cylinder)
        candidates: list[tuple[int, int]] = []  # (distance, index)
        if above < len(self._entries):
            candidates.append(
                (self._cylinder_at(above) - head_cylinder, above)
            )
        if above > 0:
            candidates.append(
                (head_cylinder - self._cylinder_at(above - 1), above - 1)
            )
        __, index = min(candidates)
        return self._pop_index(index)


QUEUE_POLICIES: dict[str, type[DiskQueue]] = {
    FCFSQueue.name: FCFSQueue,
    ScanQueue.name: ScanQueue,
    CScanQueue.name: CScanQueue,
    SSTFQueue.name: SSTFQueue,
}


def make_queue(policy: str) -> DiskQueue:
    """Instantiate a queueing policy by name."""
    try:
        return QUEUE_POLICIES[policy.lower()]()
    except KeyError:
        known = ", ".join(sorted(QUEUE_POLICIES))
        raise KeyError(f"unknown queue policy {policy!r}; known: {known}") from None
