"""Disk request records and their lifecycle timestamps.

The paper's driver measures two intervals per request (Section 4.1.5):

* **queueing time** — from the moment the driver first receives the request
  (the ``strategy`` call) to the moment it is submitted to the disk, and
* **service time** — from the end of queueing to the moment the request is
  returned by the disk.

:class:`DiskRequest` carries both the request parameters and those
timestamps, which are filled in by the driver as the request progresses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum


class Op(Enum):
    """Request direction."""

    READ = "read"
    WRITE = "write"

    @property
    def is_read(self) -> bool:
        return self is Op.READ


_request_ids = itertools.count()


@dataclass(slots=True)
class DiskRequest:
    """One block-sized I/O request as seen by the driver.

    ``logical_block`` is the file system's (virtual-disk) block number.
    The driver fills in ``physical_block`` (after label mapping),
    ``target_block`` (after block-table redirection), ``home_cylinder``
    (the cylinder of the *original, un-rearranged* location — used for the
    FCFS counterfactual of Tables 3, 8 and 9) and the timestamps.
    """

    logical_block: int
    op: Op
    arrival_ms: float
    size_blocks: int = 1
    tag: str | None = None
    request_id: int = field(default_factory=lambda: next(_request_ids))

    # Filled in by the driver:
    physical_block: int | None = None
    target_block: int | None = None
    home_cylinder: int | None = None
    redirected: bool = False
    submit_ms: float | None = None
    complete_ms: float | None = None
    seek_distance: int | None = None
    seek_ms: float | None = None
    rotation_ms: float | None = None
    transfer_ms: float | None = None
    buffer_hit: bool = False
    migration: bool = False
    """This request is one constituent I/O of an online block move
    (:mod:`repro.core.online`), not foreground traffic: it rides the
    ordinary disk queue but is invisible to the monitoring tables and
    is dropped — not resubmitted — when lost in a crash."""
    failed: bool = False
    """The request was returned with an unrecoverable device error (a
    permanent media error, or a transient error that exhausted the
    driver's bounded retries)."""

    @property
    def is_read(self) -> bool:
        return self.op.is_read

    @property
    def queueing_ms(self) -> float:
        """Waiting time: driver receipt to disk submission."""
        if self.submit_ms is None:
            raise ValueError("request has not been submitted")
        return self.submit_ms - self.arrival_ms

    @property
    def service_ms(self) -> float:
        """Service time: disk submission to completion."""
        if self.submit_ms is None or self.complete_ms is None:
            raise ValueError("request has not completed")
        return self.complete_ms - self.submit_ms

    @property
    def response_ms(self) -> float:
        """Total response time: arrival to completion."""
        if self.complete_ms is None:
            raise ValueError("request has not completed")
        return self.complete_ms - self.arrival_ms

    def __repr__(self) -> str:  # keep noise out of test failures
        return (
            f"DiskRequest(#{self.request_id} {self.op.value} "
            f"lbn={self.logical_block} @{self.arrival_ms:.3f}ms)"
        )


def read_request(logical_block: int, arrival_ms: float, **kwargs) -> DiskRequest:
    """Convenience constructor for a read request."""
    return DiskRequest(logical_block, Op.READ, arrival_ms, **kwargs)


def write_request(logical_block: int, arrival_ms: float, **kwargs) -> DiskRequest:
    """Convenience constructor for a write request."""
    return DiskRequest(logical_block, Op.WRITE, arrival_ms, **kwargs)
