"""The driver's error taxonomy.

:class:`DriverError` remains the catch-all base (existing callers that
``except DriverError`` keep working); the subclasses distinguish the
conditions a robust caller handles differently:

* :class:`BadAddressError` — a block address outside the device or the
  operation's legal region (the ``EINVAL``/``ENXIO`` class);
* :class:`BusyError` — an entry point that requires an idle device was
  called while an operation was in flight (``EBUSY``);
* :class:`MediaError` — a permanent, unrecoverable error pinned to one
  physical block (``EIO`` after the drive gave up);
* :class:`DeviceTimeout` — a transient device error that survived the
  driver's bounded retries (the SCSI timeout class).

``MediaError`` and ``DeviceTimeout`` carry the simulation clock at the
moment the final attempt finished (``now_ms``), because every attempt —
including the failed ones — costs real disk time that the caller must
account for when it continues.
"""

from __future__ import annotations


class DriverError(Exception):
    """Raised on misuse of the driver (bad addresses, busy conflicts...)."""


class BadAddressError(DriverError):
    """A block address outside the device or the operation's legal region."""


class BusyError(DriverError):
    """The entry point requires an idle device, but one is in flight."""


class FaultedIOError(DriverError):
    """Base of the injected-hardware-fault errors; carries the clock."""

    def __init__(self, message: str, now_ms: float | None = None) -> None:
        super().__init__(message)
        self.now_ms = now_ms


class MediaError(FaultedIOError):
    """A permanent media error at one physical block."""


class DeviceTimeout(FaultedIOError):
    """A transient device error that exhausted the bounded retries."""
