"""Multi-day synthetic workload generation.

The generator owns a simulated file system (for realistic FFS block
layout), a buffer cache (for the periodic-update write bursts), and a
file-popularity model (for the paper's skewed reference distributions).
Each call to :meth:`WorkloadGenerator.generate_day` produces one day's
worth of :class:`~repro.sim.jobs.Job` objects:

* **read sessions** — closed-loop sequential runs through popular files
  (clients reading executables / documents via NFS), arriving as a clumped
  Poisson process;
* **edit sessions** (*users* profile) — read runs whose blocks are written
  back through the buffer cache;
* **sync bursts** — every ``sync_interval_s`` the cache's dirty blocks
  (i-node access-time updates, edited data, superblock and cylinder-group
  summaries) are issued to the driver as one batch, reproducing the bursty
  write arrivals of Section 5.2;
* **background spikes** — periodic cron-style batches (log appends plus a
  scatter of cold reads) that add the heavy tail observed in the
  waiting-time distributions;
* **new-file creation and extension** (*users* profile) — writes to blocks
  that did not exist the previous day and therefore defeat rearrangement
  (Section 5.3).

Day-to-day drift is controlled by ``popularity_reshuffle_fraction``: each
new day that fraction of files exchange popularity ranks, modelling the
changing access patterns that made the *users* results weaker.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..driver.request import Op
from ..fs.allocator import AllocationError
from ..fs.buffercache import BufferCache
from ..fs.ufs import FileSystem, FileSystemError, Inode
from ..sim.jobs import Job, batch_job, sequential_job
from .distributions import (
    geometric_run_length,
    poisson_arrivals,
    zipf_weights,
)
from .profiles import WorkloadProfile

if TYPE_CHECKING:  # avoid importing tenancy on the generator hot path
    from .tenancy import SharedHotSet


@dataclass
class DayWorkload:
    """One generated day: jobs plus per-block reference counts."""

    day: int
    jobs: list[Job]
    read_counts: dict[int, int] = field(default_factory=dict)
    all_counts: dict[int, int] = field(default_factory=dict)

    @property
    def num_requests(self) -> int:
        """Total requests, from the reference counts (which equal the
        jobs' request total for generated days, but also work for
        count-only records rebuilt from measurements)."""
        return sum(self.all_counts.values())

    @property
    def num_reads(self) -> int:
        return sum(self.read_counts.values())

    @property
    def num_writes(self) -> int:
        return self.num_requests - self.num_reads


class WorkloadGenerator:
    """Reproducible multi-day workload for one file system on one disk."""

    def __init__(
        self,
        profile: WorkloadProfile,
        partition,
        blocks_per_cylinder: int,
        seed: int = 1993,
        shared_hot: SharedHotSet | None = None,
    ) -> None:
        self.profile = profile
        self.shared_hot = shared_hot
        self.rng = np.random.default_rng(seed)
        self.fs = FileSystem(
            partition=partition,
            blocks_per_cylinder=blocks_per_cylinder,
            cylinders_per_group=profile.cylinders_per_group,
            inode_blocks_per_group=profile.inode_blocks_per_group,
            interleave=profile.fs_interleave,
            directory_placement=profile.directory_placement,
        )
        self.cache = BufferCache(profile.cache_blocks)
        self._pending_evicted: list[int] = []
        self._groups_allocated: set[int] = set()
        self._day = 0
        self._new_file_serial = 0
        self._build_initial_tree()
        self._log_file = self._create_log_file()
        files = self.fs.all_files()
        self._inodes: list[Inode] = [inode for __, __, inode in files]
        self._file_keys: list[tuple[str, str]] = [
            (d, n) for d, n, __ in files
        ]
        self._weights = zipf_weights(
            len(self._inodes), profile.file_popularity_exponent
        )
        # _rank_of[i] is file i's popularity rank (0 = hottest).
        self._rank_of = self.rng.permutation(len(self._inodes))
        if shared_hot is not None:
            # Fleet mode: the hottest ranks are occupied by the
            # fleet-wide shared file choice; the device's own draw above
            # still happens (and still advances the rng identically), it
            # just ranks only the tenant-private remainder.
            self._rank_of = shared_hot.apply(self._rank_of)
        self._probs_dirty = True
        self._probs: np.ndarray | None = None
        self._cdf: np.ndarray | None = None
        self._cdf_list: list[float] | None = None
        self._last_dir: str | None = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _build_initial_tree(self) -> None:
        for d in range(self.profile.num_directories):
            name = f"dir{d:03d}"
            self.fs.make_directory(name)
            for f in range(self.profile.files_per_directory):
                size = geometric_run_length(
                    self.rng,
                    self.profile.mean_file_blocks,
                    self.profile.max_file_blocks,
                )
                self.fs.populate_file(name, f"file{f:03d}", size)

    def _create_log_file(self) -> Inode:
        """A system log whose blocks receive the cron-spike writes."""
        self.fs.make_directory("var")
        return self.fs.populate_file("var", "syslog", 8)

    # ------------------------------------------------------------------
    # Popularity and drift
    # ------------------------------------------------------------------

    def _file_probabilities(self) -> np.ndarray:
        if self._probs_dirty or self._probs is None:
            probs = self._weights[self._rank_of]
            self._probs = probs / probs.sum()
            self._probs_dirty = False
            self._cdf = None
            self._cdf_list = None
        return self._probs

    def _file_cdf(self) -> np.ndarray:
        """Popularity CDF, cached alongside ``_probs``.

        ``Generator.choice(n, p=probs)`` validates ``p``, cumsums it and
        inverts the CDF against uniform draws on every call.  Sampling
        through this cached CDF with ``searchsorted`` consumes the same
        uniforms in the same order, so the picks and the generator state
        are bit-identical to ``choice`` — only the per-call setup work
        disappears.
        """
        probs = self._file_probabilities()
        if self._cdf is None:
            cdf = probs.cumsum()
            cdf /= cdf[-1]
            self._cdf = cdf
        return self._cdf

    def _pick_file(self) -> int:
        """One popularity-weighted file pick.

        ``bisect_right`` over the CDF as a Python list is the scalar
        twin of ``searchsorted(..., side="right")``: the same single
        uniform is consumed and ``float``/``float64`` compare by value,
        so the pick and the generator state match the array path bit for
        bit — without the per-call ndarray dispatch.
        """
        self._file_probabilities()  # refresh drift; invalidates the list
        cdf = self._cdf_list
        if cdf is None:
            cdf = self._cdf_list = self._file_cdf().tolist()
        return bisect_right(cdf, self.rng.random())

    def _apply_drift(self) -> None:
        """Exchange popularity ranks among a fraction of the files."""
        fraction = self.profile.popularity_reshuffle_fraction
        if fraction <= 0:
            return
        n = len(self._rank_of)
        count = max(2, int(round(fraction * n)))
        chosen = self.rng.choice(n, size=min(count, n), replace=False)
        shuffled = self.rng.permutation(chosen)
        self._rank_of[chosen] = self._rank_of[shuffled]
        self._probs_dirty = True

    def _register_file(self, inode: Inode) -> None:
        """Add a newly created file to the popularity model.

        A new file occasionally becomes immediately popular (a fresh
        document everyone opens); usually it starts cool.
        """
        self._inodes.append(inode)
        n = len(self._inodes)
        self._weights = zipf_weights(
            n, self.profile.file_popularity_exponent
        )
        self._rank_of = np.append(self._rank_of, n - 1)
        if self.rng.random() < 0.25:
            other = int(self.rng.integers(0, n - 1))
            self._rank_of[n - 1], self._rank_of[other] = (
                self._rank_of[other],
                self._rank_of[n - 1],
            )
        self._probs_dirty = True

    # ------------------------------------------------------------------
    # Day generation
    # ------------------------------------------------------------------

    def generate_day(self) -> DayWorkload:
        """Produce the next day's jobs (advances the generator's day)."""
        profile = self.profile
        day = self._day
        self._day += 1
        if day > 0:
            self._apply_drift()

        timeline = self._build_timeline()
        jobs: list[Job] = []
        sync_ms = profile.sync_interval_s * 1000.0
        next_sync = sync_ms
        for when, kind in timeline:
            while next_sync <= when:
                self._flush_sync(next_sync, jobs)
                next_sync += sync_ms
            if kind == "session":
                self._emit_session(when, jobs)
            elif kind == "open":
                self._emit_open(when)
            elif kind == "spike":
                self._emit_spike(when, jobs)
            elif kind == "create":
                self._emit_create(when)
            elif kind == "extend":
                self._emit_extend(when)
        while next_sync <= profile.day_ms:
            self._flush_sync(next_sync, jobs)
            next_sync += sync_ms

        jobs.sort(key=lambda job: (job.start_ms, job.job_id))
        workload = DayWorkload(day=day, jobs=jobs)
        self._count(workload)
        return workload

    def _build_timeline(self) -> list[tuple[float, str]]:
        profile = self.profile
        events: list[tuple[float, str]] = []
        rate_per_ms = profile.read_sessions_per_hour / 3_600_000.0
        for when in poisson_arrivals(
            self.rng,
            rate_per_ms,
            profile.day_ms,
            clump_mean=profile.session_clump_mean,
            clump_spread_ms=profile.clump_spread_ms,
        ):
            events.append((when, "session"))
        if profile.open_sessions_per_hour > 0:
            open_rate = profile.open_sessions_per_hour / 3_600_000.0
            for when in poisson_arrivals(
                self.rng,
                open_rate,
                profile.day_ms,
                clump_mean=profile.session_clump_mean,
                clump_spread_ms=profile.clump_spread_ms,
            ):
                events.append((when, "open"))
        if profile.spike_interval_s > 0:
            interval_ms = profile.spike_interval_s * 1000.0
            t = interval_ms
            while t < profile.day_ms:
                events.append((t, "spike"))
                t += interval_ms
        for __ in range(profile.new_files_per_day):
            events.append((self.rng.uniform(0, profile.day_ms), "create"))
        for __ in range(profile.extend_sessions_per_day):
            events.append((self.rng.uniform(0, profile.day_ms), "extend"))
        events.sort(key=lambda pair: pair[0])
        return events

    # -- sessions -----------------------------------------------------

    def _pick_session_file(self) -> int:
        """Choose the session's file, honoring user (directory) locality."""
        profile = self.profile
        probs = self._file_probabilities()
        if (
            profile.user_locality > 0
            and self._last_dir is not None
            and self.rng.random() < profile.user_locality
        ):
            indices = [
                i
                for i, (d, __) in enumerate(self._file_keys)
                if d == self._last_dir
            ]
            if indices:
                weights = probs[indices]
                total = weights.sum()
                if total > 0:
                    pick = self.rng.choice(len(indices), p=weights / total)
                    return indices[int(pick)]
        return self._pick_file()

    def _emit_session(self, when: float, jobs: list[Job]) -> None:
        profile = self.profile
        index = self._pick_session_file()
        self._last_dir = self._file_keys[index][0]
        inode = self._inodes[index]
        if not inode.data_blocks:
            return
        run = self._run_blocks(inode)
        if not run:
            return
        read_blocks = run
        if profile.use_cache_for_reads:
            read_blocks = [
                block for block in run if not self.cache.read(block)
            ]
        if read_blocks:
            jobs.append(
                sequential_job(
                    when,
                    read_blocks,
                    Op.READ,
                    think_ms=profile.think_ms,
                    name="session",
                )
            )
        is_edit = (
            profile.edit_session_fraction > 0
            and self.rng.random() < profile.edit_session_fraction
        )
        if is_edit:
            edit_index = index
            if self.rng.random() < profile.edit_uniform_prob:
                edit_index = int(self.rng.integers(0, len(self._inodes)))
            self._rewrite_file(edit_index)
            self._cache_write(self._inodes[edit_index].inode_block)
        if profile.atime_updates:
            self._cache_write(self._inodes[index].inode_block)
        if profile.atime_updates and profile.dir_atime_updates:
            # The path lookup updates the directory's own inode too.
            directory = self._file_keys[index][0]
            self._cache_write(self.fs.directory_inode_block(directory))

    def _emit_open(self, when: float) -> None:
        """A cache-served file open: only the atime updates reach the disk."""
        if not self.profile.atime_updates:
            return
        index = self._pick_file()
        inode = self._inodes[index]
        self._cache_write(inode.inode_block)
        if self.profile.dir_atime_updates:
            directory = self._file_keys[index][0]
            self._cache_write(self.fs.directory_inode_block(directory))

    def _rewrite_file(self, index: int) -> None:
        """Save an edited file the way editors do: write a fresh copy.

        The old blocks are freed and brand-new blocks are allocated and
        written — "write requests resulting from new file creation and
        file expansion operations.  It is very unlikely that seek times
        for such requests will be reduced" (Section 5.3).  The file keeps
        its name, popularity and inode; only its data blocks move.
        """
        dir_name, file_name = self._file_keys[index]
        old = self._inodes[index]
        size = max(1, len(old.data_blocks))
        temp_name = f".#{file_name}.{self._new_file_serial}"
        self._new_file_serial += 1
        try:
            # Write the temporary copy first (while the old file still
            # holds its blocks, the copy necessarily lands elsewhere) ...
            inode = self.fs.create_file(dir_name, temp_name, size)
            # ... then unlink the original and rename the copy over it.
            self.fs.delete_file(dir_name, file_name)
            self.fs.rename(dir_name, temp_name, file_name)
        except (FileSystemError, AllocationError):
            # Read-only or full: fall back to updating in place.
            for block in old.data_blocks:
                self._cache_write(block)
            return
        for block in old.data_blocks:
            self.cache.invalidate(block)
        self._inodes[index] = inode
        self._note_allocation(inode.data_blocks)
        for block in inode.data_blocks:
            self._cache_write(block)

    def _run_blocks(self, inode: Inode) -> list[int]:
        profile = self.profile
        size = len(inode.data_blocks)
        if size == 1 or self.rng.random() < profile.single_block_read_prob:
            length = 1
        else:
            # A read-ahead run: at least two blocks.
            length = 1 + geometric_run_length(
                self.rng, max(profile.multi_run_mean - 1, 1.0), size - 1
            )
        if self.rng.random() < profile.read_from_start_prob or size == length:
            start = 0
        else:
            start = int(self.rng.integers(0, size - length + 1))
        return inode.data_blocks[start : start + length]

    def _cache_write(self, block: int) -> None:
        evicted = self.cache.write(block)
        if evicted is not None:
            self._pending_evicted.append(evicted)

    # -- spikes -------------------------------------------------------

    def _emit_spike(self, when: float, jobs: list[Job]) -> None:
        profile = self.profile
        if profile.spike_reads > 0:
            # Cron jobs re-read the same configuration/binary files every
            # period, so spike reads follow the file popularity too.
            picks = self._file_cdf().searchsorted(
                self.rng.random(profile.spike_reads), side="right"
            )
            blocks = []
            for index in picks:
                data = self._inodes[int(index)].data_blocks
                if data:
                    blocks.append(
                        data[int(self.rng.integers(0, len(data)))]
                    )
            if blocks:
                # Cron jobs read files one after another (closed loop), so
                # they lengthen the busy period without stacking the queue.
                jobs.append(
                    sequential_job(
                        when,
                        blocks,
                        Op.READ,
                        think_ms=5.0,
                        name="spike-read",
                    )
                )
        log_blocks = self._log_file.data_blocks
        for __ in range(profile.spike_writes):
            block = log_blocks[int(self.rng.integers(0, len(log_blocks)))]
            self._cache_write(block)
        if profile.spike_writes > 0:
            self._cache_write(self._log_file.inode_block)

    def _all_data_blocks(self) -> np.ndarray:
        blocks: list[int] = []
        for inode in self._inodes:
            blocks.extend(inode.data_blocks)
        return np.asarray(blocks, dtype=np.int64)

    # -- namespace churn (users profile) --------------------------------

    def _emit_create(self, when: float) -> None:
        profile = self.profile
        directory = f"dir{int(self.rng.integers(0, profile.num_directories)):03d}"
        name = f"new{self._day:03d}_{self._new_file_serial:06d}"
        self._new_file_serial += 1
        size = geometric_run_length(
            self.rng, profile.new_file_mean_blocks, profile.max_file_blocks
        )
        try:
            inode = self.fs.create_file(directory, name, size)
        except (FileSystemError, AllocationError):
            return  # file system full or read-only: drop the creation
        self._register_file(inode)
        self._file_keys.append((directory, name))
        self._note_allocation(inode.data_blocks)
        for block in inode.data_blocks:
            self._cache_write(block)
        self._cache_write(inode.inode_block)

    def _emit_extend(self, when: float) -> None:
        profile = self.profile
        index = int(self.rng.integers(0, len(self._inodes)))
        inode = self._inodes[index]
        dir_name, file_name = self._file_keys[index]
        count = geometric_run_length(
            self.rng, profile.extend_mean_blocks, profile.max_file_blocks
        )
        try:
            new_blocks = self.fs.extend_file(dir_name, file_name, count)
        except (FileSystemError, AllocationError):
            return
        self._note_allocation(new_blocks)
        for block in new_blocks:
            self._cache_write(block)
        self._cache_write(inode.inode_block)

    # -- syncs ----------------------------------------------------------

    def _flush_sync(self, when: float, jobs: list[Job]) -> None:
        """The periodic update policy: flush all dirty blocks as one burst.

        Besides the cache's dirty blocks, the burst carries the superblock
        (timestamp update) and the cylinder-group summary of every group
        that *allocated* blocks since the last sync — FFS only rewrites a
        group's free maps when blocks are allocated or freed, so pure
        access-time traffic dirties no summaries.
        """
        dirty = self.cache.sync()
        dirty.extend(self._pending_evicted)
        self._pending_evicted = []
        if not dirty and not self._groups_allocated:
            return
        burst: list[int] = []
        if self.profile.superblock_updates:
            burst.append(self.fs.superblock())
            burst.extend(sorted(self._groups_allocated))
        self._groups_allocated.clear()
        # Order-preserving dedup via a set shadow: the burst keeps exactly
        # the sequence the old list-membership scan produced, without the
        # O(len(burst)) probe per dirty block.
        in_burst = set(burst)
        for block in dirty:
            if block not in in_burst:
                in_burst.add(block)
                burst.append(block)
        jobs.append(batch_job(when, burst, Op.WRITE, name="sync"))

    def _note_allocation(self, blocks: list[int]) -> None:
        """Record that these freshly allocated blocks dirty their groups'
        summary blocks (flushed at the next sync)."""
        for block in blocks:
            self._groups_allocated.add(self.fs.metadata_block_of(block))

    # -- accounting -----------------------------------------------------

    def _count(self, workload: DayWorkload) -> None:
        """Tally per-block reference counts for the day's jobs.

        Counting goes through ``numpy.unique`` instead of a per-step dict
        update; the count *values* are identical and no consumer depends
        on the dicts' insertion order.
        """
        all_blocks: list[int] = []
        read_blocks: list[int] = []
        for job in workload.jobs:
            for step in job.steps:
                all_blocks.append(step.logical_block)
                if step.op is Op.READ:
                    read_blocks.append(step.logical_block)
        for blocks, counts in (
            (all_blocks, workload.all_counts),
            (read_blocks, workload.read_counts),
        ):
            if blocks:
                unique, tallies = np.unique(
                    np.asarray(blocks, dtype=np.int64), return_counts=True
                )
                counts.update(zip(unique.tolist(), tallies.tolist()))
