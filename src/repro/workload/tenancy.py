"""Multi-tenant fleet workloads: users, shared hot sets, device shards.

The paper measured one NFS server's disk serving ~40 users.  The fleet
layer (:mod:`repro.fleet`) scales that picture out: *tenants* (users)
generate traffic, tenants are deterministically assigned to *devices*,
and devices are grouped into *shards* that run on worker processes.
This module owns the workload side of that story:

* :class:`TenancySpec` — the population knobs: how many tenants, how
  skewed their traffic shares are (a Zipf over tenants: a few heavy
  users, a long tail), and how much of each device's hot set is drawn
  from a fleet-wide *shared* hot set (the same popular content — OS
  images, shared documents — hot on every device) versus tenant-private
  files.
* :func:`tenant_weights` / :func:`assign_tenants` — per-tenant traffic
  shares and the deterministic greedy assignment of tenants to devices
  (heaviest tenant first, always onto the currently lightest device).
  The assignment is a pure function of the spec and the device count, so
  every worker layout sees the identical fleet.
* :func:`device_profiles` — one :class:`WorkloadProfile` per device,
  derived from the base preset: the device's directory tree holds its
  tenants' home directories and its request rates carry exactly its
  tenants' combined traffic share.
* :class:`SharedHotSet` — the overlap mechanism, applied inside
  :class:`~repro.workload.generator.WorkloadGenerator`: the hottest
  ``fraction`` of popularity ranks is occupied by a fleet-wide file
  choice (same seed on every device) while the remaining ranks keep the
  device's own popularity draw.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .distributions import zipf_weights
from .profiles import PROFILES, WorkloadProfile

__all__ = [
    "SharedHotSet",
    "TenancySpec",
    "assign_tenants",
    "device_load_shares",
    "device_profiles",
    "tenant_weights",
]


@dataclass(frozen=True)
class SharedHotSet:
    """Fleet-wide hot content: a seeded choice of hot files.

    ``fraction`` of the popularity ranks — the hottest ones — are
    occupied by files chosen by a dedicated generator seeded with
    ``seed``.  Devices constructed with the same :class:`SharedHotSet`
    therefore agree on *which* file indices are hot (their physical
    blocks still differ per device: each device lays out its own file
    system), while the remaining ranks follow each device's private
    popularity draw.  ``fraction=0`` is a no-op; ``fraction=1`` makes
    every device's popularity ordering identical.
    """

    fraction: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

    def apply(self, rank_of: np.ndarray) -> np.ndarray:
        """Overlay the shared hot set onto a device's rank permutation.

        ``rank_of[i]`` is file ``i``'s popularity rank (0 = hottest).
        The returned array gives the hottest ``fraction * n`` ranks to
        the shared file choice; all other files keep their relative
        device-local order in the remaining ranks.
        """
        n = len(rank_of)
        k = min(n, int(round(self.fraction * n)))
        if k <= 0:
            return rank_of
        shared_files = np.random.default_rng(self.seed).permutation(n)[:k]
        rank = np.empty(n, dtype=rank_of.dtype)
        rank[shared_files] = np.arange(k, dtype=rank_of.dtype)
        # Files outside the shared set, ordered by their device-local rank.
        device_order = np.argsort(rank_of, kind="stable")
        in_shared = np.zeros(n, dtype=bool)
        in_shared[shared_files] = True
        rest = device_order[~in_shared[device_order]]
        rank[rest] = np.arange(k, n, dtype=rank_of.dtype)
        return rank


@dataclass(frozen=True)
class TenancySpec:
    """The fleet's user population and how its traffic is shaped."""

    tenants: int = 256
    """Users across the whole fleet."""
    tenant_skew: float = 1.1
    """Zipf exponent of per-tenant traffic shares (0 = uniform users;
    higher = a few heavy users dominate)."""
    hot_set_overlap: float = 0.5
    """Fraction of each device's hot popularity ranks occupied by the
    fleet-wide shared hot set (see :class:`SharedHotSet`)."""
    sessions_per_tenant_hour: float = 24.0
    """Read sessions one unit-weight tenant contributes per hour."""
    opens_per_tenant_hour: float = 90.0
    """Cache-served file opens (atime-update writes) per tenant-hour."""
    files_per_tenant: int = 24
    """Files in each tenant's home directory."""
    user_locality: float = 0.5
    """Probability consecutive sessions stay in the same tenant's home."""
    profile: str = "system"
    """Base preset the per-device profiles are derived from."""

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError("tenants must be positive")
        if self.tenant_skew < 0:
            raise ValueError("tenant_skew must be non-negative")
        if not 0.0 <= self.hot_set_overlap <= 1.0:
            raise ValueError("hot_set_overlap must be in [0, 1]")
        if self.files_per_tenant < 1:
            raise ValueError("files_per_tenant must be positive")
        if self.profile not in PROFILES:
            known = ", ".join(sorted(PROFILES))
            raise ValueError(
                f"unknown base profile {self.profile!r}; known: {known}"
            )

    def base_profile(self) -> WorkloadProfile:
        return PROFILES[self.profile]


def tenant_weights(spec: TenancySpec) -> np.ndarray:
    """Normalized per-tenant traffic shares (tenant 0 is the heaviest)."""
    return zipf_weights(spec.tenants, spec.tenant_skew)


def assign_tenants(spec: TenancySpec, devices: int) -> list[list[int]]:
    """Deterministically assign every tenant to one device.

    Greedy balanced assignment: tenants in descending weight order, each
    onto the device with the smallest load so far (ties broken by device
    index).  Pure function of ``(spec, devices)`` — no randomness — so
    the fleet layout is identical at every worker count and across runs.
    """
    if devices < 1:
        raise ValueError("devices must be positive")
    weights = tenant_weights(spec)
    loads = np.zeros(devices)
    assignment: list[list[int]] = [[] for __ in range(devices)]
    for tenant in range(spec.tenants):  # weights are already descending
        device = int(np.argmin(loads))  # first minimum wins ties
        assignment[device].append(tenant)
        loads[device] += weights[tenant]
    return assignment


def device_load_shares(spec: TenancySpec, devices: int) -> np.ndarray:
    """Each device's fraction of fleet traffic under :func:`assign_tenants`."""
    weights = tenant_weights(spec)
    shares = np.zeros(devices)
    for device, tenants in enumerate(assign_tenants(spec, devices)):
        shares[device] = weights[tenants].sum() if tenants else 0.0
    return shares


def device_profiles(
    spec: TenancySpec,
    devices: int,
    hours: float | None = None,
) -> list[WorkloadProfile]:
    """One workload profile per device, carrying its tenants' traffic.

    The base preset supplies the traffic *shape* (run lengths, sync
    cadence, popularity exponent over files); tenancy supplies the
    *scale*: the device's directory tree holds one home per assigned
    tenant and its session/open rates are the fleet totals times the
    device's traffic share.  A device with no tenants still carries a
    minimal single-directory tree at the lightest device's rate floor,
    so every disk in the fleet sees at least background traffic.
    """
    base = spec.base_profile()
    if hours is not None:
        base = base.scaled(hours)
    weights = tenant_weights(spec)
    assignment = assign_tenants(spec, devices)
    fleet_sessions = spec.sessions_per_tenant_hour * spec.tenants
    fleet_opens = spec.opens_per_tenant_hour * spec.tenants
    min_share = 1.0 / (10.0 * max(devices, 1))  # background-traffic floor
    profiles: list[WorkloadProfile] = []
    for device, tenants in enumerate(assignment):
        share = float(weights[tenants].sum()) if tenants else 0.0
        share = max(share, min_share)
        profiles.append(
            replace(
                base,
                name=f"{base.name}-tenant{device}",
                num_directories=max(1, len(tenants)),
                files_per_directory=spec.files_per_tenant,
                read_sessions_per_hour=fleet_sessions * share,
                open_sessions_per_hour=fleet_opens * share,
                user_locality=spec.user_locality,
            )
        )
    return profiles
