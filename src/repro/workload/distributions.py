"""Skewed-distribution utilities for workload synthesis.

The paper's workloads are characterized by highly skewed block reference
distributions (Figures 5 and 7; "fewer than 2000 blocks absorbed all of the
requests, and the 100 hottest blocks absorbed about 90%", Section 5.4).
These helpers build bounded Zipf-like popularity vectors, sample from them
reproducibly, and measure skew the way the paper reports it (cumulative
share absorbed by the top-k items).
"""

from __future__ import annotations

import numpy as np


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalized Zipf(``exponent``) probabilities over ranks 1..n."""
    if n <= 0:
        raise ValueError("n must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def geometric_run_length(rng: np.random.Generator, mean: float, cap: int) -> int:
    """A run length >= 1 with the given mean, capped at ``cap``."""
    if mean < 1:
        raise ValueError("mean run length must be at least 1")
    if cap < 1:
        raise ValueError("cap must be at least 1")
    p = 1.0 / mean
    return int(min(rng.geometric(p), cap))


def top_k_share(counts: list[int] | np.ndarray, k: int) -> float:
    """Fraction of all references absorbed by the ``k`` hottest items.

    ``counts`` need not be sorted; zeros are allowed.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    arr = np.asarray(counts, dtype=float)
    total = arr.sum()
    if total <= 0:
        return 0.0
    top = np.sort(arr)[::-1][:k]
    return float(top.sum() / total)


def sorted_counts(counts: dict[int, int]) -> list[int]:
    """Reference counts sorted descending — the Figure 5/7 curve."""
    return sorted(counts.values(), reverse=True)


def poisson_arrivals(
    rng: np.random.Generator,
    rate_per_ms: float,
    duration_ms: float,
    clump_mean: float = 1.0,
    clump_spread_ms: float = 200.0,
) -> list[float]:
    """Arrival times of a (possibly clumped) Poisson process.

    With ``clump_mean > 1`` the process is a Poisson cluster process:
    cluster centers arrive at ``rate / clump_mean`` and each center spawns a
    geometric number of arrivals spread over ``clump_spread_ms``.  This
    models the bursty multi-client request pattern the paper observed
    ("the request arrival pattern was very bursty", Section 5.2).
    """
    if rate_per_ms < 0:
        raise ValueError("rate must be non-negative")
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    if clump_mean < 1.0:
        raise ValueError("clump_mean must be at least 1")
    arrivals: list[float] = []
    center_rate = rate_per_ms / clump_mean
    t = 0.0
    while True:
        if center_rate <= 0:
            break
        t += rng.exponential(1.0 / center_rate)
        if t >= duration_ms:
            break
        size = int(rng.geometric(1.0 / clump_mean)) if clump_mean > 1 else 1
        for __ in range(size):
            offset = rng.uniform(0.0, clump_spread_ms) if size > 1 else 0.0
            when = t + offset
            if when < duration_ms:
                arrivals.append(when)
    arrivals.sort()
    return arrivals
