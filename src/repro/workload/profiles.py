"""Workload profiles: the *system* and *users* file systems of Section 5.

A :class:`WorkloadProfile` bundles every knob of the synthetic workload
generator.  The two presets are calibrated to the workload properties the
paper publishes rather than to any raw trace (which does not survive):

``SYSTEM_FS_PROFILE``
    The read-only *system* file system: executables and libraries mounted
    read-only over NFS by 14 workstations / ~40 users.  Reads follow a
    highly skewed, day-over-day *stable* file popularity (Figure 5; ~100
    blocks absorb ~90 % of requests, < 2000 blocks absorb all).  The only
    writes are the OS's own bookkeeping: i-node access-time updates plus
    superblock/cylinder-group summaries, flushed in bursts by the periodic
    update policy — "write requests were concentrated on a very small set
    of blocks" (Section 5.2).

``USERS_FS_PROFILE``
    The read/write *users* (home-directory) file system: a flatter block
    popularity (Figure 7), fewer users with little sharing, substantial
    day-to-day drift, and writes that include new-file creation and file
    extension — requests whose blocks did not exist the previous day and
    therefore cannot benefit from rearrangement (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .._compat import removed_alias


@dataclass(frozen=True)
class WorkloadProfile:
    """All knobs of the synthetic multi-day workload generator."""

    name: str

    # -- day structure --------------------------------------------------
    day_hours: float = 15.0  # monitoring window: 7am - 10pm (Section 5.1)

    # -- file-system content ---------------------------------------------
    num_directories: int = 24
    files_per_directory: int = 36
    mean_file_blocks: float = 6.0
    max_file_blocks: int = 48
    cylinders_per_group: int = 16
    inode_blocks_per_group: int = 1
    fs_interleave: int = 1  # FFS rotdelay, in blocks
    directory_placement: str = "scatter"  # or "first-fit" (see repro.fs.ufs)
    partition_band: str = "full"
    """Where the file system's partition sits on the (virtual) disk:
    ``"full"`` spans the whole disk (the *system* FS); ``"center"`` is a
    home partition in the middle band of the disk — the slice adjacent to
    the reserved cylinders, as on a disk whose outer partitions hold root
    and swap (the *users* FS)."""

    # -- read traffic -----------------------------------------------------
    read_sessions_per_hour: float = 400.0
    session_clump_mean: float = 2.0  # multi-client arrival clumping
    clump_spread_ms: float = 400.0
    single_block_read_prob: float = 0.72
    """Most disk reads on a busy NFS server are isolated misses (client and
    server caches absorb sequential re-reads); the rest are read-ahead runs."""
    user_locality: float = 0.0
    """Probability a session stays in the previous session's directory.
    Home-directory traffic is strongly user-local: a user works in one
    home for a while, then the head jumps to another user's home."""
    multi_run_mean: float = 3.5  # mean length of a sequential run (>= 2)
    think_ms: float = 2.0
    file_popularity_exponent: float = 1.1
    read_from_start_prob: float = 0.7  # else start at a random offset

    # -- write traffic ----------------------------------------------------
    open_sessions_per_hour: float = 0.0
    """File opens (stat/exec/lookup) whose data is served from the caches:
    they reach the disk only as i-node access-time updates at the next
    sync.  On a busy NFS server the open rate far exceeds the disk-read
    rate, which is why the measured write stream is both large and
    concentrated on very few (inode) blocks (Section 5.2)."""
    sync_interval_s: float = 30.0
    atime_updates: bool = True
    dir_atime_updates: bool = True
    """Whether path lookups also dirty the directory's inode.  True for the
    heavily shared *system* FS; home directories are looked up through the
    clients' attribute caches, so the *users* FS sees far fewer of these."""
    superblock_updates: bool = True
    edit_session_fraction: float = 0.0  # sessions that save (rewrite) a file
    edit_uniform_prob: float = 0.8
    """Probability an edit session targets a uniformly random file rather
    than a popularity-weighted one: users churn their own working
    documents while the hot shared read set stays in place."""
    new_files_per_day: int = 0
    new_file_mean_blocks: float = 6.0
    extend_sessions_per_day: int = 0
    extend_mean_blocks: float = 3.0

    # -- background spikes (cron and friends) ------------------------------
    spike_interval_s: float = 3600.0
    spike_reads: int = 30
    spike_writes: int = 20

    # -- day-to-day drift --------------------------------------------------
    popularity_reshuffle_fraction: float = 0.0

    # -- buffer cache -----------------------------------------------------
    cache_blocks: int = 1024
    use_cache_for_reads: bool = False

    @property
    def day_ms(self) -> float:
        return self.day_hours * 3_600_000.0

    def scaled(self, hours: float) -> "WorkloadProfile":
        """A copy with a shorter measurement day (for fast tests).

        Rates are unchanged — only the day length shrinks — so per-request
        statistics keep the same shape while the request count drops.
        Per-day totals (new files, extensions) scale proportionally.
        """
        if hours <= 0:
            raise ValueError("hours must be positive")
        factor = hours / self.day_hours
        return replace(
            self,
            day_hours=hours,
            new_files_per_day=max(
                0, round(self.new_files_per_day * factor)
            ),
            extend_sessions_per_day=max(
                0, round(self.extend_sessions_per_day * factor)
            ),
        )


SYSTEM_FS_PROFILE = WorkloadProfile(
    name="system",
    num_directories=12,
    files_per_directory=72,
    mean_file_blocks=6.0,
    max_file_blocks=48,
    read_sessions_per_hour=600.0,
    session_clump_mean=1.6,
    single_block_read_prob=0.80,
    multi_run_mean=3.0,
    file_popularity_exponent=1.8,
    open_sessions_per_hour=5000.0,
    sync_interval_s=30.0,
    atime_updates=True,
    superblock_updates=True,
    edit_session_fraction=0.0,
    new_files_per_day=0,
    popularity_reshuffle_fraction=0.02,
    spike_interval_s=1800.0,
    spike_reads=40,
    spike_writes=5,
)

USERS_FS_PROFILE = WorkloadProfile(
    name="users",
    num_directories=20,  # one home directory per user (Fujitsu config)
    files_per_directory=100,
    mean_file_blocks=6.0,
    max_file_blocks=40,
    cylinders_per_group=16,
    directory_placement="first-fit",
    partition_band="center",
    read_sessions_per_hour=220.0,
    session_clump_mean=1.3,
    single_block_read_prob=0.65,
    multi_run_mean=3.0,
    file_popularity_exponent=1.3,
    open_sessions_per_hour=50.0,
    sync_interval_s=30.0,
    atime_updates=True,
    dir_atime_updates=False,
    superblock_updates=False,
    edit_session_fraction=0.08,
    edit_uniform_prob=0.97,
    new_files_per_day=60,
    new_file_mean_blocks=5.0,
    extend_sessions_per_day=50,
    extend_mean_blocks=3.0,
    popularity_reshuffle_fraction=0.06,
    spike_interval_s=3600.0,
    spike_reads=10,
    spike_writes=5,
)

PROFILES = {
    SYSTEM_FS_PROFILE.name: SYSTEM_FS_PROFILE,
    USERS_FS_PROFILE.name: USERS_FS_PROFILE,
}


@removed_alias(base="profile")
def profile_for_disk(profile: WorkloadProfile, disk: str) -> WorkloadProfile:
    """Adapt a preset profile to the disk it runs on, as the paper did.

    The Fujitsu experiments served more data and users than the Toshiba
    ones (the *system* FS filled a 7.5x larger disk; the *users* FS held
    twenty home directories instead of ten, Section 5).  Unrecognized
    profile names are returned unchanged.
    """
    disk = disk.lower()
    if profile.name == "system" and disk == "fujitsu":
        return replace(
            profile,
            num_directories=30,
            read_sessions_per_hour=profile.read_sessions_per_hour * 1.5,
            open_sessions_per_hour=profile.open_sessions_per_hour * 1.5,
        )
    if profile.name == "users" and disk == "toshiba":
        return replace(profile, num_directories=10)
    if disk == "modern" and profile.name in PROFILES:
        # The synthetic ~8 GB drive serves a far larger tree than the
        # paper's servers: widen the directory fan-out and raise traffic
        # so a day's working set spans the multi-million-block device
        # (its 4 KB blocks also double every file's block count).
        return replace(
            profile,
            num_directories=profile.num_directories * 8,
            mean_file_blocks=profile.mean_file_blocks * 2,
            max_file_blocks=profile.max_file_blocks * 2,
            read_sessions_per_hour=profile.read_sessions_per_hour * 4,
            open_sessions_per_hour=profile.open_sessions_per_hour * 2,
        )
    return profile


def profile(name: str) -> WorkloadProfile:
    """Look up a preset profile by name (``"system"`` or ``"users"``)."""
    try:
        return PROFILES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown profile {name!r}; known: {known}") from None
