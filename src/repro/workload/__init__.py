"""Synthetic workload substrate: profiles, generation, and traces.

Replaces the paper's live NFS-server traffic with seeded, calibrated
generators reproducing the published workload properties (skew, bursty
writes, read/write mix, day-to-day drift)."""

from .distributions import (
    geometric_run_length,
    poisson_arrivals,
    sorted_counts,
    top_k_share,
    zipf_weights,
)
from .generator import DayWorkload, WorkloadGenerator
from .profiles import (
    PROFILES,
    SYSTEM_FS_PROFILE,
    USERS_FS_PROFILE,
    WorkloadProfile,
    profile,
)
from .tenancy import (
    SharedHotSet,
    TenancySpec,
    assign_tenants,
    device_load_shares,
    device_profiles,
    tenant_weights,
)
from .trace import dump_jobs, load_jobs, load_trace, save_trace

__all__ = [
    "DayWorkload",
    "PROFILES",
    "SYSTEM_FS_PROFILE",
    "SharedHotSet",
    "TenancySpec",
    "USERS_FS_PROFILE",
    "WorkloadGenerator",
    "WorkloadProfile",
    "assign_tenants",
    "device_load_shares",
    "device_profiles",
    "dump_jobs",
    "geometric_run_length",
    "load_jobs",
    "load_trace",
    "poisson_arrivals",
    "profile",
    "save_trace",
    "sorted_counts",
    "tenant_weights",
    "top_k_share",
    "zipf_weights",
]
