"""Trace serialization: save and reload generated workloads.

The paper's experiments are driven by live traffic; ours are driven by
generated workloads.  Persisting a day's jobs to a plain-text trace makes a
run exactly repeatable and lets users supply their own traces (e.g.
converted from real block traces) to the same experiment harness.

Format (one record per line, ``#`` comments allowed)::

    J <start_ms> <seq|batch> <name>
    S <r|w> <logical_block> <think_ms>

A ``J`` line opens a job; following ``S`` lines are its steps.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

from ..driver.request import Op
from ..sim.jobs import Job, Step


def dump_jobs(jobs: Iterable[Job], stream: TextIO) -> int:
    """Write jobs to ``stream``; returns the number of jobs written."""
    count = 0
    for job in jobs:
        mode = "seq" if job.sequential else "batch"
        name = job.name or "-"
        stream.write(f"J {job.start_ms!r} {mode} {name}\n")
        for step in job.steps:
            op = "r" if step.op is Op.READ else "w"
            stream.write(
                f"S {op} {step.logical_block} {step.think_ms!r}\n"
            )
        count += 1
    return count


def load_jobs(stream: TextIO) -> list[Job]:
    """Parse jobs back from a trace stream."""
    jobs: list[Job] = []
    current: dict | None = None

    def finish() -> None:
        nonlocal current
        if current is None:
            return
        if not current["steps"]:
            raise ValueError(
                f"job at {current['start_ms']} ms has no steps"
            )
        jobs.append(
            Job(
                start_ms=current["start_ms"],
                steps=current["steps"],
                sequential=current["sequential"],
                name=current["name"],
            )
        )
        current = None

    for line_no, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if fields[0] == "J":
            finish()
            if len(fields) != 4:
                raise ValueError(f"line {line_no}: malformed job record")
            name = None if fields[3] == "-" else fields[3]
            current = {
                "start_ms": float(fields[1]),
                "sequential": fields[2] == "seq",
                "name": name,
                "steps": [],
            }
        elif fields[0] == "S":
            if current is None:
                raise ValueError(f"line {line_no}: step before any job")
            if len(fields) != 4:
                raise ValueError(f"line {line_no}: malformed step record")
            op = Op.READ if fields[1] == "r" else Op.WRITE
            current["steps"].append(
                Step(
                    logical_block=int(fields[2]),
                    op=op,
                    think_ms=float(fields[3]),
                )
            )
        else:
            raise ValueError(f"line {line_no}: unknown record {fields[0]!r}")
    finish()
    return jobs


def save_trace(jobs: Iterable[Job], path: str | Path) -> int:
    """Save jobs to a trace file; returns the number of jobs written."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as stream:
        stream.write("# repro block-request trace\n")
        return dump_jobs(jobs, stream)


def load_trace(path: str | Path) -> list[Job]:
    """Load jobs from a trace file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as stream:
        return load_jobs(stream)
