"""Trace serialization: save and reload generated workloads.

The paper's experiments are driven by live traffic; ours are driven by
generated workloads.  Persisting a day's jobs to a plain-text trace makes a
run exactly repeatable and lets users supply their own traces (e.g.
converted from real block traces) to the same experiment harness.

Format (one record per line, ``#`` comments allowed)::

    J <start_ms> <seq|batch> <name>
    S <r|w> <logical_block> <think_ms>

A ``J`` line opens a job; following ``S`` lines are its steps.  The name
field is the rest of the ``J`` line: ``-`` means unnamed, and names that
would be ambiguous in that position — a literal ``-``, leading or
trailing whitespace, embedded newlines, or a leading double quote — are
written JSON-quoted and unquoted on load.  Every other name (embedded
spaces included) is written verbatim.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, TextIO

from ..driver.request import Op
from ..sim.jobs import Job, Step


def _encode_name(name: str | None) -> str:
    if name is None:
        return "-"
    if (
        name == ""
        or name == "-"
        or name != name.strip()
        or name.startswith('"')
        or "\n" in name
        or "\r" in name
    ):
        return json.dumps(name)
    return name


def _decode_name(field: str, line_no: int) -> str | None:
    if field == "-":
        return None
    if field.startswith('"'):
        try:
            name = json.loads(field)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"line {line_no}: bad quoted job name {field!r}: {exc}"
            ) from None
        if not isinstance(name, str):
            raise ValueError(
                f"line {line_no}: quoted job name is not a string: {field!r}"
            )
        return name
    return field


def dump_jobs(jobs: Iterable[Job], stream: TextIO) -> int:
    """Write jobs to ``stream``; returns the number of jobs written."""
    count = 0
    for job in jobs:
        mode = "seq" if job.sequential else "batch"
        stream.write(
            f"J {job.start_ms!r} {mode} {_encode_name(job.name)}\n"
        )
        for step in job.steps:
            op = "r" if step.op is Op.READ else "w"
            stream.write(
                f"S {op} {step.logical_block} {step.think_ms!r}\n"
            )
        count += 1
    return count


def load_jobs(stream: TextIO) -> list[Job]:
    """Parse jobs back from a trace stream."""
    jobs: list[Job] = []
    current: dict | None = None

    def finish() -> None:
        nonlocal current
        if current is None:
            return
        if not current["steps"]:
            raise ValueError(
                f"job at {current['start_ms']} ms has no steps"
            )
        jobs.append(
            Job(
                start_ms=current["start_ms"],
                steps=current["steps"],
                sequential=current["sequential"],
                name=current["name"],
            )
        )
        current = None

    def number(text: str, line_no: int, what: str) -> float:
        try:
            return float(text)
        except ValueError:
            raise ValueError(
                f"line {line_no}: bad {what} {text!r}"
            ) from None

    for line_no, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("J"):
            fields = line.split(maxsplit=3)
            if fields[0] != "J":
                raise ValueError(
                    f"line {line_no}: unknown record {fields[0]!r}"
                )
            finish()
            if len(fields) != 4:
                raise ValueError(f"line {line_no}: malformed job record")
            if fields[2] not in ("seq", "batch"):
                raise ValueError(
                    f"line {line_no}: unknown job mode {fields[2]!r} "
                    "(expected 'seq' or 'batch')"
                )
            current = {
                "start_ms": number(fields[1], line_no, "start time"),
                "sequential": fields[2] == "seq",
                "name": _decode_name(fields[3], line_no),
                "steps": [],
            }
            continue
        fields = line.split()
        if fields[0] == "S":
            if current is None:
                raise ValueError(f"line {line_no}: step before any job")
            if len(fields) != 4:
                raise ValueError(f"line {line_no}: malformed step record")
            if fields[1] == "r":
                op = Op.READ
            elif fields[1] == "w":
                op = Op.WRITE
            else:
                raise ValueError(
                    f"line {line_no}: unknown op {fields[1]!r} "
                    "(expected 'r' or 'w')"
                )
            try:
                block = int(fields[2])
            except ValueError:
                raise ValueError(
                    f"line {line_no}: bad block number {fields[2]!r}"
                ) from None
            current["steps"].append(
                Step(
                    logical_block=block,
                    op=op,
                    think_ms=number(fields[3], line_no, "think time"),
                )
            )
        else:
            raise ValueError(f"line {line_no}: unknown record {fields[0]!r}")
    finish()
    return jobs


def save_trace(jobs: Iterable[Job], path: str | Path) -> int:
    """Save jobs to a trace file; returns the number of jobs written."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as stream:
        stream.write("# repro block-request trace\n")
        return dump_jobs(jobs, stream)


def load_trace(path: str | Path) -> list[Job]:
    """Load jobs from a trace file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as stream:
        return load_jobs(stream)
