"""Command-line interface: run the paper's experiments from a shell.

Subcommands::

    python -m repro onoff    --disk toshiba --profile system --days 6
    python -m repro policies --disk toshiba --days 3 --workers 3
    python -m repro sweep    --disk toshiba --counts 10,50,100,1018
    python -m repro workload --profile system --out day0.trace
    python -m repro ingest   server.blktrace --mapping compact --out day0.trace
    python -m repro replay   day0.trace --disk toshiba [--rearrange]
    python -m repro trace    run.jsonl --disk toshiba
    python -m repro fleet    --devices 64 --workers 8 --progress
    python -m repro ssd      --profile users --days 3 --policy off
    python -m repro bench    [--quick] [--list] [--compare BASELINE.json]

``ingest`` converts a raw external block trace (blkparse text output or
MSR-Cambridge-style CSV) into the internal trace format that ``replay``
consumes — the full real-trace pipeline needs no Python at all.  See
``docs/traces.md`` for formats, mapping strategies and rescaling.

All commands accept ``--hours`` to shorten the measurement day (the paper
used 15-hour days) and ``--seed`` for reproducibility.  The experiment
and ``fleet`` commands accept ``--policy nightly|online|off`` (plus
``--idle-ms`` for online migration; see ``docs/online.md``).  ``onoff`` and
``replay`` accept ``--trace FILE`` to record every request-lifecycle
event as JSONL; the ``trace`` subcommand reduces such a file back to
per-device day metrics.  ``policies`` and ``sweep`` accept ``--workers``
to fan their independent campaigns across processes.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from .analysis.characterize import characterize, render_character
from .disk.label import DiskLabel
from .disk.models import disk_model
from .faults.spec import FaultSpecError, parse_fault_spec
from .obs import NULL_TRACER, JsonlTraceWriter, replay_day_metrics
from .sim.experiment import (
    ExperimentConfig,
    run_block_count_sweep,
    run_block_count_sweep_parallel,
    run_campaigns_parallel,
    run_onoff_campaign,
)
from .stats.metrics import seek_time_reduction_vs_fcfs, summarize_on_off
from .stats.report import (
    render_day,
    render_detail_table,
    render_onoff_table,
    render_sweep,
)
from .workload.generator import WorkloadGenerator
from .workload.profiles import PROFILES, profile_for_disk
from .workload.trace import load_trace, save_trace


DISK_CHOICES = ("toshiba", "fujitsu", "modern")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--disk", choices=DISK_CHOICES, default="toshiba"
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="system"
    )
    parser.add_argument(
        "--hours", type=float, default=None,
        help="length of a measurement day (default: the profile's 15h)",
    )
    parser.add_argument("--seed", type=int, default=1993)
    parser.add_argument(
        "--counter", choices=("exact", "spacesaving"), default="exact",
        help="analyzer counter strategy: exact per-block counts (the "
        "paper's setup) or a bounded Space-Saving top-k sketch "
        "(see docs/scaling.md)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="deterministic fault injection, e.g. "
        "'seed=7,transient=0.001,retries=3,crash=copy100,crash=day1@2h' "
        "(grammar in docs/faults.md)",
    )
    _add_policy(parser)


def _add_policy(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--policy", choices=("nightly", "online", "off"), default=None,
        help="when rearrangement runs: the nightly batch cycle (default), "
        "online incremental migration during idle windows "
        "(docs/online.md), or never",
    )
    parser.add_argument(
        "--idle-ms", type=float, default=None, metavar="MS",
        help="idle-gap length that opens a migration window "
        "(--policy online only; default 250)",
    )


def _policy_of(args):
    """Resolve --policy/--idle-ms into what ExperimentConfig expects."""
    policy = getattr(args, "policy", None)
    idle_ms = getattr(args, "idle_ms", None)
    if idle_ms is not None and policy != "online":
        raise SystemExit("--idle-ms only applies with --policy online")
    if policy == "online" and idle_ms is not None:
        from .policy import OnlinePolicy

        try:
            return OnlinePolicy(idle_ms=idle_ms)
        except ValueError as exc:
            raise SystemExit(f"bad --idle-ms: {exc}")
    return policy


def _config(args) -> ExperimentConfig:
    profile = PROFILES[args.profile]
    if args.hours is not None:
        profile = profile.scaled(hours=args.hours)
    faults = None
    if getattr(args, "faults", None):
        try:
            faults = parse_fault_spec(args.faults)
        except FaultSpecError as exc:
            raise SystemExit(f"bad --faults spec: {exc}")
    return ExperimentConfig(
        profile=profile,
        disk=args.disk,
        seed=args.seed,
        faults=faults,
        counter=getattr(args, "counter", "exact"),
        policy=_policy_of(args),
    )


def cmd_onoff(args) -> int:
    tracer = JsonlTraceWriter(args.trace) if args.trace else NULL_TRACER
    try:
        result = run_onoff_campaign(_config(args), days=args.days, tracer=tracer)
    finally:
        tracer.close()
    if args.trace:
        print(f"wrote {tracer.events_written} trace events -> {args.trace}\n")
    for day in result.days:
        print(render_day(day.metrics, args.disk))
    for scope in ("all", "read"):
        summary = summarize_on_off(result.metrics(), scope)
        print()
        print(
            render_onoff_table(
                [(args.disk.capitalize(), scope, summary)],
                f"On/Off summary ({scope} requests)",
            )
        )
    return 0


def cmd_policies(args) -> int:
    config = _config(args)
    schedule = [False] + [True] * (args.days - 1)
    tasks = [
        (policy, replace(config, placement_policy=policy), schedule)
        for policy in ("organ-pipe", "interleaved", "serial")
    ]
    columns = []
    rows = []
    for policy, result in run_campaigns_parallel(tasks, workers=args.workers):
        day = result.on_days()[-1].metrics
        columns.append((policy[:12], day.all))
        rows.append((policy, seek_time_reduction_vs_fcfs(day.all)))
    print(
        render_detail_table(
            columns, f"Placement policies on {args.disk} ({args.profile} FS)"
        )
    )
    print()
    for policy, reduction in rows:
        print(f"{policy:<14} seek reduction vs FCFS: {reduction:.0%}")
    return 0


def cmd_sweep(args) -> int:
    counts = [int(c) for c in args.counts.split(",")]
    if args.workers is not None and args.workers != 1:
        points = run_block_count_sweep_parallel(
            _config(args), counts, workers=args.workers
        )
    else:
        points = run_block_count_sweep(_config(args), counts)
    rows = []
    for count, day in points:
        m = day.metrics.all
        rows.append(
            (
                count,
                1 - m.mean_seek_distance / m.fcfs_mean_seek_distance,
                1 - m.mean_seek_time_ms / m.fcfs_mean_seek_time_ms,
            )
        )
    print(render_sweep(rows, f"Seek reduction vs blocks rearranged ({args.disk})"))
    return 0


def cmd_workload(args) -> int:
    model = disk_model(args.disk)
    label = DiskLabel(model.geometry, reserved_cylinders=48)
    partition = label.add_partition("fs0", label.virtual_total_blocks)
    profile = profile_for_disk(PROFILES[args.profile], args.disk)
    if args.hours is not None:
        profile = profile.scaled(hours=args.hours)
    generator = WorkloadGenerator(
        profile, partition, model.geometry.blocks_per_cylinder, seed=args.seed
    )
    workload = generator.generate_day()
    print(render_character(characterize(workload), f"{args.profile} day 0"))
    if args.out:
        count = save_trace(workload.jobs, args.out)
        print(f"\nwrote {count} jobs -> {args.out}")
    return 0


def cmd_ingest(args) -> int:
    from .traces import (
        TraceParseError,
        ingest_trace,
        matching_profile,
        render_trace_character,
        write_ingested,
    )

    try:
        result = ingest_trace(
            args.raw,
            format=args.format,
            mapping=args.mapping,
            disk=args.disk,
            target_blocks=args.target_blocks,
            source_span=args.source_span,
            time_scale=args.time_scale,
            loop=args.loop,
            gap_ms=args.gap_ms,
            limit=args.limit,
        )
    except (OSError, TraceParseError) as exc:
        raise SystemExit(f"ingest failed: {exc}")
    title = (
        f"{args.raw} ({result.mapping} -> {result.target_blocks} blocks, "
        f"{result.loop} loop, x{result.time_scale:g} time)"
    )
    print(render_trace_character(result.character, title))
    if result.wrapped:
        print(
            "warning: working set exceeds the target disk; "
            "compaction wrapped around",
            file=sys.stderr,
        )
    if args.show_profile:
        profile = matching_profile(result.character, args.profile)
        print(
            f"\nmatched profile (base {args.profile!r}): "
            f"day {profile.day_hours:.2f}h, "
            f"{profile.read_sessions_per_hour:.0f} read sessions/h, "
            f"{profile.open_sessions_per_hour:.0f} open sessions/h, "
            f"zipf {profile.file_popularity_exponent:.2f}, "
            f"single-block p {profile.single_block_read_prob:.2f}, "
            f"run mean {profile.multi_run_mean:.1f}"
        )
    if args.out:
        count = write_ingested(result, args.out)
        print(
            f"\nwrote {count} jobs ({result.requests} requests) "
            f"-> {args.out}"
        )
    return 0


def cmd_replay(args) -> int:
    from .traces import replay_jobs

    jobs = load_trace(args.trace)
    tracer = JsonlTraceWriter(args.out_trace) if args.out_trace else NULL_TRACER
    try:
        result = replay_jobs(
            jobs,
            disk=args.disk,
            queue=args.queue,
            rearrange=args.rearrange,
            num_blocks=args.blocks,
            tracer=tracer,
        )
    finally:
        tracer.close()
    if args.rearrange:
        print(f"rearranged {result.rearranged_blocks} blocks")
    if args.out_trace:
        print(f"wrote {tracer.events_written} trace events -> {args.out_trace}")
    m = result.metrics.all
    print(f"requests:     {result.completed}")
    print(f"mean seek:    {m.mean_seek_time_ms:.2f} ms")
    print(f"mean service: {m.mean_service_ms:.2f} ms")
    print(f"mean waiting: {m.mean_waiting_ms:.2f} ms")
    print(f"zero seeks:   {m.zero_seek_fraction:.0%}")
    return 0


def cmd_trace(args) -> int:
    models: dict[str, str] = {}
    if args.disks:
        for pair in args.disks.split(","):
            device, __, disk = pair.partition("=")
            if not disk:
                raise SystemExit(
                    f"--disks entries must look like device=model: {pair!r}"
                )
            models[device.strip()] = disk.strip()

    def seek_model_for(device: str):
        return disk_model(models.get(device, args.disk)).seek

    # Peek at the devices first so each gets its own geometry's seek model.
    from .obs import TraceScanStats, replay_monitors

    try:
        devices = sorted(replay_monitors(args.jsonl))
    except OSError as exc:
        raise SystemExit(f"cannot read trace: {exc}")
    if not devices:
        print("no request events in trace")
        return 1
    scan = TraceScanStats()
    try:
        per_device = replay_day_metrics(
            args.jsonl,
            {device: seek_model_for(device) for device in devices},
            day=args.day,
            rearranged=args.rearranged,
            stats=scan,
        )
    except ValueError as exc:
        raise SystemExit(
            f"replay failed: {exc}\n"
            "(multi-device traces usually need a per-device mapping, "
            "e.g. --disks toshiba0=toshiba,fujitsu0=fujitsu)"
        )
    for device in devices:
        print(render_day(per_device[device], device))
    if scan.malformed_lines:
        print(
            f"warning: skipped {scan.malformed_lines} malformed line(s) "
            f"(last at line {scan.last_malformed_lineno}) — trace tail "
            "may have been truncated by a crash",
            file=sys.stderr,
        )
    return 0


def cmd_fleet(args) -> int:
    from .faults.chaos import ChaosSpecError, parse_chaos_spec
    from .fleet import CheckpointError, FleetSpec, render_fleet, run_fleet
    from .obs import ShardProgress
    from .parallel import RetryPolicy, WorkerTaskError
    from .workload.tenancy import TenancySpec

    try:
        spec = FleetSpec(
            devices=args.devices,
            disk=args.disk,
            days=args.days,
            hours=args.hours,
            devices_per_shard=args.devices_per_shard,
            num_blocks=args.blocks,
            counter=args.counter,
            seed=args.seed,
            policy=_policy_of(args),
            tenancy=TenancySpec(
                tenants=args.tenants,
                tenant_skew=args.tenant_skew,
                hot_set_overlap=args.overlap,
                profile=args.profile,
            ),
        )
    except ValueError as exc:
        raise SystemExit(f"bad fleet spec: {exc}")
    chaos = None
    if args.chaos:
        try:
            chaos = parse_chaos_spec(args.chaos)
        except ChaosSpecError as exc:
            raise SystemExit(f"bad chaos spec: {exc}")
    retry = None
    if (
        args.retries != 1
        or args.task_timeout is not None
        or args.backoff > 0
    ):
        try:
            retry = RetryPolicy(
                max_attempts=args.retries,
                timeout_s=args.task_timeout,
                backoff_s=args.backoff,
                seed=spec.seed,
            )
        except ValueError as exc:
            raise SystemExit(f"bad retry policy: {exc}")
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume needs --checkpoint PATH to resume from")
    progress = (
        ShardProgress(spec.num_shards, what="fleet shard")
        if args.progress
        else None
    )
    try:
        result = run_fleet(
            spec,
            workers=args.workers,
            on_shard=progress,
            checkpoint=args.checkpoint,
            resume=args.resume,
            retry=retry,
            on_error=args.on_error,
            chaos=chaos,
            chunk_size=args.chunk_size,
            on_retry=progress.note_retry if progress else None,
            on_failure=progress.note_failure if progress else None,
        )
    except CheckpointError as exc:
        raise SystemExit(f"cannot resume: {exc}")
    except WorkerTaskError as exc:
        hint = (
            f"\n(completed shards are journaled in {args.checkpoint}; "
            "re-run with --resume to continue)"
            if args.checkpoint
            else "\n(re-run with --checkpoint PATH to make runs resumable, "
            "or --on-error degrade to finish with a partial result)"
        )
        raise SystemExit(f"fleet run failed: {exc}{hint}")
    if args.json:
        import json

        print(json.dumps(result.payload(), indent=2, sort_keys=True))
    else:
        print(render_fleet(result))
    return 1 if result.degraded and args.on_error != "skip" else 0


def cmd_ssd(args) -> int:
    from .driver.errors import DriverError
    from .sim.ssd import SsdConfig, SsdExperiment

    profile = PROFILES[args.profile]
    if args.hours is not None:
        profile = profile.scaled(hours=args.hours)
    try:
        config = SsdConfig(
            profile=profile,
            flash=args.flash,
            reference_disk=args.disk,
            seed=args.seed,
            policy=_policy_of(args),
            cmt_capacity=args.cmt_capacity,
            gc_policy=args.gc_policy,
            hot_threshold=args.hot_threshold,
            precondition=not args.no_precondition,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"bad ssd config: {exc}")
    tracer = JsonlTraceWriter(args.trace) if args.trace else NULL_TRACER
    try:
        try:
            experiment = SsdExperiment(config, tracer=tracer)
        except DriverError as exc:
            raise SystemExit(f"bad ssd config: {exc}")
        days = experiment.run_days(args.days)
    finally:
        tracer.close()
    if args.trace:
        print(f"wrote {tracer.events_written} trace events -> {args.trace}\n")
    separation = "on" if config.separation else "off"
    print(
        f"flash {args.flash} ({args.disk} span), gc {args.gc_policy}, "
        f"hot/cold separation {separation}"
    )
    header = (
        f"{'day':>3} {'reqs':>6} {'resp ms':>8} {'WA':>6} {'GC':>5} "
        f"{'moved':>6} {'cmt hit':>8} {'maxE':>5} {'meanE':>6}"
    )
    print(header)
    for day in days:
        print(
            f"{day.day:>3} {day.completed:>6} {day.mean_response_ms:>8.3f} "
            f"{day.write_amplification:>6.3f} {day.gc_runs:>5} "
            f"{day.gc_page_moves:>6} {day.cmt_hit_ratio:>8.3f} "
            f"{day.max_erase_count:>5} {day.mean_erase_count:>6.2f}"
        )
    host = sum(d.host_page_writes for d in days)
    flash = sum(d.flash_page_writes for d in days)
    if host:
        print(f"\noverall write amplification: {flash / host:.4f}")
    return 0


def cmd_bench(args) -> int:
    from .bench import (
        BenchError,
        compare_reports,
        get_scenarios,
        load_baseline,
        run_suite,
        write_baseline,
        write_report,
    )
    from .bench.runner import render_report_line, render_trajectory_lines
    from .bench.scenarios import SCENARIOS

    if args.list:
        width = max(len(name) for name in SCENARIOS)
        for scenario in SCENARIOS.values():
            print(f"{scenario.name:<{width}}  {scenario.description}")
        return 0
    names = args.scenarios.split(",") if args.scenarios else None
    try:
        scenarios = get_scenarios(names)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    if args.no_fast:
        # Force every simulation the scenarios construct out of the
        # batch kernel (best-effort for forked fleet workers, which
        # re-import the engine with the override unset).
        from .sim import engine as _engine

        _engine.FAST_OVERRIDE = False
    reports = run_suite(
        scenarios,
        quick=args.quick,
        repeat=args.repeat,
        measure_memory=not args.no_memory,
    )
    for report in reports:
        print(render_report_line(report))
        path = write_report(report, args.out)
        print(f"  -> {path}")
    if args.profile:
        # One extra untimed repetition per scenario under cProfile; the
        # dump lands next to the JSON artifact for pstats/snakeviz.
        import cProfile
        from pathlib import Path

        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for scenario in scenarios:
            profiler = cProfile.Profile()
            profiler.enable()
            scenario.run(args.quick)
            profiler.disable()
            path = out_dir / f"BENCH_{scenario.name}.pstats"
            profiler.dump_stats(path)
            print(f"profile -> {path}")
    if args.write_baseline:
        path = write_baseline(reports, args.write_baseline)
        print(f"baseline -> {path}")
    if args.compare:
        try:
            baseline = load_baseline(args.compare)
        except (OSError, ValueError, BenchError) as exc:
            raise SystemExit(f"cannot load baseline: {exc}")
        unknown = sorted(set(baseline.get("scenarios", {})) - set(SCENARIOS))
        if unknown:
            print(
                f"warning: baseline {args.compare} names scenario(s) "
                f"unknown to this build: {', '.join(unknown)} "
                "(renamed or removed? regenerate with --write-baseline)",
                file=sys.stderr,
            )
        trajectory = render_trajectory_lines(reports, baseline)
        if trajectory:
            print(f"\nthroughput vs {args.compare} (informational):")
            for line in trajectory:
                print(f"  {line}")
        problems = compare_reports(
            reports,
            baseline,
            threshold=args.threshold,
            mem_threshold=args.mem_threshold,
        )
        if problems:
            print(f"\nFAIL vs {args.compare}:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(
            f"\nOK vs {args.compare} (threshold {args.threshold:.0%}, "
            f"memory {args.mem_threshold:.0%})"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive block rearrangement experiments "
        "(Akyurek & Salem, ICDE 1993)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    onoff = sub.add_parser("onoff", help="alternating on/off campaign")
    _add_common(onoff)
    onoff.add_argument("--days", type=int, default=6)
    onoff.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write request-lifecycle events to FILE as JSONL",
    )
    onoff.set_defaults(func=cmd_onoff)

    policies = sub.add_parser("policies", help="placement-policy bake-off")
    _add_common(policies)
    policies.add_argument("--days", type=int, default=3)
    policies.add_argument(
        "--workers", type=int, default=None,
        help="processes for the three policy campaigns "
        "(default: one per campaign, up to the CPU count; results are "
        "identical to --workers 1)",
    )
    policies.set_defaults(func=cmd_policies)

    sweep = sub.add_parser("sweep", help="blocks-rearranged sweep (Fig. 8)")
    _add_common(sweep)
    sweep.add_argument("--counts", default="10,25,50,100,200,400,1018")
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="processes for the sweep; 1 (default) chains days exactly as "
        "the paper did, >1 runs each count as an independent two-day "
        "experiment concurrently (same curve, points differ slightly)",
    )
    sweep.set_defaults(func=cmd_sweep)

    workload = sub.add_parser(
        "workload", help="characterize a generated day; optionally save it"
    )
    _add_common(workload)
    workload.add_argument("--out", default=None, help="trace file to write")
    workload.set_defaults(func=cmd_workload)

    ingest = sub.add_parser(
        "ingest",
        help="convert an external block trace (blkparse/MSR CSV) for replay",
    )
    ingest.add_argument("raw", help="raw trace file (blkparse text or MSR CSV)")
    ingest.add_argument(
        "--format", choices=("auto", "blkparse", "msr"), default="auto",
        help="input format (default: sniff from the first record)",
    )
    ingest.add_argument(
        "--mapping", choices=("modulo", "linear", "compact"),
        default="compact",
        help="address-mapping strategy onto the simulated disk "
        "(see docs/traces.md)",
    )
    ingest.add_argument(
        "--disk", choices=DISK_CHOICES, default="toshiba",
        help="disk whose virtual size bounds the mapped addresses",
    )
    ingest.add_argument(
        "--target-blocks", type=int, default=None,
        help="override the mapped address-space size "
        "(default: the disk's virtual block count)",
    )
    ingest.add_argument(
        "--source-span", type=int, default=None,
        help="source address-space size for --mapping linear "
        "(default: measured with a streaming pre-pass)",
    )
    ingest.add_argument(
        "--time-scale", type=float, default=1.0,
        help="multiply inter-arrival times (0.1 compresses 10x)",
    )
    ingest.add_argument(
        "--loop", choices=("open", "closed"), default="open",
        help="open: replay arrivals verbatim; closed: fold bursts into "
        "think-time sessions",
    )
    ingest.add_argument(
        "--gap-ms", type=float, default=50.0,
        help="closed-loop session break (scaled inter-arrival gap)",
    )
    ingest.add_argument(
        "--limit", type=int, default=None,
        help="ingest only the first N records",
    )
    ingest.add_argument(
        "--profile", choices=sorted(PROFILES), default="system",
        help="base profile for --show-profile",
    )
    ingest.add_argument(
        "--show-profile", action="store_true",
        help="print the matching synthetic workload profile",
    )
    ingest.add_argument("--out", default=None, help="trace file to write")
    ingest.set_defaults(func=cmd_ingest)

    replay = sub.add_parser("replay", help="replay a saved trace")
    replay.add_argument("trace")
    replay.add_argument(
        "--disk", choices=DISK_CHOICES, default="toshiba"
    )
    replay.add_argument(
        "--queue", choices=("fcfs", "scan", "cscan", "sstf"), default="scan"
    )
    replay.add_argument(
        "--rearrange", action="store_true",
        help="pre-train rearrangement on the trace itself",
    )
    replay.add_argument("--blocks", type=int, default=1018)
    replay.add_argument(
        "--out-trace", default=None, metavar="FILE",
        help="write request-lifecycle events to FILE as JSONL",
    )
    replay.set_defaults(func=cmd_replay)

    trace = sub.add_parser(
        "trace", help="reduce a JSONL trace to per-device day metrics"
    )
    trace.add_argument("jsonl", help="trace file written by --trace")
    trace.add_argument(
        "--disk", choices=DISK_CHOICES, default="toshiba",
        help="disk model whose seek curve converts FCFS distances to times",
    )
    trace.add_argument(
        "--disks", default=None, metavar="DEV=MODEL[,DEV=MODEL...]",
        help="per-device disk models for multi-device traces "
        "(e.g. toshiba0=toshiba,fujitsu0=fujitsu)",
    )
    trace.add_argument("--day", type=int, default=0)
    trace.add_argument("--rearranged", action="store_true")
    trace.set_defaults(func=cmd_trace)

    fleet = sub.add_parser(
        "fleet",
        help="multi-device fleet run: sharded, multi-tenant, streaming "
        "aggregation (see docs/fleet.md)",
    )
    fleet.add_argument("--devices", type=int, default=64)
    fleet.add_argument("--disk", choices=DISK_CHOICES, default="fujitsu")
    fleet.add_argument(
        "--days", type=int, default=3,
        help="one training (off) day, then rearranged days",
    )
    fleet.add_argument(
        "--hours", type=float, default=None,
        help="length of each measurement day (default: the profile's 15h)",
    )
    fleet.add_argument(
        "--devices-per-shard", type=int, default=8,
        help="shard width; part of the spec (affects seeds), unlike "
        "--workers which never changes results",
    )
    fleet.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per shard up to the CPU "
        "count; results are identical at any value)",
    )
    fleet.add_argument("--tenants", type=int, default=256)
    fleet.add_argument(
        "--tenant-skew", type=float, default=1.1,
        help="Zipf exponent of per-tenant traffic shares",
    )
    fleet.add_argument(
        "--overlap", type=float, default=0.5,
        help="fraction of each device's hot set drawn from the "
        "fleet-wide shared hot set",
    )
    fleet.add_argument(
        "--profile", choices=sorted(PROFILES), default="system",
        help="base preset the per-device tenant profiles derive from",
    )
    fleet.add_argument(
        "--blocks", type=int, default=None,
        help="blocks each device rearranges nightly (default: the "
        "paper's per-model choice)",
    )
    fleet.add_argument(
        "--counter", choices=("exact", "spacesaving"), default="spacesaving",
        help="analyzer counter strategy (bounded sketch by default)",
    )
    fleet.add_argument("--seed", type=int, default=1993)
    _add_policy(fleet)
    fleet.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="shards per dispatch batch (default: tasks/(workers*4); "
        "1 gives the smoothest progress and earliest failure detection)",
    )
    fleet.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal each completed shard to this JSONL file "
        "(see docs/resilience.md)",
    )
    fleet.add_argument(
        "--resume", action="store_true",
        help="skip shards already journaled in --checkpoint; the "
        "finished run's digest is identical to an uninterrupted one",
    )
    fleet.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts per shard before giving up (default: 1 = no "
        "retries); retried attempts re-run the same seeds, so results "
        "never change",
    )
    fleet.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard deadline; stragglers are killed and re-dispatched "
        "(counts as one attempt)",
    )
    fleet.add_argument(
        "--backoff", type=float, default=0.0, metavar="SECONDS",
        help="base retry delay, doubled per attempt with seeded jitter",
    )
    fleet.add_argument(
        "--on-error", choices=("raise", "skip", "degrade"), default="raise",
        help="what exhausted shards do: fail the run, or drop the shard "
        "and return a partial result with a failed-shard manifest",
    )
    fleet.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="inject worker faults for testing, e.g. "
        "'seed=7,exception=0.2,exit=0.1,attempts=1' "
        "(see docs/resilience.md for the grammar)",
    )
    fleet.add_argument(
        "--progress", action="store_true",
        help="print a line per completed shard to stderr",
    )
    fleet.add_argument(
        "--json", action="store_true",
        help="print the full canonical result payload as JSON",
    )
    fleet.set_defaults(func=cmd_fleet)

    ssd = sub.add_parser(
        "ssd",
        help="run the paper's workloads through the page-mapped FTL: "
        "write amplification, GC, mapping cache, wear (docs/ftl.md)",
    )
    ssd.add_argument(
        "--profile", choices=sorted(PROFILES), default="users",
        help="workload preset (users has the hot/cold write mix that "
        "makes separation interesting)",
    )
    ssd.add_argument(
        "--disk", choices=DISK_CHOICES, default="toshiba",
        help="reference disk whose label defines the logical span — the "
        "workload stream is identical to a disk run on this model",
    )
    ssd.add_argument(
        "--flash", default="ssd",
        help="flash geometry preset (default: the 4-channel 'ssd')",
    )
    ssd.add_argument(
        "--hours", type=float, default=None,
        help="length of a measurement day (default: the profile's 15h)",
    )
    ssd.add_argument("--seed", type=int, default=1993)
    ssd.add_argument("--days", type=int, default=2)
    ssd.add_argument(
        "--gc-policy", choices=("greedy", "cost-benefit"), default="greedy",
        help="garbage-collection victim selection",
    )
    ssd.add_argument(
        "--cmt-capacity", type=int, default=8192, metavar="ENTRIES",
        help="cached-mapping-table capacity; misses cost translation-page "
        "reads from flash",
    )
    ssd.add_argument(
        "--hot-threshold", type=int, default=2, metavar="N",
        help="sketch count at which a page writes to the hot frontier",
    )
    ssd.add_argument(
        "--no-precondition", action="store_true",
        help="start from a fresh (never-written) drive; short days will "
        "not garbage-collect",
    )
    ssd.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write request-lifecycle + GC/mapping/wear events as JSONL",
    )
    _add_policy(ssd)
    ssd.set_defaults(func=cmd_ssd)

    bench = sub.add_parser(
        "bench", help="time the scenario suite; gate against a baseline"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="CI-sized day lengths (digests differ from full mode)",
    )
    bench.add_argument(
        "--list", action="store_true",
        help="list the scenarios with their descriptions and exit",
    )
    bench.add_argument(
        "--scenarios", default=None, metavar="NAME[,NAME...]",
        help="subset of scenarios to run (default: the full suite)",
    )
    bench.add_argument(
        "--repeat", type=int, default=1,
        help="repetitions per scenario; best wall-clock is reported",
    )
    bench.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for BENCH_<scenario>.json (default: repo root)",
    )
    bench.add_argument(
        "--compare", default=None, metavar="BASELINE.json",
        help="fail if a digest changed or a scenario slowed beyond "
        "--threshold vs this baseline",
    )
    bench.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="also write the combined baseline document to FILE",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.15,
        help="fractional slowdown tolerated by --compare (default 0.15)",
    )
    bench.add_argument(
        "--mem-threshold", type=float, default=0.25,
        help="fractional peak-memory growth tolerated by --compare "
        "(default 0.25)",
    )
    bench.add_argument(
        "--no-memory", action="store_true",
        help="skip the tracemalloc pass (faster; reports lack peak memory "
        "and --compare skips the memory check)",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="run one extra untimed repetition per scenario under "
        "cProfile and dump BENCH_<scenario>.pstats next to the JSON "
        "artifact",
    )
    bench.add_argument(
        "--no-fast", action="store_true",
        help="force the scalar engine (disable the batch simulation "
        "kernel) for every scenario; digests must not change",
    )
    bench.set_defaults(func=cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
