"""Analytic model of seek distance under static placements.

The paper grounds its heuristic in the classic result that, for
independent references from a fixed distribution, the *organ-pipe*
arrangement minimizes expected head travel ([Wong 80], [Grossman 73]).
This module provides the analytic machinery to check that claim
numerically for any reference distribution, and to predict the expected
seek distance of a placement — useful both as a design tool (how much
could rearrangement buy on this workload?) and as an oracle in tests.

Model: cylinder reference probabilities ``p[0..C-1]``; consecutive
requests independent; expected seek distance is

    E[d] = sum_{i,j} p[i] * p[j] * |i - j|
"""

from __future__ import annotations

import numpy as np


def normalize(weights) -> np.ndarray:
    """Validate and normalize a nonnegative weight vector."""
    arr = np.asarray(weights, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if (arr < 0).any():
        raise ValueError("weights must be non-negative")
    total = arr.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return arr / total


def expected_seek_distance(cylinder_probs) -> float:
    """E[|i - j|] for two independent references i, j ~ p.

    Computed in O(C) using prefix sums rather than the O(C^2) double sum:
    E|i-j| = 2 * sum_k F(k) * (1 - F(k)) where F is the CDF.
    """
    p = normalize(cylinder_probs)
    cdf = np.cumsum(p)[:-1]  # F(0..C-2); the last term contributes zero
    return float(2.0 * np.sum(cdf * (1.0 - cdf)))


def organ_pipe_arrangement(weights) -> list[int]:
    """Indices of ``weights`` arranged organ-pipe: the heaviest item in
    the center, then alternating right/left by decreasing weight.

    Returns a permutation ``order`` such that position ``k`` of the
    arrangement holds original item ``order[k]``.
    """
    arr = np.asarray(weights, dtype=float)
    n = arr.size
    ranked = sorted(range(n), key=lambda i: (-arr[i], i))
    center = n // 2
    placed = [center]
    left, right = center - 1, center + 1
    # For even n the center sits right of the midpoint, so the first
    # alternation step must go left; odd n is symmetric either way.
    take_right = n % 2 == 1
    while len(placed) < n:
        if take_right and right < n:
            placed.append(right)
            right += 1
        elif left >= 0:
            placed.append(left)
            left -= 1
        else:
            placed.append(right)
            right += 1
        take_right = not take_right
    order: list[int] = [0] * n
    for rank, position in enumerate(placed):
        order[position] = ranked[rank]
    return order


def arrange(weights, order) -> np.ndarray:
    """Apply a permutation: position k receives weight of item order[k]."""
    arr = np.asarray(weights, dtype=float)
    return arr[np.asarray(order, dtype=int)]


def expected_seek_distance_organ_pipe(weights) -> float:
    """Expected seek distance after organ-pipe arrangement of weights."""
    order = organ_pipe_arrangement(weights)
    return expected_seek_distance(arrange(weights, order))


def expected_seek_time(cylinder_probs, seek_model) -> float:
    """E[seektime(|i - j|)] under a seek-time function.

    O(C^2); fine for the sub-2000-cylinder disks modelled here.
    """
    p = normalize(cylinder_probs)
    n = p.size
    # Distribution of |i - j| via correlation of p with itself.
    total = 0.0
    # P(|i-j| = d) = sum_i p[i] * (p[i+d] + p[i-d]) for d > 0
    conv = np.correlate(p, p, mode="full")  # lags -(n-1)..(n-1)
    zero_lag = n - 1
    time = seek_model.time
    total += conv[zero_lag] * time(0)
    for d in range(1, n):
        prob = conv[zero_lag + d] + conv[zero_lag - d]
        if prob > 0:
            total += prob * time(d)
    return float(total)


def zero_seek_probability(cylinder_probs) -> float:
    """P(two consecutive independent references hit the same cylinder)."""
    p = normalize(cylinder_probs)
    return float(np.sum(p * p))
