"""Analytic companions to the simulator.

:mod:`organpipe` carries the Wong/Grossman expected-seek machinery behind
the paper's placement heuristic; :mod:`characterize` reduces workloads to
the statistics Section 5 reasons with.  The trace-side characterizer
(:class:`~repro.traces.characterize.TraceCharacter` and friends) is
re-exported here so generated and ingested workloads are analyzed from
one namespace; an ingested trace's :meth:`~repro.traces.ingest.
IngestResult.workload` feeds :func:`characterize` and
:func:`cylinder_reference_distribution` directly."""

from ..traces.characterize import (
    TraceCharacter,
    characterize_records,
    matching_profile,
    render_trace_character,
)
from .characterize import (
    WorkloadCharacter,
    characterize,
    cylinder_reference_distribution,
    render_character,
)
from .organpipe import (
    arrange,
    expected_seek_distance,
    expected_seek_distance_organ_pipe,
    expected_seek_time,
    normalize,
    organ_pipe_arrangement,
    zero_seek_probability,
)

__all__ = [
    "TraceCharacter",
    "WorkloadCharacter",
    "arrange",
    "characterize",
    "characterize_records",
    "cylinder_reference_distribution",
    "matching_profile",
    "expected_seek_distance",
    "expected_seek_distance_organ_pipe",
    "expected_seek_time",
    "normalize",
    "organ_pipe_arrangement",
    "render_character",
    "render_trace_character",
    "zero_seek_probability",
]
