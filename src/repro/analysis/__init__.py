"""Analytic companions to the simulator.

:mod:`organpipe` carries the Wong/Grossman expected-seek machinery behind
the paper's placement heuristic; :mod:`characterize` reduces workloads to
the statistics Section 5 reasons with."""

from .characterize import (
    WorkloadCharacter,
    characterize,
    cylinder_reference_distribution,
    render_character,
)
from .organpipe import (
    arrange,
    expected_seek_distance,
    expected_seek_distance_organ_pipe,
    expected_seek_time,
    normalize,
    organ_pipe_arrangement,
    zero_seek_probability,
)

__all__ = [
    "WorkloadCharacter",
    "arrange",
    "characterize",
    "cylinder_reference_distribution",
    "expected_seek_distance",
    "expected_seek_distance_organ_pipe",
    "expected_seek_time",
    "normalize",
    "organ_pipe_arrangement",
    "render_character",
    "zero_seek_probability",
]
