"""Workload characterization: the properties the paper reports.

Reduces a generated (or traced) day to the statistics Section 5 uses to
explain its results: reference skew, read/write mix, write-burst depth,
and cylinder-level concentration.  Used to calibrate the synthetic
profiles against the paper's published workload descriptions, and
exported because the same questions arise for any user-supplied trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..disk.geometry import DiskGeometry
from ..workload.distributions import top_k_share
from ..workload.generator import DayWorkload


@dataclass(frozen=True)
class WorkloadCharacter:
    """One day's workload, summarized the way Section 5 talks about it."""

    requests: int
    reads: int
    writes: int
    distinct_blocks: int
    top_100_share: float
    top_1018_share: float
    read_top_100_share: float
    write_distinct_blocks: int
    write_top_30_share: float
    mean_write_burst: float
    max_write_burst: int

    @property
    def write_fraction(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.writes / self.requests


def characterize(workload: DayWorkload) -> WorkloadCharacter:
    """Summarize a generated day."""
    all_counts = list(workload.all_counts.values())
    read_counts = list(workload.read_counts.values())
    write_counts = [
        workload.all_counts[b] - workload.read_counts.get(b, 0)
        for b in workload.all_counts
    ]
    write_counts = [c for c in write_counts if c > 0]
    bursts = [
        job.num_requests for job in workload.jobs if job.name == "sync"
    ]
    return WorkloadCharacter(
        requests=workload.num_requests,
        reads=workload.num_reads,
        writes=workload.num_writes,
        distinct_blocks=len(all_counts),
        top_100_share=top_k_share(all_counts, 100),
        top_1018_share=top_k_share(all_counts, 1018),
        read_top_100_share=top_k_share(read_counts, 100),
        write_distinct_blocks=len(write_counts),
        write_top_30_share=top_k_share(write_counts, 30),
        mean_write_burst=float(np.mean(bursts)) if bursts else 0.0,
        max_write_burst=max(bursts) if bursts else 0,
    )


def cylinder_reference_distribution(
    workload: DayWorkload, geometry: DiskGeometry, virtual_to_physical=None
) -> np.ndarray:
    """Reference probability per physical cylinder.

    ``virtual_to_physical`` maps logical (virtual-disk) blocks to physical
    blocks; identity when omitted.  Feed the result to
    :mod:`repro.analysis.organpipe` to predict seek behaviour analytically.
    """
    probs = np.zeros(geometry.cylinders)
    for block, count in workload.all_counts.items():
        physical = (
            virtual_to_physical(block) if virtual_to_physical else block
        )
        probs[geometry.cylinder_of_block(physical)] += count
    total = probs.sum()
    if total > 0:
        probs /= total
    return probs


def render_character(character: WorkloadCharacter, title: str) -> str:
    """One-screen text summary."""
    lines = [
        title,
        "=" * max(len(title), 44),
        f"requests:               {character.requests:>8}"
        f"  (reads {character.reads}, writes {character.writes},"
        f" {character.write_fraction:.0%} writes)",
        f"distinct blocks:        {character.distinct_blocks:>8}",
        f"top-100 share:          {character.top_100_share:>8.1%}",
        f"top-1018 share:         {character.top_1018_share:>8.1%}",
        f"reads top-100 share:    {character.read_top_100_share:>8.1%}",
        f"distinct write targets: {character.write_distinct_blocks:>8}",
        f"writes top-30 share:    {character.write_top_30_share:>8.1%}",
        f"mean sync burst:        {character.mean_write_burst:>8.1f} blocks"
        f"  (max {character.max_write_burst})",
    ]
    return "\n".join(lines)
