#!/usr/bin/env python3
"""A guided tour of the adaptive driver's low-level API.

Walks through the mechanics of Section 4 step by step: labeling a disk
with hidden reserved cylinders, serving requests through the strategy
routine, monitoring the stream, moving a hot block with ``DKIOCBCOPY``,
transparent redirection, dirty-bit handling, crash recovery, and
``DKIOCCLEAN``.

Usage::

    python examples/adaptive_driver_tour.py
"""

from repro import (
    AdaptiveDiskDriver,
    Disk,
    DiskLabel,
    IoctlInterface,
    ReferenceStreamAnalyzer,
    TOSHIBA_MK156F,
)
from repro.driver import read_request, write_request


def serve(driver, request):
    """Submit one request and spin the disk until it completes."""
    completion = driver.strategy(request, request.arrival_ms)
    while completion is not None:
        done, completion = driver.complete(completion)
    return request


def main() -> None:
    print("1. Label the disk: hide 48 cylinders in the middle.")
    label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
    print(
        f"   physical: {TOSHIBA_MK156F.geometry.cylinders} cylinders; "
        f"virtual: {label.virtual_cylinders} cylinders; reserved "
        f"cylinders {label.reserved_start_cylinder}-"
        f"{label.reserved_end_cylinder - 1} "
        f"({label.reserved_capacity_blocks()} blocks of reserved space)"
    )

    driver = AdaptiveDiskDriver(disk=Disk(TOSHIBA_MK156F), label=label)
    ioctl = IoctlInterface(driver)
    hot_block = 4242

    print("\n2. Write then read the block through the strategy routine.")
    write = serve(driver, write_request(hot_block, 0.0, tag="version-1"))
    print(
        f"   write landed on physical block {write.target_block} "
        f"(cylinder {driver.disk.cylinder_of_block(write.target_block)}), "
        f"service {write.service_ms:.2f} ms"
    )
    for i in range(4):
        read = serve(driver, read_request(hot_block, 100.0 * (i + 1)))
    print(f"   4 reads served; last seek {read.seek_ms:.2f} ms")

    print("\n3. The analyzer estimates frequencies from the request table.")
    analyzer = ReferenceStreamAnalyzer()
    analyzer.poll(ioctl)
    (top_block, count), *__ = analyzer.hot_blocks(1)
    print(f"   hottest block: {top_block} with {count} references")

    print("\n4. DKIOCBCOPY moves it to the center of the reserved area.")
    center = label.reserved_center_cylinder()
    destination = TOSHIBA_MK156F.geometry.blocks_of_cylinder(center)[0]
    finish = ioctl.bcopy(top_block, destination, now_ms=1000.0)
    print(
        f"   copied to block {destination} (cylinder {center}) "
        f"in {finish - 1000.0:.1f} ms; "
        f"{driver.io_counter.total} I/O operations so far"
    )

    print("\n5. Requests are transparently redirected.")
    read = serve(driver, read_request(hot_block, 2000.0))
    print(
        f"   read of logical {hot_block} -> physical {read.target_block} "
        f"(redirected={read.redirected}), data: {driver.read_data(hot_block)!r}"
    )

    print("\n6. A write dirties the reserved copy (dirty bit in the table).")
    serve(driver, write_request(hot_block, 3000.0, tag="version-2"))
    entry = driver.block_table.lookup(read.physical_block)
    print(f"   dirty={entry.dirty}; data now {driver.read_data(hot_block)!r}")

    print("\n7. Crash! The in-memory table is lost; attach() recovers it.")
    driver.block_table.crash()
    driver.attach()
    entry = driver.block_table.lookup(read.physical_block)
    print(
        f"   recovered entry -> reserved block {entry.reserved_block}, "
        f"conservatively dirty={entry.dirty}"
    )

    print("\n8. DKIOCCLEAN copies the dirty block home and empties the area.")
    ioctl.clean(now_ms=5000.0)
    print(
        f"   table entries: {len(driver.block_table)}; "
        f"data at original location: {driver.read_data(hot_block)!r}"
    )
    assert driver.read_data(hot_block) == "version-2"
    print("\nAll updates survived rearrangement, crash, and clean-out.")


if __name__ == "__main__":
    main()
