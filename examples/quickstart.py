#!/usr/bin/env python3
"""Quickstart: does adaptive block rearrangement help?

Runs a four-day on/off campaign (alternating days with and without
rearrangement) of the paper's *system* file-system workload on the
simulated Toshiba MK156F, then prints the paper-style summary.

Usage::

    python examples/quickstart.py [toshiba|fujitsu]
"""

import sys

from repro.api import make_config, run_campaign
from repro.stats import render_day, render_onoff_table, summarize_on_off


def main() -> None:
    disk = sys.argv[1] if len(sys.argv) > 1 else "toshiba"

    # A two-hour measurement day keeps the demo quick; use the full
    # profile (15 h days) for paper-fidelity numbers.
    config = make_config("system", disk, hours=2.0, seed=2026)
    print(f"Simulating 4 alternating days on the {disk} disk...")
    result = run_campaign(config, days=4)

    for day in result.days:
        print(render_day(day.metrics, disk))

    summary = summarize_on_off(result.metrics())
    print()
    print(
        render_onoff_table(
            [(disk.capitalize(), "all", summary)],
            "On/Off summary (daily means, ms)",
        )
    )
    print()
    print(f"Seek-time reduction:    {summary.seek_reduction:.0%}")
    print(f"Service-time reduction: {summary.service_reduction:.0%}")
    print(f"Waiting-time reduction: {summary.waiting_reduction:.0%}")


if __name__ == "__main__":
    main()
