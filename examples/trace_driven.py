#!/usr/bin/env python3
"""Trace-driven simulation with a custom workload profile.

Shows the pieces a downstream user needs for their own studies:

1. define a custom :class:`WorkloadProfile` (here: a mail-spool-like
   workload with heavy overwrite traffic),
2. generate a day, save it to a plain-text trace, and reload it,
3. replay the *same* trace through two driver configurations (FCFS vs
   SCAN queueing, rearrangement off vs on) and compare.

Usage::

    python examples/trace_driven.py [trace-path]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    AdaptiveDiskDriver,
    Disk,
    DiskLabel,
    IoctlInterface,
    Simulation,
    TOSHIBA_MK156F,
    WorkloadGenerator,
    WorkloadProfile,
    make_queue,
)
from repro.core import BlockArranger, HotBlockList, ReferenceStreamAnalyzer
from repro.workload import load_trace, save_trace

MAIL_SPOOL = WorkloadProfile(
    name="mail-spool",
    day_hours=1.0,
    num_directories=8,
    files_per_directory=50,
    mean_file_blocks=3.0,
    read_sessions_per_hour=900.0,
    single_block_read_prob=0.6,
    file_popularity_exponent=1.4,
    open_sessions_per_hour=1200.0,
    edit_session_fraction=0.2,
    edit_uniform_prob=0.5,
    sync_interval_s=30.0,
    spike_interval_s=600.0,
    spike_reads=15,
    spike_writes=10,
)


def replay(jobs, queue_policy, rearrange):
    """Replay a trace; optionally pre-train rearrangement on it."""
    label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
    driver = AdaptiveDiskDriver(
        disk=Disk(TOSHIBA_MK156F),
        label=label,
        queue=make_queue(queue_policy),
    )
    if rearrange:
        # Count the trace's references, then place the hottest blocks.
        analyzer = ReferenceStreamAnalyzer()
        for job in jobs:
            for step in job.steps:
                analyzer.observe(step.logical_block)
        arranger = BlockArranger(IoctlInterface(driver))
        hot = HotBlockList.from_pairs(analyzer.hot_blocks())
        plan, __ = arranger.rearrange(hot, num_blocks=1018, now_ms=0.0)
        print(f"   rearranged {len(plan)} blocks")
        driver.perf_monitor.read_and_clear()

    simulation = Simulation(driver)
    simulation.add_jobs(jobs)
    completed = simulation.run()
    stats = driver.perf_monitor.stats("all")
    seek = TOSHIBA_MK156F.seek.mean_time(stats.scheduled_seek.buckets)
    return {
        "requests": len(completed),
        "seek_ms": seek,
        "service_ms": stats.service.mean_ms,
        "waiting_ms": stats.queueing.mean_ms,
        "zero_seeks": stats.scheduled_seek.zero_fraction,
    }


def main() -> None:
    if len(sys.argv) > 1:
        trace_path = Path(sys.argv[1])
    else:
        trace_path = Path(tempfile.gettempdir()) / "mail_spool.trace"

    label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
    partition = label.add_partition("fs0", label.virtual_total_blocks)
    generator = WorkloadGenerator(
        MAIL_SPOOL,
        partition,
        TOSHIBA_MK156F.geometry.blocks_per_cylinder,
        seed=99,
    )
    workload = generator.generate_day()
    count = save_trace(workload.jobs, trace_path)
    print(
        f"Generated {workload.num_requests} requests in {count} jobs "
        f"-> {trace_path}"
    )

    jobs = load_trace(trace_path)
    print(f"Reloaded {len(jobs)} jobs; replaying four configurations:\n")

    header = (
        f"{'configuration':<26}{'seek ms':>9}{'service':>9}"
        f"{'waiting':>9}{'zero':>7}"
    )
    print(header)
    print("-" * len(header))
    for queue_policy in ("fcfs", "scan"):
        for rearrange in (False, True):
            name = f"{queue_policy} {'+ rearrangement' if rearrange else '(plain)'}"
            stats = replay(jobs, queue_policy, rearrange)
            print(
                f"{name:<26}{stats['seek_ms']:>9.2f}"
                f"{stats['service_ms']:>9.1f}{stats['waiting_ms']:>9.1f}"
                f"{stats['zero_seeks']:>6.0%}"
            )
    print(
        "\nSCAN helps on its own; rearrangement helps under either "
        "discipline; together they compound."
    )


if __name__ == "__main__":
    main()
