#!/usr/bin/env python3
"""A week in the life of an adaptive NFS file server.

Replays the paper's headline experiment: a shared read-mostly *system*
file system served for six alternating days (off, on, off, on, ...) and a
*users* home-directory file system for comparison, on the disk of your
choice.  Prints the daily log, the on/off summary, a service-time CDF,
and the block-access distribution that makes it all work.

Usage::

    python examples/nfs_server_week.py [toshiba|fujitsu] [hours-per-day]
"""

import sys

from repro import (
    ExperimentConfig,
    SYSTEM_FS_PROFILE,
    USERS_FS_PROFILE,
    run_onoff_campaign,
)
from repro.stats import (
    render_access_distribution,
    render_day,
    render_onoff_table,
    render_service_cdf,
    summarize_on_off,
)
from repro.workload import sorted_counts, top_k_share


def run_week(profile, disk, hours, seed=7):
    config = ExperimentConfig(
        profile=profile.scaled(hours=hours), disk=disk, seed=seed
    )
    print(f"\n=== {profile.name} file system on {disk} "
          f"({hours:g}h days) ===")
    result = run_onoff_campaign(config, days=6)
    for day in result.days:
        print(render_day(day.metrics, disk))
    return result


def main() -> None:
    disk = sys.argv[1] if len(sys.argv) > 1 else "toshiba"
    hours = float(sys.argv[2]) if len(sys.argv) > 2 else 3.0

    system = run_week(SYSTEM_FS_PROFILE, disk, hours)
    users = run_week(USERS_FS_PROFILE, disk, hours)

    rows = [
        (f"{disk}/system", "all", summarize_on_off(system.metrics())),
        (f"{disk}/users", "all", summarize_on_off(users.metrics())),
    ]
    print()
    print(render_onoff_table(rows, "Weekly on/off summary (daily means)"))

    # Why it works: the skew of the system FS request distribution.
    off_day = system.off_days()[-1]
    counts = sorted_counts(off_day.all_counts)
    print()
    print(
        render_access_distribution(
            [("system FS, all requests", counts)],
            "Block access distribution (one off day)",
        )
    )
    print(
        f"Top-100 blocks absorb {top_k_share(counts, 100):.0%} of requests "
        f"({len(counts)} distinct blocks touched)."
    )

    # What the clients feel: the service-time distribution.
    off_hist = system.off_days()[-1].metrics.all.service_histogram
    on_hist = system.on_days()[-1].metrics.all.service_histogram
    print()
    print(
        render_service_cdf(
            [("off", off_hist), ("on", on_hist)],
            "Service-time CDF, system FS",
        )
    )


if __name__ == "__main__":
    main()
