#!/usr/bin/env python3
"""Mid-rearrangement crash, recovery, and graceful degradation.

The paper's server had to survive power failures in the middle of the
nightly rearrangement (Section 4.1.2): the block table's on-disk copy in
the reserved area always correctly lists the rearranged blocks, so after
a crash the table is re-read with every entry conservatively marked
dirty and no update is ever lost.  This example stages that exact
scenario with the fault injector, then shows the two robustness paths
around it: a crash during the measurement day (with NFS-style client
retries) and the health monitor downgrading the nightly cycle on a disk
that is throwing errors.

Usage::

    python examples/crash_recovery.py [hours-per-day]
"""

import sys

from repro import (
    BlockTableInvariants,
    Experiment,
    ExperimentConfig,
    FaultPlan,
    SYSTEM_FS_PROFILE,
)


def make_experiment(plan: FaultPlan, hours: float) -> Experiment:
    return Experiment(
        ExperimentConfig(
            profile=SYSTEM_FS_PROFILE.scaled(hours=hours),
            disk="toshiba",
            seed=1993,
            num_blocks=64,
            faults=plan,
        )
    )


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2

    print("1. Crash the machine after 40 of tonight's 64 block copies.")
    plan = FaultPlan(seed=7, crash_after_copies=(40,))
    experiment = make_experiment(plan, hours)
    experiment.run_day(rearranged=False, rearrange_tomorrow=True)
    driver = experiment.driver
    entries = driver.block_table.entries()
    print(
        f"   crash survived: {experiment.controller.crash_recoveries} "
        f"recovery, {len(entries)} of 64 entries survive (the copies that "
        "completed), remaining moves abandoned"
    )
    print(
        f"   every surviving entry dirty: "
        f"{all(entry.dirty for entry in entries)}"
    )
    BlockTableInvariants(driver.label).check_recovery(driver.block_table)
    print("   invariant checker: recovered table matches the on-disk copy")

    print("\n2. The partially rearranged disk still serves the next day.")
    day = experiment.run_day(rearranged=True, rearrange_tomorrow=False)
    print(
        f"   {day.metrics.all.requests} requests, mean seek "
        f"{day.metrics.all.mean_seek_time_ms:.2f} ms (partial arrangement "
        "still beats none)"
    )

    print("\n3. A daytime crash: lost requests are resubmitted by clients.")
    plan = FaultPlan(seed=7, crash_times=((0, 60_000.0),))
    experiment = make_experiment(plan, hours)
    day = experiment.run_day(rearranged=False, rearrange_tomorrow=False)
    stats = experiment.driver.fault_stats
    print(
        f"   crashes={stats.crashes} recoveries={stats.recoveries}; "
        f"all {day.metrics.all.requests} requests completed"
    )

    print("\n4. Health monitor: a noisy disk degrades the nightly cycle.")
    plan = FaultPlan(
        seed=7,
        transient_rate=0.2,
        max_retries=2,
        degrade_threshold=0.05,
        degrade_action="skip",
    )
    experiment = make_experiment(plan, hours)
    experiment.run_day(rearranged=False, rearrange_tomorrow=True)
    controller = experiment.controller
    print(
        f"   degraded nights: {controller.degraded_days} (error rate over "
        "5% threshold, rearrangement skipped on the suspect device)"
    )

    print("\nCrash recovery kept every update; degradation kept the disk sane.")


if __name__ == "__main__":
    main()
