#!/usr/bin/env python3
"""Placement-policy bake-off: organ-pipe vs interleaved vs serial.

Reproduces the Section 5.5 comparison on a short campaign: one training
day, then two rearranged days per policy.  Shows why frequency-aware
placement matters (serial collapses the zero-length-seek share) and why
the paper settles on organ-pipe (interleaved only wins a fraction of a
millisecond of rotational latency).

Usage::

    python examples/placement_policy_bakeoff.py [toshiba|fujitsu]
"""

import sys

from repro import ExperimentConfig, SYSTEM_FS_PROFILE
from repro.sim import run_policy_campaign
from repro.stats import render_detail_table
from repro.stats.metrics import seek_time_reduction_vs_fcfs

POLICIES = ("organ-pipe", "interleaved", "serial")


def main() -> None:
    disk = sys.argv[1] if len(sys.argv) > 1 else "toshiba"
    config = ExperimentConfig(
        profile=SYSTEM_FS_PROFILE.scaled(hours=3.0), disk=disk, seed=17
    )

    columns = []
    print(f"Running three policy campaigns on {disk} (3 days each)...")
    results = {}
    for policy in POLICIES:
        result = run_policy_campaign(config, policy, days=3)
        day = result.on_days()[-1].metrics
        results[policy] = day
        columns.append((policy[:12], day.all))

    print()
    print(
        render_detail_table(
            columns, f"Placement policies on {disk} (all requests)"
        )
    )

    print()
    header = (
        f"{'policy':<14}{'seek red. vs FCFS':>18}{'zero seeks':>12}"
        f"{'rot+xfer (reads)':>18}"
    )
    print(header)
    print("-" * len(header))
    for policy in POLICIES:
        day = results[policy]
        reduction = seek_time_reduction_vs_fcfs(day.all)
        print(
            f"{policy:<14}{reduction:>17.0%}"
            f"{day.all.zero_seek_percent:>11.0f}%"
            f"{day.read.mean_rotation_plus_transfer_ms:>17.2f}m"
        )

    organ = results["organ-pipe"].all
    serial = results["serial"].all
    print()
    print(
        f"Serial placement costs "
        f"{serial.mean_seek_time_ms - organ.mean_seek_time_ms:.1f} ms of "
        "extra seek per request versus organ-pipe: reference counts must "
        "drive placement, not just selection."
    )


if __name__ == "__main__":
    main()
