#!/usr/bin/env python3
"""Two file systems, one disk, one reserved area.

Section 4.1.1: a disk may hold several partitions and file systems, but
the driver implements a *single* reserved region, "and blocks from any of
the file systems may be copied there."  This example hosts the *system*
and a (downsized) *users* file system on one Toshiba disk and lets their
hot blocks compete for the shared reserved cylinders.

Usage::

    python examples/shared_disk.py [hours-per-day]
"""

import dataclasses
import sys

from repro import SYSTEM_FS_PROFILE, USERS_FS_PROFILE
from repro.sim import FileSystemSpec, MultiFSExperiment
from repro.stats import render_day


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0

    users = dataclasses.replace(
        USERS_FS_PROFILE.scaled(hours=hours),
        num_directories=8,
        files_per_directory=40,
        mean_file_blocks=4.0,
    )
    experiment = MultiFSExperiment(
        [
            FileSystemSpec(SYSTEM_FS_PROFILE.scaled(hours=hours), fraction=0.6),
            FileSystemSpec(users, fraction=0.4, seed=77),
        ],
        disk="toshiba",
    )
    print("Partitions on the shared disk:")
    for partition in experiment.partitions:
        print(
            f"  {partition.name:<14} blocks "
            f"{partition.start_block:>6}..{partition.end_block - 1}"
        )

    print("\nDay 0 (off) — monitoring both file systems:")
    off = experiment.run_day(rearranged=False, rearrange_tomorrow=True)
    print(render_day(off.metrics, "shared"))
    for name, count in off.per_fs_requests.items():
        print(f"  {name:<14} {count:>6} requests")

    print("\nDay 1 (on) — the reserved area serves both:")
    on = experiment.run_day(rearranged=True, rearrange_tomorrow=False)
    print(render_day(on.metrics, "shared"))
    print(f"  blocks in the shared reserved area: {on.rearranged_blocks}")
    for name, count in sorted(on.rearranged_per_fs.items()):
        print(f"  {name:<14} {count:>6} rearranged blocks")

    reduction = 1 - (
        on.metrics.all.mean_seek_time_ms / off.metrics.all.mean_seek_time_ms
    )
    print(
        f"\nSeek time {off.metrics.all.mean_seek_time_ms:.2f} -> "
        f"{on.metrics.all.mean_seek_time_ms:.2f} ms "
        f"({reduction:.0%} reduction) with one reserved region serving "
        "every file system on the device."
    )


if __name__ == "__main__":
    main()
