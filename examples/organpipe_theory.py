#!/usr/bin/env python3
"""Why the organ pipe? Theory meets simulation.

The paper's placement heuristic rests on a classic result ([Wong 80],
[Grossman 73]): for independent references from a fixed distribution, the
organ-pipe arrangement minimizes expected head travel.  This example:

1. takes a real generated day of the *system* workload,
2. computes its cylinder reference distribution,
3. predicts analytically the expected seek distance/time of (a) the
   FFS layout as-is and (b) the same reference mass rearranged
   organ-pipe,
4. compares the predictions with what the discrete-event simulation
   actually measures on off and on days.

Usage::

    python examples/organpipe_theory.py [hours-per-day]
"""

import sys

from repro import ExperimentConfig, SYSTEM_FS_PROFILE, TOSHIBA_MK156F
from repro.analysis import (
    characterize,
    cylinder_reference_distribution,
    expected_seek_distance,
    expected_seek_distance_organ_pipe,
    expected_seek_time,
    organ_pipe_arrangement,
    render_character,
    zero_seek_probability,
)
from repro.analysis.organpipe import arrange
from repro.sim.experiment import Experiment


def main() -> None:
    hours = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    config = ExperimentConfig(
        profile=SYSTEM_FS_PROFILE.scaled(hours=hours), disk="toshiba", seed=5
    )
    experiment = Experiment(config)

    print("Running one off day and one on day...")
    off = experiment.run_day(rearranged=False, rearrange_tomorrow=True)
    on = experiment.run_day(rearranged=True, rearrange_tomorrow=False)

    # Rebuild the day's workload record from the measured counts.
    from repro.workload import DayWorkload

    day0 = DayWorkload(
        day=0,
        jobs=[],
        read_counts=dict(off.read_counts),
        all_counts=dict(off.all_counts),
    )
    workload_probs = cylinder_reference_distribution(
        day0,
        TOSHIBA_MK156F.geometry,
        virtual_to_physical=experiment.label.virtual_to_physical_block,
    )

    print()
    print(render_character(
        characterize(day0), "Measured day-0 workload character"
    ))

    print("\n--- Analytic predictions (independent-reference model) ---")
    raw_distance = expected_seek_distance(workload_probs)
    organ_distance = expected_seek_distance_organ_pipe(workload_probs)
    raw_time = expected_seek_time(workload_probs, TOSHIBA_MK156F.seek)
    order = organ_pipe_arrangement(workload_probs)
    organ_time = expected_seek_time(
        arrange(workload_probs, order), TOSHIBA_MK156F.seek
    )
    print(f"E[seek distance], FFS layout:      {raw_distance:8.1f} cyl")
    print(f"E[seek distance], organ-pipe:      {organ_distance:8.1f} cyl")
    print(f"E[seek time], FFS layout:          {raw_time:8.2f} ms")
    print(f"E[seek time], organ-pipe:          {organ_time:8.2f} ms")
    print(f"P[zero seek] (same mass):          "
          f"{zero_seek_probability(workload_probs):8.1%}")

    print("\n--- Simulation (SCAN queue, daily adaptive cycle) ---")
    m_off, m_on = off.metrics.all, on.metrics.all
    print(f"measured mean seek distance off/on: "
          f"{m_off.mean_seek_distance:6.1f} / {m_on.mean_seek_distance:5.1f} cyl")
    print(f"measured mean seek time off/on:     "
          f"{m_off.mean_seek_time_ms:6.2f} / {m_on.mean_seek_time_ms:5.2f} ms")
    print(f"measured zero seeks off/on:         "
          f"{m_off.zero_seek_percent:5.0f}% / {m_on.zero_seek_percent:4.0f}%")

    print(
        "\nThe independent-reference model predicts the order-of-magnitude "
        "collapse in seek *distance* that rearrangement delivers.  The "
        "simulation beats the model's seek-*time* prediction on on-days "
        "because SCAN batches same-cylinder requests (bursty writes), "
        "driving the zero-seek share far above the model's independent "
        "P[zero seek] — the synergy the paper describes in Section 5.2."
    )


if __name__ == "__main__":
    main()
