"""Tests for repro.core.arranger — planning and executing rearrangement."""

import pytest

from repro.core.arranger import BlockArranger
from repro.core.hotlist import HotBlockList
from repro.core.placement import make_policy
from repro.disk.disk import Disk
from repro.disk.label import DiskLabel
from repro.disk.models import TOSHIBA_MK156F
from repro.driver.driver import AdaptiveDiskDriver
from repro.driver.ioctl import IoctlInterface


@pytest.fixture
def ioctl():
    label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
    driver = AdaptiveDiskDriver(disk=Disk(TOSHIBA_MK156F), label=label)
    return IoctlInterface(driver)


class TestPlanning:
    def test_plan_respects_requested_count(self, ioctl):
        arranger = BlockArranger(ioctl)
        hot = HotBlockList.from_pairs([(b, 100 - b) for b in range(50)])
        plan = arranger.plan(hot, num_blocks=10)
        assert len(plan) == 10
        assert plan.policy == "organ-pipe"
        # The ten hottest blocks are the ones chosen.
        assert sorted(plan.logical_blocks()) == list(range(10))

    def test_plan_clipped_to_reserved_capacity(self, ioctl):
        arranger = BlockArranger(ioctl)
        capacity = ioctl.get_reserved_area().capacity_blocks
        hot = HotBlockList.from_pairs([(b, 2) for b in range(capacity + 500)])
        plan = arranger.plan(hot, num_blocks=capacity + 500)
        assert len(plan) == capacity

    def test_min_count_filter(self, ioctl):
        arranger = BlockArranger(ioctl, min_count=3)
        hot = HotBlockList.from_pairs([(1, 5), (2, 3), (3, 2), (4, 1)])
        plan = arranger.plan(hot, num_blocks=10)
        assert sorted(plan.logical_blocks()) == [1, 2]

    def test_policy_choice(self, ioctl):
        arranger = BlockArranger(ioctl, policy=make_policy("serial"))
        hot = HotBlockList.from_pairs([(9, 5), (3, 4)])
        plan = arranger.plan(hot, num_blocks=2)
        assert plan.policy == "serial"
        slots = plan.reserved_blocks()
        # Serial: ascending original order maps to ascending slots.
        by_block = dict(zip(plan.logical_blocks(), slots))
        assert by_block[3] < by_block[9]

    def test_negative_count_rejected(self, ioctl):
        with pytest.raises(ValueError):
            BlockArranger(ioctl).plan(HotBlockList.from_pairs([]), -1)


class TestExecution:
    def test_execute_populates_block_table(self, ioctl):
        arranger = BlockArranger(ioctl)
        hot = HotBlockList.from_pairs([(b, 10) for b in range(5)])
        plan, finish = arranger.rearrange(hot, num_blocks=5, now_ms=0.0)
        assert finish > 0
        assert len(ioctl.driver.block_table) == 5
        for placement in plan.placements:
            entry = ioctl.driver.block_table.lookup(
                ioctl.driver.label.virtual_to_physical_block(
                    placement.logical_block
                )
            )
            assert entry is not None
            assert entry.reserved_block == placement.reserved_block

    def test_execute_cleans_previous_arrangement(self, ioctl):
        arranger = BlockArranger(ioctl)
        first = HotBlockList.from_pairs([(1, 10), (2, 9)])
        arranger.rearrange(first, num_blocks=2, now_ms=0.0)
        second = HotBlockList.from_pairs([(3, 10)])
        arranger.rearrange(second, num_blocks=1, now_ms=1000.0)
        table = ioctl.driver.block_table
        assert len(table) == 1
        physical = ioctl.driver.label.virtual_to_physical_block(3)
        assert table.lookup(physical) is not None

    def test_execute_moves_data(self, ioctl):
        ioctl.driver.disk.write_data(0, "hot-data")
        arranger = BlockArranger(ioctl)
        hot = HotBlockList.from_pairs([(0, 10)])
        plan, __ = arranger.rearrange(hot, num_blocks=1, now_ms=0.0)
        reserved = plan.placements[0].reserved_block
        assert ioctl.driver.disk.read_data(reserved) == "hot-data"
        assert ioctl.driver.read_data(0) == "hot-data"

    def test_rearrangement_io_cost_is_three_per_block(self, ioctl):
        """DKIOCBCOPY costs three I/O operations per block (Section
        4.1.3)."""
        arranger = BlockArranger(ioctl)
        hot = HotBlockList.from_pairs([(b, 10) for b in range(7)])
        arranger.rearrange(hot, num_blocks=7, now_ms=0.0)
        counter = ioctl.driver.io_counter
        assert counter.copy_in_ios == 14  # 2 data I/Os per block
        assert counter.table_write_ios == 7  # 1 table write per block
