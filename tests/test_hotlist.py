"""Tests for repro.core.hotlist."""

import pytest
from hypothesis import given, strategies as st

from repro.core.hotlist import HotBlock, HotBlockList


class TestConstruction:
    def test_from_pairs_sorts_by_count(self):
        hot = HotBlockList.from_pairs([(1, 5), (2, 50), (3, 10)])
        assert hot.blocks() == [2, 3, 1]

    def test_ties_break_by_block_number(self):
        hot = HotBlockList.from_pairs([(9, 5), (4, 5)])
        assert hot.blocks() == [4, 9]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            HotBlock(block=1, count=-1)


class TestQueries:
    def test_top(self):
        hot = HotBlockList.from_pairs([(1, 3), (2, 2), (3, 1)])
        assert hot.top(2).blocks() == [1, 2]
        assert len(hot.top(10)) == 3
        with pytest.raises(ValueError):
            hot.top(-1)

    def test_indexing_and_iteration(self):
        hot = HotBlockList.from_pairs([(1, 3), (2, 2)])
        assert hot[0].block == 1
        assert [entry.count for entry in hot] == [3, 2]

    def test_count_of_and_contains(self):
        hot = HotBlockList.from_pairs([(1, 3)])
        assert hot.count_of(1) == 3
        assert hot.count_of(2) == 0
        assert hot.contains(1)
        assert not hot.contains(2)

    def test_total_references(self):
        hot = HotBlockList.from_pairs([(1, 3), (2, 2)])
        assert hot.total_references() == 5

    def test_coverage_of(self):
        hot = HotBlockList.from_pairs([(1, 90), (2, 5)])
        true_counts = {1: 80, 2: 10, 3: 10}
        assert hot.coverage_of(true_counts) == pytest.approx(0.9)
        assert hot.coverage_of({}) == 0.0


@given(
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=100,
        unique_by=lambda p: p[0],
    )
)
def test_ordering_invariant(pairs):
    hot = HotBlockList.from_pairs(pairs)
    counts = [entry.count for entry in hot]
    assert counts == sorted(counts, reverse=True)
    assert len(hot) == len(pairs)
