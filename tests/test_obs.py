"""Instrumentation layer: tracer hooks, metrics, JSONL traces, parallel runs."""

import io
import json

import pytest

from repro.obs import (
    NULL_TRACER,
    JsonlTraceWriter,
    MetricsTracer,
    MulticastTracer,
    NullTracer,
    Tracer,
    iter_trace,
    replay_day_metrics,
    replay_monitors,
)
from repro.sim.experiment import (
    Experiment,
    ExperimentConfig,
    alternating_schedule,
    resolve_workers,
    run_block_count_sweep,
    run_block_count_sweep_parallel,
    run_campaign,
    run_campaigns_parallel,
)
from repro.workload.profiles import SYSTEM_FS_PROFILE

SHORT_PROFILE = SYSTEM_FS_PROFILE.scaled(hours=0.15)
SHORT_CONFIG = ExperimentConfig(profile=SHORT_PROFILE, seed=21)


class RecordingTracer(Tracer):
    def __init__(self):
        self.calls = []
        self.closed = False

    def request_enqueued(self, device, request, now_ms, queue_depth):
        self.calls.append(("enqueued", device))

    def seek_started(self, device, request, now_ms, seek_distance):
        self.calls.append(("seek", device))

    def service_complete(self, device, request, now_ms):
        self.calls.append(("complete", device))

    def rearrangement_begin(self, device, now_ms, num_blocks):
        self.calls.append(("rearrange-begin", device))

    def rearrangement_end(self, device, now_ms, moved_blocks):
        self.calls.append(("rearrange-end", device))

    def close(self):
        self.closed = True


class TestTracerBasics:
    def test_base_hooks_are_no_ops(self):
        tracer = Tracer()
        tracer.request_enqueued("d", None, 0.0, 1)
        tracer.seek_started("d", None, 0.0, 5)
        tracer.service_complete("d", None, 0.0)
        tracer.rearrangement_begin("d", 0.0, 10)
        tracer.rearrangement_end("d", 0.0, 10)
        tracer.close()

    def test_null_tracer_singleton_identity(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NullTracer() is not NULL_TRACER

    def test_multicast_fans_out_in_order(self):
        first, second = RecordingTracer(), RecordingTracer()
        tracer = MulticastTracer([first, second])
        tracer.request_enqueued("d", None, 0.0, 1)
        tracer.rearrangement_end("d", 0.0, 3)
        tracer.close()
        assert first.calls == [("enqueued", "d"), ("rearrange-end", "d")]
        assert second.calls == first.calls
        assert first.closed and second.closed


class TestTracerThreading:
    """The engine installs its tracer across the stack (unless overridden)."""

    def run_traced_day(self, tracer):
        experiment = Experiment(SHORT_CONFIG, tracer=tracer)
        return experiment.run_day(rearranged=False, rearrange_tomorrow=True)

    def test_experiment_threads_tracer_to_driver_and_controller(self):
        tracer = RecordingTracer()
        self.run_traced_day(tracer)
        kinds = {kind for kind, __ in tracer.calls}
        assert kinds == {
            "enqueued", "seek", "complete", "rearrange-begin", "rearrange-end",
        }
        assert {device for __, device in tracer.calls} == {"disk0"}

    def test_explicit_driver_tracer_not_clobbered(self):
        from repro.sim.engine import Simulation
        from tests.test_multidevice import FixedLatencyDriver

        mine = RecordingTracer()
        driver = FixedLatencyDriver(1.0)
        driver.tracer = mine
        Simulation(driver, tracer=RecordingTracer())
        assert driver.tracer is mine

    def test_engine_tracer_installed_when_driver_has_none(self):
        from repro.sim.engine import Simulation
        from tests.test_multidevice import FixedLatencyDriver

        tracer = RecordingTracer()
        driver = FixedLatencyDriver(1.0)
        Simulation(driver, tracer=tracer)
        assert driver.tracer is tracer


class TestMetricsTracer:
    def test_counts_and_day_metrics_match_driver_tables(self):
        tracer = MetricsTracer()
        experiment = Experiment(SHORT_CONFIG, tracer=tracer)
        result = experiment.run_day(rearranged=False, rearrange_tomorrow=False)

        assert tracer.devices == ["disk0"]
        counts = tracer.counts("disk0")
        requests = result.metrics.all.requests
        assert counts["request-enqueued"] == requests
        assert counts["service-complete"] == requests
        assert counts["seek-started"] == requests
        assert counts["rearrangement-begin"] == 1
        assert counts["rearrangement-end"] == 1
        assert tracer.max_queue_depth["disk0"] >= 1

        # The tracer-side tables reduce to the exact DayMetrics the
        # driver reported through its stats ioctl.
        mirrored = tracer.day_metrics("disk0", experiment.model.seek)
        assert mirrored == result.metrics

    def test_rearranged_blocks_accumulate(self):
        tracer = MetricsTracer()
        experiment = Experiment(SHORT_CONFIG, tracer=tracer)
        experiment.run_day(rearranged=False, rearrange_tomorrow=True)
        assert tracer.rearranged_blocks["disk0"] > 0


class TestJsonlWriter:
    def test_writes_to_stream_without_owning_it(self):
        stream = io.StringIO()
        tracer = JsonlTraceWriter(stream)
        tracer.rearrangement_begin("disk0", 1.5, 100)
        tracer.close()
        assert stream.getvalue() != ""
        record = json.loads(stream.getvalue())
        assert record == {
            "event": "rearrangement-begin",
            "device": "disk0",
            "t": 1.5,
            "blocks": 100,
        }
        stream.write("still open\n")  # close() left the stream alone

    def test_context_manager_closes_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceWriter(path) as tracer:
            tracer.rearrangement_end("d", 2.0, 7)
        assert tracer.events_written == 1
        [record] = list(iter_trace(path))
        assert record["event"] == "rearrangement-end"
        assert record["blocks"] == 7

    def test_closed_writer_drops_events_instead_of_raising(self, tmp_path):
        """A simulation may outlive its tracer: once the writer is
        closed, further hook calls are dropped, not errors."""
        path = tmp_path / "partial.jsonl"
        with JsonlTraceWriter(path) as tracer:
            experiment = Experiment(SHORT_CONFIG, tracer=tracer)
            experiment.run_day(rearranged=False, rearrange_tomorrow=True)
            written = tracer.events_written
        assert tracer.closed
        # The driver still holds the closed tracer; the next day must
        # run cleanly and add nothing to the file.
        experiment.run_day(rearranged=True, rearrange_tomorrow=False)
        assert tracer.events_written == written
        assert len(list(iter_trace(path))) == written

    def test_single_disk_roundtrip(self, tmp_path):
        path = tmp_path / "day.jsonl"
        with JsonlTraceWriter(path) as tracer:
            experiment = Experiment(SHORT_CONFIG, tracer=tracer)
            result = experiment.run_day(
                rearranged=False, rearrange_tomorrow=False
            )
            seek_model = experiment.model.seek

        monitors = replay_monitors(path)
        assert list(monitors) == ["disk0"]
        replayed = replay_day_metrics(path, seek_model)["disk0"]
        assert replayed == result.metrics


class TestParallelCampaigns:
    def test_resolve_workers(self):
        assert resolve_workers(3, tasks=8) == 3
        with pytest.warns(RuntimeWarning):  # more workers than tasks
            assert resolve_workers(16, tasks=2) == 2
        assert resolve_workers(None, tasks=4) >= 1
        with pytest.raises(ValueError):
            resolve_workers(0, tasks=4)

    def test_parallel_matches_serial(self):
        schedule = alternating_schedule(3)
        configs = {
            "a": SHORT_CONFIG,
            "b": ExperimentConfig(profile=SHORT_PROFILE, seed=22),
        }
        serial = {
            key: run_campaign(config, schedule)
            for key, config in configs.items()
        }
        parallel = dict(
            run_campaigns_parallel(
                [(key, config, schedule) for key, config in configs.items()],
                workers=2,
            )
        )
        assert sorted(parallel) == sorted(serial)
        for key, campaign in serial.items():
            got = parallel[key]
            assert len(got.days) == len(campaign.days)
            for mine, theirs in zip(campaign.days, got.days):
                assert mine.metrics == theirs.metrics
                assert mine.rearranged_blocks == theirs.rearranged_blocks

    def test_sweep_parallel_deterministic_across_worker_counts(self):
        counts = [25, 100]
        one = run_block_count_sweep_parallel(SHORT_CONFIG, counts, workers=1)
        two = run_block_count_sweep_parallel(SHORT_CONFIG, counts, workers=2)
        assert [c for c, __ in one] == counts
        for (c1, d1), (c2, d2) in zip(one, two):
            assert c1 == c2
            assert d1.metrics == d2.metrics

    def test_serial_sweep_unchanged_by_parallel_variant(self):
        """The chained paper-faithful sweep still exists and differs in
        shape only by its day-(k-1) training chaining."""
        points = run_block_count_sweep(SHORT_CONFIG, [25])
        assert len(points) == 1
        count, day = points[0]
        assert count == 25
        assert day.metrics.all.requests > 0
