"""Tests for repro.core.cylshuffle — the cylinder-shuffling baseline."""

import pytest

from repro.core.analyzer import ReferenceStreamAnalyzer
from repro.core.cylshuffle import (
    CylinderShufflePlan,
    CylinderShuffler,
    cylinder_counts_from_blocks,
    plan_organ_pipe_shuffle,
)
from repro.disk.disk import Disk
from repro.disk.label import DiskLabel
from repro.disk.models import TOSHIBA_MK156F
from repro.driver.driver import AdaptiveDiskDriver
from repro.driver.request import read_request, write_request


def make_driver():
    label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=0)
    return AdaptiveDiskDriver(disk=Disk(TOSHIBA_MK156F), label=label)


def serve(driver, request):
    completion = driver.strategy(request, request.arrival_ms)
    while completion is not None:
        __, completion = driver.complete(completion)
    return request


class TestPlanning:
    def test_hottest_cylinder_goes_to_middle(self):
        counts = {700: 100, 5: 50, 300: 10}
        plan = plan_organ_pipe_shuffle(counts, 815)
        assert plan.mapping[700] == 815 // 2

    def test_plan_is_a_permutation(self):
        plan = plan_organ_pipe_shuffle({1: 10, 2: 5}, 100)
        assert plan.is_permutation()
        assert len(plan.mapping) == 100

    def test_moved_count(self):
        identity = CylinderShufflePlan({0: 0, 1: 1})
        assert identity.moved_cylinders == 0
        swap = CylinderShufflePlan({0: 1, 1: 0})
        assert swap.moved_cylinders == 2

    def test_zero_cylinders_rejected(self):
        with pytest.raises(ValueError):
            plan_organ_pipe_shuffle({}, 0)

    def test_counts_from_blocks_respects_label(self):
        driver = make_driver()
        per_cyl = driver.disk.geometry.blocks_per_cylinder
        counts = cylinder_counts_from_blocks(
            {0: 3, per_cyl: 2, per_cyl + 1: 4}, driver
        )
        assert counts == {0: 3, 1: 6}


class TestShuffler:
    def test_rejects_rearranged_disk(self):
        label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
        driver = AdaptiveDiskDriver(disk=Disk(TOSHIBA_MK156F), label=label)
        with pytest.raises(ValueError):
            CylinderShuffler(driver)

    def test_requests_follow_the_shuffle(self):
        driver = make_driver()
        shuffler = CylinderShuffler(driver)
        per_cyl = driver.disk.geometry.blocks_per_cylinder
        hot_block = 700 * per_cyl + 3  # cylinder 700

        analyzer = ReferenceStreamAnalyzer()
        for __ in range(10):
            analyzer.observe(hot_block)
        plan = shuffler.plan_from_analyzer(analyzer)
        moved = shuffler.apply(plan)
        assert moved > 0

        request = serve(driver, read_request(hot_block, 0.0))
        assert request.redirected
        target_cyl = driver.disk.geometry.cylinder_of_block(
            request.target_block
        )
        assert target_cyl == 815 // 2
        # The FCFS counterfactual still reflects the original position.
        assert request.home_cylinder == 700

    def test_data_moves_with_the_shuffle(self):
        driver = make_driver()
        shuffler = CylinderShuffler(driver)
        per_cyl = driver.disk.geometry.blocks_per_cylinder
        block = 700 * per_cyl
        serve(driver, write_request(block, 0.0, tag="payload"))
        assert driver.read_data(block) == "payload"

        plan = plan_organ_pipe_shuffle({700: 99}, 815)
        shuffler.apply(plan)
        assert driver.read_data(block) == "payload"
        # The data physically lives at the remapped location now.
        assert driver.disk.read_data(407 * per_cyl) == "payload"

    def test_reshuffle_composes(self):
        """A second shuffle planned in original coordinates lands data
        correctly even though the disk is already shuffled."""
        driver = make_driver()
        shuffler = CylinderShuffler(driver)
        per_cyl = driver.disk.geometry.blocks_per_cylinder
        block = 700 * per_cyl + 1
        serve(driver, write_request(block, 0.0, tag="v1"))

        shuffler.apply(plan_organ_pipe_shuffle({700: 10}, 815))
        assert driver.read_data(block) == "v1"
        # Day two: cylinder 100 is hot now; 700 cools off.
        shuffler.apply(plan_organ_pipe_shuffle({100: 50, 700: 5}, 815))
        assert driver.read_data(block) == "v1"
        assert shuffler.shuffles_applied == 2

    def test_reset_restores_original_layout(self):
        driver = make_driver()
        shuffler = CylinderShuffler(driver)
        per_cyl = driver.disk.geometry.blocks_per_cylinder
        block = 700 * per_cyl
        serve(driver, write_request(block, 0.0, tag="home"))
        shuffler.apply(plan_organ_pipe_shuffle({700: 9}, 815))
        shuffler.reset()
        assert driver.cylinder_map is None
        assert driver.disk.read_data(block) == "home"

    def test_writes_through_shuffle_land_at_mapped_location(self):
        driver = make_driver()
        shuffler = CylinderShuffler(driver)
        per_cyl = driver.disk.geometry.blocks_per_cylinder
        block = 700 * per_cyl
        shuffler.apply(plan_organ_pipe_shuffle({700: 9}, 815))
        serve(driver, write_request(block, 0.0, tag="late"))
        assert driver.read_data(block) == "late"
        assert driver.disk.read_data(407 * per_cyl) == "late"

    def test_invalid_plan_rejected(self):
        driver = make_driver()
        shuffler = CylinderShuffler(driver)
        with pytest.raises(ValueError):
            shuffler.apply(CylinderShufflePlan({0: 1, 1: 1}))


class TestShuffleReducesSeeks:
    def test_shuffle_concentrates_hot_cylinders(self):
        """Two hot cylinders at opposite disk ends end up adjacent in the
        middle, collapsing the seek between them."""
        driver = make_driver()
        shuffler = CylinderShuffler(driver)
        per_cyl = driver.disk.geometry.blocks_per_cylinder
        block_a = 10 * per_cyl
        block_b = 800 * per_cyl

        serve(driver, read_request(block_a, 0.0))
        before = serve(driver, read_request(block_b, 100.0))
        assert before.seek_distance == 790

        shuffler.apply(plan_organ_pipe_shuffle({10: 100, 800: 90}, 815))
        serve(driver, read_request(block_a, 200.0))
        after = serve(driver, read_request(block_b, 300.0))
        assert after.seek_distance <= 1
