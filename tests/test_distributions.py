"""Tests for repro.workload.distributions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.workload.distributions import (
    geometric_run_length,
    poisson_arrivals,
    sorted_counts,
    top_k_share,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(100, 1.3)
        assert weights.sum() == pytest.approx(1.0)
        assert len(weights) == 100

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_higher_exponent_more_skewed(self):
        flat = zipf_weights(100, 0.8)
        steep = zipf_weights(100, 1.8)
        assert steep[0] > flat[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)


class TestTopKShare:
    def test_basic(self):
        counts = [90, 5, 3, 2]
        assert top_k_share(counts, 1) == pytest.approx(0.9)
        assert top_k_share(counts, 4) == pytest.approx(1.0)

    def test_unsorted_input(self):
        assert top_k_share([2, 90, 8], 1) == pytest.approx(0.9)

    def test_k_beyond_length(self):
        assert top_k_share([1, 1], 10) == 1.0

    def test_empty_or_zero(self):
        assert top_k_share([], 5) == 0.0
        assert top_k_share([0, 0], 1) == 0.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            top_k_share([1], -1)


class TestSortedCounts:
    def test_descending(self):
        assert sorted_counts({1: 5, 2: 9, 3: 1}) == [9, 5, 1]


class TestGeometricRunLength:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        for __ in range(200):
            length = geometric_run_length(rng, mean=3.0, cap=8)
            assert 1 <= length <= 8

    def test_mean_close_to_target(self):
        rng = np.random.default_rng(1)
        samples = [geometric_run_length(rng, 4.0, 1000) for __ in range(5000)]
        assert np.mean(samples) == pytest.approx(4.0, rel=0.1)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            geometric_run_length(rng, 0.5, 10)
        with pytest.raises(ValueError):
            geometric_run_length(rng, 2.0, 0)


class TestPoissonArrivals:
    def test_arrivals_sorted_and_in_range(self):
        rng = np.random.default_rng(2)
        arrivals = poisson_arrivals(rng, rate_per_ms=0.01, duration_ms=10_000)
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 10_000 for t in arrivals)

    def test_rate_determines_count(self):
        rng = np.random.default_rng(3)
        arrivals = poisson_arrivals(rng, rate_per_ms=0.01, duration_ms=1e6)
        assert len(arrivals) == pytest.approx(10_000, rel=0.1)

    def test_clumping_preserves_rate(self):
        rng = np.random.default_rng(4)
        clumped = poisson_arrivals(
            rng, rate_per_ms=0.01, duration_ms=1e6, clump_mean=4.0
        )
        assert len(clumped) == pytest.approx(10_000, rel=0.15)

    def test_clumping_increases_burstiness(self):
        """With clumping, inter-arrival variance rises above Poisson."""
        rng = np.random.default_rng(5)
        plain = poisson_arrivals(rng, 0.01, 1e6)
        clumped = poisson_arrivals(rng, 0.01, 1e6, clump_mean=5.0,
                                   clump_spread_ms=100.0)
        cv_plain = np.std(np.diff(plain)) / np.mean(np.diff(plain))
        cv_clumped = np.std(np.diff(clumped)) / np.mean(np.diff(clumped))
        assert cv_clumped > cv_plain

    def test_zero_rate_gives_nothing(self):
        rng = np.random.default_rng(0)
        assert poisson_arrivals(rng, 0.0, 1000.0) == []

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, -1.0, 10.0)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, 1.0, 0.0)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, 1.0, 10.0, clump_mean=0.5)


@given(n=st.integers(min_value=1, max_value=2000),
       s=st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
def test_zipf_weights_always_a_distribution(n, s):
    weights = zipf_weights(n, s)
    assert weights.min() >= 0
    assert weights.sum() == pytest.approx(1.0)


@given(
    counts=st.lists(st.integers(min_value=0, max_value=10_000), max_size=100),
    k=st.integers(min_value=0, max_value=120),
)
def test_top_k_share_monotone_in_k(counts, k):
    assert 0.0 <= top_k_share(counts, k) <= top_k_share(counts, k + 1) <= 1.0
