"""Tests for repro.driver.monitor — request and performance monitoring."""

import pytest

from repro.driver.monitor import PerformanceMonitor, RequestMonitor
from repro.driver.request import DiskRequest, Op, read_request, write_request


def finished_request(block, cylinder, is_read=True, arrival=0.0, submit=1.0,
                     complete=10.0, seek_distance=0, rotation=2.0,
                     transfer=3.0, buffer_hit=False):
    request = DiskRequest(
        logical_block=block,
        op=Op.READ if is_read else Op.WRITE,
        arrival_ms=arrival,
    )
    request.home_cylinder = cylinder
    request.submit_ms = submit
    request.complete_ms = complete
    request.seek_distance = seek_distance
    request.rotation_ms = rotation
    request.transfer_ms = transfer
    request.buffer_hit = buffer_hit
    return request


class TestRequestMonitor:
    def test_records_arrivals(self):
        monitor = RequestMonitor(capacity=10)
        monitor.record(read_request(5, 1.0))
        monitor.record(write_request(9, 2.0))
        records = monitor.read_and_clear()
        assert [(r.logical_block, r.is_read) for r in records] == [
            (5, True),
            (9, False),
        ]

    def test_read_and_clear_empties_table(self):
        monitor = RequestMonitor(capacity=10)
        monitor.record(read_request(5, 1.0))
        monitor.read_and_clear()
        assert monitor.read_and_clear() == []

    def test_suspends_when_full(self):
        """Section 4.1.4: if the table fills before being cleared,
        recording is temporarily suspended."""
        monitor = RequestMonitor(capacity=2)
        for i in range(5):
            monitor.record(read_request(i, float(i)))
        assert len(monitor) == 2
        assert monitor.suspended_count == 3
        assert monitor.is_full

    def test_recording_resumes_after_clear(self):
        monitor = RequestMonitor(capacity=1)
        monitor.record(read_request(1, 0.0))
        monitor.record(read_request(2, 0.0))  # suspended
        monitor.read_and_clear()
        monitor.record(read_request(3, 0.0))
        assert [r.logical_block for r in monitor.read_and_clear()] == [3]

    def test_disabled_monitor_records_nothing(self):
        monitor = RequestMonitor(capacity=10, enabled=False)
        monitor.record(read_request(1, 0.0))
        assert len(monitor) == 0


class TestPerformanceMonitorArrivalOrder:
    def test_first_arrival_records_no_distance(self):
        monitor = PerformanceMonitor()
        request = finished_request(1, cylinder=100)
        monitor.note_arrival(request)
        assert monitor.stats("all").arrival_seek.count == 0
        assert monitor.stats("all").requests == 1

    def test_arrival_distances_use_home_cylinders(self):
        monitor = PerformanceMonitor()
        monitor.note_arrival(finished_request(1, cylinder=100))
        monitor.note_arrival(finished_request(2, cylinder=350))
        assert monitor.stats("all").arrival_seek.mean == 250

    def test_per_class_distance_chains_are_independent(self):
        """The read-only FCFS counterfactual chains over reads only."""
        monitor = PerformanceMonitor()
        monitor.note_arrival(finished_request(1, cylinder=0, is_read=True))
        monitor.note_arrival(finished_request(2, cylinder=500, is_read=False))
        monitor.note_arrival(finished_request(3, cylinder=10, is_read=True))
        assert monitor.stats("read").arrival_seek.mean == 10  # 0 -> 10
        assert monitor.stats("write").arrival_seek.count == 0
        # The combined stream saw 0 -> 500 -> 10.
        assert monitor.stats("all").arrival_seek.total == 500 + 490

    def test_arrival_requires_home_cylinder(self):
        monitor = PerformanceMonitor()
        with pytest.raises(ValueError):
            monitor.note_arrival(read_request(1, 0.0))


class TestPerformanceMonitorCompletion:
    def test_completion_populates_all_tables(self):
        monitor = PerformanceMonitor()
        request = finished_request(
            1, cylinder=10, seek_distance=7, rotation=4.0, transfer=3.0
        )
        monitor.note_arrival(request)
        monitor.note_completion(request)
        stats = monitor.stats("read")
        assert stats.scheduled_seek.mean == 7
        assert stats.service.mean_ms == pytest.approx(9.0)  # 10 - 1
        assert stats.queueing.mean_ms == pytest.approx(1.0)  # 1 - 0
        assert stats.rotation.mean_ms == pytest.approx(4.0)
        assert stats.transfer.mean_ms == pytest.approx(3.0)

    def test_buffer_hits_counted(self):
        monitor = PerformanceMonitor()
        request = finished_request(1, cylinder=10, buffer_hit=True)
        monitor.note_arrival(request)
        monitor.note_completion(request)
        assert monitor.stats("read").buffer_hits == 1
        assert monitor.stats("write").buffer_hits == 0

    def test_completion_requires_breakdown(self):
        monitor = PerformanceMonitor()
        request = read_request(1, 0.0)
        request.home_cylinder = 5
        monitor.note_arrival(request)
        with pytest.raises(ValueError):
            monitor.note_completion(request)

    def test_writes_do_not_pollute_read_stats(self):
        monitor = PerformanceMonitor()
        request = finished_request(1, cylinder=10, is_read=False)
        monitor.note_arrival(request)
        monitor.note_completion(request)
        assert monitor.stats("read").requests == 0
        assert monitor.stats("write").requests == 1
        assert monitor.stats("all").requests == 1


class TestReadAndClear:
    def test_ioctl_semantics(self):
        monitor = PerformanceMonitor()
        request = finished_request(1, cylinder=10)
        monitor.note_arrival(request)
        monitor.note_completion(request)
        tables = monitor.read_and_clear()
        assert tables["all"].requests == 1
        assert monitor.stats("all").requests == 0
        # The arrival-distance chain also resets.
        monitor.note_arrival(finished_request(2, cylinder=400))
        assert monitor.stats("all").arrival_seek.count == 0

    def test_unknown_scope(self):
        with pytest.raises(KeyError):
            PerformanceMonitor().stats("meta")
