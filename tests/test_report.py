"""Tests for repro.stats.report — paper-style table rendering."""


from repro.stats.histogram import TimeHistogram
from repro.stats.metrics import (
    DayMetrics,
    MinAvgMax,
    OnOffSummary,
    ScopeMetrics,
)
from repro.stats.report import (
    render_access_distribution,
    render_day,
    render_detail_table,
    render_onoff_table,
    render_policy_table,
    render_service_cdf,
    render_sweep,
)


def scope(seek=10.0, service=30.0, wait=50.0):
    return ScopeMetrics(
        requests=1000,
        mean_seek_distance=40.0,
        fcfs_mean_seek_distance=200.0,
        zero_seek_fraction=0.25,
        mean_seek_time_ms=seek,
        fcfs_mean_seek_time_ms=20.0,
        mean_service_ms=service,
        mean_waiting_ms=wait,
        mean_rotation_ms=8.0,
        mean_transfer_ms=7.8,
        buffer_hits=0,
    )


def mam(lo, mid, hi):
    return MinAvgMax(min=lo, avg=mid, max=hi)


class TestOnOffTable:
    def test_contains_rows_and_reductions(self):
        summary = OnOffSummary(
            scope="all",
            off_seek=mam(18.0, 19.5, 21.5),
            on_seek=mam(1.0, 1.2, 1.6),
            off_service=mam(38.0, 39.8, 41.7),
            on_service=mam(22.6, 22.9, 23.3),
            off_waiting=mam(65.0, 82.7, 94.5),
            on_waiting=mam(40.4, 46.4, 51.1),
        )
        text = render_onoff_table(
            [("Toshiba", "all", summary)], title="Table 2"
        )
        assert "Table 2" in text
        assert "Toshiba" in text
        assert "19.50" in text  # off seek avg
        assert "1.20" in text  # on seek avg
        assert "seek -94%" in text  # seek reduction line

    def test_negative_reduction_shows_plus_sign(self):
        summary = OnOffSummary(
            scope="all",
            off_seek=mam(10.0, 10.0, 10.0),
            on_seek=mam(11.0, 11.0, 11.0),  # got worse
            off_service=mam(30.0, 30.0, 30.0),
            on_service=mam(30.0, 30.0, 30.0),
            off_waiting=mam(50.0, 50.0, 50.0),
            on_waiting=mam(50.0, 50.0, 50.0),
        )
        text = render_onoff_table([("Disk", "all", summary)], title="T")
        assert "seek +10%" in text
        reduction_line = next(l for l in text.splitlines() if "seek +" in l)
        assert "--" not in reduction_line


class TestDetailTable:
    def test_rows_match_table_3_vocabulary(self):
        text = render_detail_table(
            [("Day 1 Off", scope()), ("Day 2 On", scope(seek=1.5))],
            title="Table 3",
        )
        for row in (
            "FCFS Mean Seek Dist",
            "Mean Seek Distance",
            "Zero-length Seeks",
            "FCFS Mean Seek Time",
            "Mean Seek Time",
            "Mean Service Time",
            "Mean Waiting Time",
        ):
            assert row in text
        assert "Day 1 Off" in text and "Day 2 On" in text


class TestPolicyTable:
    def test_percentages_rendered(self):
        text = render_policy_table(
            [
                (
                    "Toshiba",
                    {"organ-pipe": 0.95, "interleaved": 0.87, "serial": 0.58},
                    {"organ-pipe": 0.76, "interleaved": 0.62, "serial": 0.40},
                )
            ],
            title="Table 7",
        )
        assert "95" in text and "58" in text and "40" in text


class TestServiceCdf:
    def test_fractions_at_thresholds(self):
        hist = TimeHistogram()
        for value in (5.0, 15.0, 25.0, 35.0):
            hist.record(value)
        text = render_service_cdf(
            [("off", hist)], title="Figure 4", points_ms=(10, 40)
        )
        assert "25.0%" in text
        assert "100.0%" in text

    def test_bars_rendered_when_requested(self):
        hist = TimeHistogram()
        hist.record(5.0)
        hist.record(50.0)
        text = render_service_cdf(
            [("off", hist)], title="F", points_ms=(10,), bar_width=10
        )
        assert "#####....." in text  # 50% bar


class TestAsciiBar:
    def test_bounds_and_width(self):
        from repro.stats.report import ascii_bar

        assert ascii_bar(0.0, 4) == "...."
        assert ascii_bar(1.0, 4) == "####"
        assert ascii_bar(0.5, 4) == "##.."
        assert ascii_bar(2.0, 4) == "####"  # clamped
        assert ascii_bar(-1.0, 4) == "...."


class TestAccessDistribution:
    def test_ranks_and_shares(self):
        counts = [100, 50, 25, 12, 6, 3, 2, 1, 1, 1]
        text = render_access_distribution(
            [("all requests", counts)], title="Figure 5", ranks=(1, 10)
        )
        assert "all requests" in text
        assert "49.8%" in text  # top-1 share: 100/201
        assert "100.0%" in text


class TestSweep:
    def test_sweep_rows(self):
        text = render_sweep(
            [(100, 0.9, 0.8), (1018, 0.95, 0.9)], title="Figure 8"
        )
        assert "100" in text and "1018" in text
        assert "90.0%" in text


class TestDayLine:
    def test_one_line_summary(self):
        metrics = DayMetrics(
            day=3,
            rearranged=True,
            scopes={"all": scope(), "read": scope(), "write": scope()},
        )
        line = render_day(metrics, "toshiba")
        assert "day  3" in line
        assert "[on ]" in line
        assert "toshiba" in line
