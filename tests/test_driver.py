"""Tests for repro.driver.driver — the adaptive device driver."""

import pytest

from repro.disk.disk import Disk
from repro.disk.label import DiskLabel
from repro.disk.models import TOSHIBA_MK156F
from repro.driver.driver import AdaptiveDiskDriver, DriverError
from repro.driver.request import DiskRequest, Op, read_request, write_request


@pytest.fixture
def driver():
    label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
    return AdaptiveDiskDriver(disk=Disk(TOSHIBA_MK156F), label=label)


def run_to_completion(driver, request, now=None):
    completion = driver.strategy(request, now if now is not None else request.arrival_ms)
    finished = []
    while completion is not None:
        done, completion = driver.complete(completion)
        finished.append(done)
    return finished


class TestStrategy:
    def test_maps_logical_to_physical(self, driver):
        request = read_request(0, 0.0)
        run_to_completion(driver, request)
        assert request.physical_block == 0
        assert request.home_cylinder == 0
        assert not request.redirected

    def test_mapping_skips_reserved_area(self, driver):
        per_cyl = driver.disk.geometry.blocks_per_cylinder
        request = read_request(383 * per_cyl, 0.0)
        run_to_completion(driver, request)
        assert request.physical_block == (383 + 48) * per_cyl

    def test_redirects_rearranged_block(self, driver):
        reserved = driver.label.reserved_data_blocks()[0]
        driver.block_table.add(0, reserved)
        request = read_request(0, 0.0)
        run_to_completion(driver, request)
        assert request.redirected
        assert request.target_block == reserved
        # The home cylinder still reflects the original location
        # (feeds the FCFS counterfactual).
        assert request.home_cylinder == 0

    def test_busy_disk_queues_followups(self, driver):
        first = read_request(0, 0.0)
        completion = driver.strategy(first, 0.0)
        assert completion is not None
        second = read_request(100, 0.1)
        assert driver.strategy(second, 0.1) is None
        assert driver.queued == 1
        assert driver.busy

    def test_complete_starts_next(self, driver):
        completion = driver.strategy(read_request(0, 0.0), 0.0)
        driver.strategy(read_request(100, 0.1), 0.1)
        done, next_completion = driver.complete(completion)
        assert done.logical_block == 0
        assert next_completion is not None
        done2, nothing = driver.complete(next_completion)
        assert done2.logical_block == 100
        assert nothing is None
        assert not driver.busy

    def test_timestamps_recorded(self, driver):
        request = read_request(50, 5.0)
        run_to_completion(driver, request)
        assert request.submit_ms == 5.0
        assert request.complete_ms > 5.0
        assert request.queueing_ms == 0.0
        assert request.service_ms > 0

    def test_monitors_fed(self, driver):
        run_to_completion(driver, read_request(0, 0.0))
        assert len(driver.request_monitor) == 1
        assert driver.perf_monitor.stats("read").requests == 1
        assert driver.perf_monitor.stats("read").service.count == 1

    def test_rejects_multiblock_requests(self, driver):
        big = DiskRequest(logical_block=0, op=Op.READ, arrival_ms=0.0, size_blocks=4)
        with pytest.raises(DriverError):
            driver.strategy(big, 0.0)

    def test_rejects_time_travel(self, driver):
        with pytest.raises(DriverError):
            driver.strategy(read_request(0, 10.0), 5.0)

    def test_complete_without_inflight_raises(self, driver):
        with pytest.raises(DriverError):
            driver.complete(1.0)

    def test_block_table_capacity_defaults_to_reserved_size(self, driver):
        assert driver.block_table.capacity == driver.label.reserved_capacity_blocks()


class TestWriteHandling:
    def test_write_to_redirected_block_marks_dirty(self, driver):
        reserved = driver.label.reserved_data_blocks()[0]
        driver.block_table.add(0, reserved)
        run_to_completion(driver, write_request(0, 0.0))
        assert driver.block_table.lookup(0).dirty

    def test_read_does_not_mark_dirty(self, driver):
        reserved = driver.label.reserved_data_blocks()[0]
        driver.block_table.add(0, reserved)
        run_to_completion(driver, read_request(0, 0.0))
        assert not driver.block_table.lookup(0).dirty

    def test_tagged_write_lands_at_redirected_target(self, driver):
        reserved = driver.label.reserved_data_blocks()[0]
        driver.block_table.add(0, reserved)
        run_to_completion(driver, write_request(0, 0.0, tag="v1"))
        assert driver.disk.read_data(reserved) == "v1"
        assert driver.disk.read_data(0) is None
        assert driver.read_data(0) == "v1"


class TestBlockMovement:
    def test_bcopy_copies_data_and_registers(self, driver):
        driver.disk.write_data(0, "payload")
        reserved = driver.label.reserved_data_blocks()[0]
        finish = driver.bcopy(0, reserved, now_ms=0.0)
        assert finish > 0
        assert driver.disk.read_data(reserved) == "payload"
        entry = driver.block_table.lookup(0)
        assert entry is not None and entry.reserved_block == reserved
        # The table copy was forced to disk (Section 4.1.3).
        assert driver.block_table.disk_copy() == {0: (reserved, False)}

    def test_bcopy_counts_three_ios(self, driver):
        reserved = driver.label.reserved_data_blocks()[0]
        driver.bcopy(0, reserved, now_ms=0.0)
        assert driver.io_counter.copy_in_ios == 2
        assert driver.io_counter.table_write_ios == 1
        assert driver.io_counter.total == 3

    def test_bcopy_rejects_non_reserved_destination(self, driver):
        with pytest.raises(DriverError):
            driver.bcopy(0, 0, now_ms=0.0)

    def test_bcopy_rejects_table_home_blocks(self, driver):
        home = driver.label.block_table_home_blocks()[0]
        with pytest.raises(DriverError):
            driver.bcopy(0, home, now_ms=0.0)

    def test_bcopy_rejects_while_busy(self, driver):
        driver.strategy(read_request(0, 0.0), 0.0)
        reserved = driver.label.reserved_data_blocks()[0]
        with pytest.raises(DriverError):
            driver.bcopy(5, reserved, now_ms=0.0)

    def test_clean_returns_clean_blocks_without_copyback(self, driver):
        reserved = driver.label.reserved_data_blocks()[0]
        driver.disk.write_data(0, "original")
        driver.bcopy(0, reserved, now_ms=0.0)
        driver.io_counter = type(driver.io_counter)()  # reset counters
        driver.clean(now_ms=0.0)
        assert len(driver.block_table) == 0
        assert driver.io_counter.move_out_ios == 0
        assert driver.io_counter.table_write_ios == 1
        assert driver.disk.read_data(0) == "original"

    def test_clean_copies_dirty_blocks_home(self, driver):
        reserved = driver.label.reserved_data_blocks()[0]
        driver.disk.write_data(0, "v0")
        driver.bcopy(0, reserved, now_ms=0.0)
        run_to_completion(driver, write_request(0, 0.0, tag="v1"))
        driver.io_counter = type(driver.io_counter)()
        driver.clean(now_ms=1000.0)
        # "two extra operations if the block is dirty" (Section 4.1.3)
        assert driver.io_counter.move_out_ios == 2
        assert driver.disk.read_data(0) == "v1"
        assert driver.read_data(0) == "v1"

    def test_clean_rejects_while_busy(self, driver):
        driver.strategy(read_request(0, 0.0), 0.0)
        with pytest.raises(DriverError):
            driver.clean(0.0)


class TestAttachRecovery:
    def test_attach_recovers_flushed_table_all_dirty(self, driver):
        reserved = driver.label.reserved_data_blocks()[0]
        driver.bcopy(0, reserved, now_ms=0.0)
        driver.block_table.crash()
        driver.attach()
        entry = driver.block_table.lookup(0)
        assert entry is not None
        assert entry.dirty  # conservative recovery
        # A post-recovery clean copies the (dirty) block home.
        driver.clean(0.0)
        assert len(driver.block_table) == 0

    def test_attach_on_plain_disk_is_noop(self):
        label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=0)
        plain = AdaptiveDiskDriver(disk=Disk(TOSHIBA_MK156F), label=label)
        plain.attach()
        assert len(plain.block_table) == 0


class TestEndToEndRedirection:
    def test_data_visible_through_redirection_cycle(self, driver):
        """Write -> rearrange -> read -> update -> clean -> read: the data
        seen through the logical address is always the latest version."""
        run_to_completion(driver, write_request(7, 0.0, tag="gen1"))
        reserved = driver.label.reserved_data_blocks()[10]
        driver.bcopy(7, reserved, now_ms=100.0)
        assert driver.read_data(7) == "gen1"
        run_to_completion(driver, write_request(7, 200.0, tag="gen2"))
        assert driver.read_data(7) == "gen2"
        driver.clean(now_ms=300.0)
        assert driver.read_data(7) == "gen2"
        assert driver.disk.read_data(7) == "gen2"
