"""Edge cases and failure injection across modules."""

import dataclasses


from repro.disk.disk import Disk
from repro.disk.label import DiskLabel
from repro.disk.models import TOSHIBA_MK156F
from repro.driver.driver import AdaptiveDiskDriver
from repro.driver.request import Op
from repro.sim.engine import Simulation
from repro.sim.experiment import Experiment, ExperimentConfig
from repro.sim.jobs import batch_job, sequential_job
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import SYSTEM_FS_PROFILE, USERS_FS_PROFILE


def make_driver(reserved=48):
    label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=reserved)
    return AdaptiveDiskDriver(disk=Disk(TOSHIBA_MK156F), label=label)


class TestRequestMonitorOverflow:
    def test_suspension_under_slow_polling(self):
        """If the analyzer polls too slowly the table fills and recording
        suspends — requests are still *served*, only the record is lost."""
        driver = make_driver()
        driver.request_monitor.capacity = 5
        simulation = Simulation(driver)
        simulation.add_job(batch_job(0.0, list(range(20)), Op.READ))
        completed = simulation.run()
        assert len(completed) == 20  # service is unaffected
        assert len(driver.request_monitor) == 5
        assert driver.request_monitor.suspended_count == 15


class TestEngineInterruption:
    def test_run_until_preserves_in_flight_work(self):
        driver = make_driver()
        simulation = Simulation(driver)
        simulation.add_job(batch_job(0.0, [0, 5000, 10000], Op.READ))
        first = simulation.run(until_ms=1.0)  # before first completion
        assert first == []
        rest = simulation.run()
        assert len(rest) == 3

    def test_interleaved_run_calls_accumulate(self):
        driver = make_driver()
        simulation = Simulation(driver)
        simulation.add_job(batch_job(0.0, [0], Op.READ))
        simulation.add_job(batch_job(500.0, [100], Op.READ))
        simulation.run(until_ms=250.0)
        simulation.run()
        assert len(simulation.completed) == 2


class TestGeneratorCachedReads:
    def test_cache_absorbs_repeated_reads(self):
        profile = dataclasses.replace(
            SYSTEM_FS_PROFILE.scaled(hours=1.0),
            use_cache_for_reads=True,
            cache_blocks=4096,
        )
        label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
        partition = label.add_partition("fs0", label.virtual_total_blocks)
        cached = WorkloadGenerator(
            profile, partition, 21, seed=3
        ).generate_day()

        uncached_profile = dataclasses.replace(
            profile, use_cache_for_reads=False
        )
        label2 = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
        partition2 = label2.add_partition("fs0", label2.virtual_total_blocks)
        uncached = WorkloadGenerator(
            uncached_profile, partition2, 21, seed=3
        ).generate_day()

        assert cached.num_reads < uncached.num_reads

    def test_fully_cached_sessions_emit_no_read_job(self):
        profile = dataclasses.replace(
            SYSTEM_FS_PROFILE.scaled(hours=0.5),
            use_cache_for_reads=True,
            cache_blocks=50_000,  # everything fits
        )
        label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
        partition = label.add_partition("fs0", label.virtual_total_blocks)
        generator = WorkloadGenerator(profile, partition, 21, seed=3)
        generator.generate_day()  # warm the cache
        second = generator.generate_day()
        # Nearly all re-reads of the hot set are absorbed.
        assert second.num_reads < 0.7 * second.num_requests


class TestKeepArrangement:
    def test_keep_arrangement_skips_nightly_cycle(self):
        config = ExperimentConfig(
            profile=SYSTEM_FS_PROFILE.scaled(hours=0.25),
            disk="toshiba",
            seed=3,
        )
        experiment = Experiment(config)
        experiment.run_day(rearranged=False, rearrange_tomorrow=True)
        table_before = len(experiment.driver.block_table)
        assert table_before > 0
        experiment.run_day(
            rearranged=True, rearrange_tomorrow=False, keep_arrangement=True
        )
        assert len(experiment.driver.block_table) == table_before
        # And the analyzer still reset for the next day.
        assert experiment.controller.analyzer.observed == 0


class TestTinyReservedArea:
    def test_one_reserved_cylinder_still_works(self):
        driver = make_driver(reserved=1)
        capacity = driver.label.reserved_capacity_blocks()
        assert capacity == 21 - 2
        from repro.core.arranger import BlockArranger
        from repro.core.hotlist import HotBlockList
        from repro.driver.ioctl import IoctlInterface

        arranger = BlockArranger(IoctlInterface(driver))
        hot = HotBlockList.from_pairs([(b, 10) for b in range(100)])
        plan, __ = arranger.rearrange(hot, num_blocks=100, now_ms=0.0)
        assert len(plan) == capacity


class TestUsersProfileFallbacks:
    def test_rewrite_on_full_filesystem_degrades_gracefully(self):
        """When the FS cannot host a rewrite copy, the edit falls back to
        in-place updates instead of failing."""
        profile = dataclasses.replace(
            USERS_FS_PROFILE.scaled(hours=0.25),
            num_directories=2,
            files_per_directory=12,
            mean_file_blocks=30.0,
            edit_session_fraction=1.0,
            new_files_per_day=50,
        )
        label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
        # A deliberately tiny partition.
        partition = label.add_partition("home", 21 * 40)
        generator = WorkloadGenerator(profile, partition, 21, seed=3)
        workload = generator.generate_day()  # must not raise
        assert workload.num_requests > 0


class TestDriverHeadState:
    def test_head_position_persists_across_days(self):
        driver = make_driver()
        sim1 = Simulation(driver)
        sim1.add_job(batch_job(0.0, [700 * 21], Op.READ))
        sim1.run()
        head = driver.disk.head_cylinder
        assert head > 600
        # A new simulation (new day) starts with the head where it was.
        sim2 = Simulation(driver)
        sim2.add_job(sequential_job(0.0, [700 * 21 + 1], Op.READ))
        completed = sim2.run()
        assert completed[0].seek_distance == 0


class TestZeroLengthDay:
    def test_empty_day_produces_empty_metrics(self):
        from repro.driver.ioctl import IoctlInterface
        from repro.stats.metrics import DayMetrics

        driver = make_driver()
        ioctl = IoctlInterface(driver)
        metrics = DayMetrics.from_tables(
            ioctl.read_stats(), TOSHIBA_MK156F.seek
        )
        assert metrics.all.requests == 0
        assert metrics.all.mean_seek_time_ms == 0.0
