"""Tests for repro.traces address mapping, time rescaling and
characterization."""

import pytest

from repro.driver.request import Op
from repro.traces import (
    BlockIO,
    CompactMapper,
    LinearMapper,
    MAPPING_STRATEGIES,
    ModuloMapper,
    characterize_records,
    jobs_from_records,
    make_mapper,
    matching_profile,
    rebase_and_scale,
    render_trace_character,
)


def io(time_ms, block, num_blocks=1, op=Op.READ):
    return BlockIO(time_ms=time_ms, block=block, num_blocks=num_blocks, op=op)


class TestMappers:
    def test_modulo_wraps(self):
        mapper = ModuloMapper(100)
        assert mapper.map(7) == 7
        assert mapper.map(107) == 7
        assert mapper.map(99) == 99

    def test_linear_preserves_shape(self):
        mapper = LinearMapper(100, 1000)
        assert mapper.map(0) == 0
        assert mapper.map(500) == 50
        assert mapper.map(999) == 99

    def test_linear_rejects_out_of_span(self):
        mapper = LinearMapper(100, 1000)
        with pytest.raises(ValueError):
            mapper.map(1000)
        with pytest.raises(ValueError):
            mapper.map(-1)

    def test_compact_first_touch_order(self):
        mapper = CompactMapper(100)
        assert mapper.map(9_000_000) == 0
        assert mapper.map(12) == 1
        assert mapper.map(9_000_000) == 0  # re-reference is stable
        assert mapper.working_set == 2
        assert not mapper.wrapped

    def test_compact_wraps_when_working_set_overflows(self):
        mapper = CompactMapper(3)
        for block in (10, 20, 30, 40):
            mapper.map(block)
        assert mapper.map(40) == 0  # fourth distinct block wrapped
        assert mapper.wrapped
        assert mapper.working_set == 4

    def test_all_mappers_stay_in_range(self):
        target = 37
        mappers = [
            ModuloMapper(target),
            LinearMapper(target, 10_000),
            CompactMapper(target),
        ]
        for mapper in mappers:
            for block in range(0, 10_000, 97):
                assert 0 <= mapper.map(block) < target

    def test_make_mapper(self):
        assert make_mapper("modulo", 10).name == "modulo"
        assert make_mapper("compact", 10).name == "compact"
        linear = make_mapper("linear", 10, source_span=50)
        assert linear.name == "linear"
        with pytest.raises(ValueError, match="source_span"):
            make_mapper("linear", 10)
        with pytest.raises(ValueError, match="unknown mapping"):
            make_mapper("hilbert", 10)
        with pytest.raises(ValueError):
            make_mapper("modulo", 0)

    def test_strategies_registry(self):
        assert set(MAPPING_STRATEGIES) == {"modulo", "linear", "compact"}


class TestRescale:
    def test_rebase_sorts_and_zeroes(self):
        records = [io(50.0, 2), io(10.0, 1), io(30.0, 3)]
        rebased = rebase_and_scale(records)
        assert [r.time_ms for r in rebased] == [0.0, 20.0, 40.0]
        assert [r.block for r in rebased] == [1, 3, 2]

    def test_time_scale_compresses(self):
        records = [io(0.0, 1), io(100.0, 2)]
        rebased = rebase_and_scale(records, time_scale=0.25)
        assert rebased[1].time_ms == pytest.approx(25.0)

    def test_time_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            rebase_and_scale([io(0.0, 1)], time_scale=0.0)

    def test_open_loop_one_job_per_record(self):
        records = [io(0.0, 5), io(10.0, 6), io(20.0, 7)]
        jobs = jobs_from_records(records, ModuloMapper(100), loop="open")
        assert len(jobs) == 3
        assert [job.start_ms for job in jobs] == [0.0, 10.0, 20.0]
        assert all(not job.sequential for job in jobs)
        assert [job.steps[0].logical_block for job in jobs] == [5, 6, 7]

    def test_open_loop_expands_multi_block_records(self):
        jobs = jobs_from_records(
            [io(0.0, 5, num_blocks=3)], ModuloMapper(100), loop="open"
        )
        (job,) = jobs
        assert [step.logical_block for step in job.steps] == [5, 6, 7]

    def test_closed_loop_sessionizes_on_gap(self):
        records = [
            io(0.0, 1),
            io(10.0, 2),
            io(20.0, 3),
            io(200.0, 4),  # gap 180 ms >= 50 -> new session
            io(210.0, 5),
        ]
        jobs = jobs_from_records(
            records, ModuloMapper(100), loop="closed", gap_ms=50.0
        )
        assert len(jobs) == 2
        first, second = jobs
        assert first.sequential and second.sequential
        assert len(first.steps) == 3
        assert len(second.steps) == 2
        # Inter-arrival gaps become think times on the non-lead steps.
        assert first.steps[0].think_ms == 0.0
        assert first.steps[1].think_ms == pytest.approx(10.0)
        assert second.start_ms == pytest.approx(200.0)

    def test_closed_loop_respects_time_scale(self):
        records = [io(0.0, 1), io(100.0, 2)]
        jobs = jobs_from_records(
            records,
            ModuloMapper(100),
            loop="closed",
            time_scale=0.1,
            gap_ms=50.0,
        )
        # 100 ms gap scales to 10 ms < 50, so one session.
        assert len(jobs) == 1
        assert jobs[0].steps[1].think_ms == pytest.approx(10.0)

    def test_bad_loop_and_gap_rejected(self):
        with pytest.raises(ValueError, match="loop"):
            jobs_from_records([io(0.0, 1)], ModuloMapper(10), loop="half")
        with pytest.raises(ValueError, match="gap_ms"):
            jobs_from_records(
                [io(0.0, 1)], ModuloMapper(10), loop="closed", gap_ms=0.0
            )

    def test_compaction_keeps_runs_contiguous(self):
        records = [io(0.0, 700, num_blocks=2), io(5.0, 100)]
        jobs = jobs_from_records(records, CompactMapper(50), loop="open")
        blocks = [s.logical_block for job in jobs for s in job.steps]
        assert blocks == [0, 1, 2]


class TestCharacterize:
    def test_empty_stream(self):
        character = characterize_records([])
        assert character.requests == 0
        assert character.working_set_blocks == 0
        assert character.read_fraction == 0.0

    def test_counts_and_mix(self):
        records = [
            io(0.0, 1),
            io(1.0, 2, op=Op.WRITE),
            io(2.0, 1),
            io(3.0, 9, num_blocks=2),
        ]
        character = characterize_records(records)
        assert character.requests == 4
        assert character.block_requests == 5
        assert character.reads == 3
        assert character.writes == 1
        assert character.working_set_blocks == 4  # {1, 2, 9, 10}
        assert character.span_blocks == 10  # blocks 1..10
        assert character.duration_ms == pytest.approx(3.0)
        assert character.read_fraction == pytest.approx(0.75)

    def test_sequential_fraction_and_runs(self):
        # 5 -> 6,7 -> 8 is one run; 50 breaks it.
        records = [
            io(0.0, 5),
            io(1.0, 6, num_blocks=2),
            io(2.0, 8),
            io(3.0, 50),
        ]
        character = characterize_records(records)
        assert character.sequential_fraction == pytest.approx(0.5)
        assert character.mean_run_blocks == pytest.approx((4 + 1) / 2)

    def test_zipf_exponent_recovers_skew(self):
        # Counts drawn exactly from count(rank) = C / rank.
        records = []
        time = 0.0
        for rank in range(1, 51):
            for _ in range(max(1, 1000 // rank)):
                records.append(io(time, rank))
                time += 1.0
        character = characterize_records(records)
        assert character.zipf_exponent == pytest.approx(1.0, abs=0.05)

    def test_uniform_counts_give_zero_exponent(self):
        records = [io(float(i), i) for i in range(20)]
        assert characterize_records(records).zipf_exponent == 0.0

    def test_matching_profile_bends_base(self):
        records = []
        time = 0.0
        for rank in range(1, 30):
            for _ in range(max(1, 300 // rank)):
                records.append(io(time, rank))
                time += 100.0
        character = characterize_records(records)
        profile = matching_profile(character, "system")
        assert profile.name == "system-matched"
        assert profile.day_hours == pytest.approx(
            character.duration_ms / 3_600_000.0
        )
        assert profile.file_popularity_exponent >= 0.5
        assert profile.popularity_reshuffle_fraction == 0.0

    def test_matching_profile_unknown_base(self):
        character = characterize_records([io(0.0, 1)])
        with pytest.raises(KeyError, match="unknown profile"):
            matching_profile(character, "vms")

    def test_render_mentions_the_numbers(self):
        character = characterize_records([io(0.0, 1), io(1.0, 2)])
        text = render_trace_character(character, "sample")
        assert "sample" in text
        assert "working set" in text
        assert "zipf exponent" in text
