"""Tests for repro.core.controller — the daily rearrangement cycle."""

import pytest

from repro.core.analyzer import ReferenceStreamAnalyzer
from repro.core.controller import (
    MONITOR_POLL_INTERVAL_MS,
    RearrangementController,
)
from repro.disk.disk import Disk
from repro.disk.label import DiskLabel
from repro.disk.models import TOSHIBA_MK156F
from repro.driver.driver import AdaptiveDiskDriver
from repro.driver.ioctl import IoctlInterface
from repro.driver.request import Op
from repro.sim.engine import Simulation
from repro.sim.jobs import batch_job


@pytest.fixture
def rig():
    label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
    driver = AdaptiveDiskDriver(disk=Disk(TOSHIBA_MK156F), label=label)
    ioctl = IoctlInterface(driver)
    controller = RearrangementController(ioctl=ioctl)
    return driver, ioctl, controller


class TestMonitoring:
    def test_paper_poll_interval_default(self, rig):
        __, __, controller = rig
        assert controller.poll_interval_ms == MONITOR_POLL_INTERVAL_MS == 120_000.0

    def test_periodic_polls_feed_the_analyzer(self, rig):
        driver, __, controller = rig
        simulation = Simulation(driver)
        controller.attach_to(simulation)
        # Spread requests across several poll intervals.
        for i in range(5):
            simulation.add_job(
                batch_job(i * 130_000.0, [7, 7, 9], Op.READ)
            )
        simulation.run()
        controller.final_poll()
        assert controller.analyzer.count_of(7) == 10
        assert controller.analyzer.count_of(9) == 5

    def test_polling_prevents_request_table_overflow(self, rig):
        driver, __, controller = rig
        driver.request_monitor.capacity = 4
        simulation = Simulation(driver)
        controller.attach_to(simulation)
        for i in range(6):
            simulation.add_job(
                batch_job(i * 125_000.0, [1, 2, 3], Op.READ)
            )
        simulation.run()
        controller.final_poll()
        assert driver.request_monitor.suspended_count == 0

    def test_hot_list_ranked(self, rig):
        __, __, controller = rig
        controller.analyzer.observe(5)
        controller.analyzer.observe(5)
        controller.analyzer.observe(9)
        hot = controller.hot_list()
        assert hot.blocks() == [5, 9]


class TestEndOfDay:
    def test_on_day_rearranges_from_counts(self, rig):
        driver, __, controller = rig
        for block in (1, 1, 1, 2, 2, 3):
            controller.analyzer.observe(block)
        finish = controller.end_of_day(
            now_ms=0.0, rearrange_tomorrow=True, num_blocks=2
        )
        assert finish > 0
        assert len(driver.block_table) == 2
        assert controller.last_plan is not None
        assert sorted(controller.last_plan.logical_blocks()) == [1, 2]
        # Counts reset for the next day.
        assert controller.analyzer.observed == 0

    def test_off_day_cleans_reserved_area(self, rig):
        driver, __, controller = rig
        controller.analyzer.observe(1)
        controller.end_of_day(now_ms=0.0, rearrange_tomorrow=True, num_blocks=1)
        assert len(driver.block_table) == 1
        controller.analyzer.observe(2)
        controller.end_of_day(now_ms=0.0, rearrange_tomorrow=False, num_blocks=1)
        assert len(driver.block_table) == 0
        assert controller.last_plan is None

    def test_end_of_day_drains_request_table(self, rig):
        driver, ioctl, controller = rig
        from repro.driver.request import read_request

        completion = driver.strategy(read_request(4, 0.0), 0.0)
        while completion is not None:
            __, completion = driver.complete(completion)
        controller.end_of_day(
            now_ms=1000.0, rearrange_tomorrow=True, num_blocks=5
        )
        # The final poll captured block 4 before the reset.
        assert len(driver.block_table) == 1

    def test_custom_analyzer(self):
        label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
        driver = AdaptiveDiskDriver(disk=Disk(TOSHIBA_MK156F), label=label)
        controller = RearrangementController(
            ioctl=IoctlInterface(driver),
            analyzer=ReferenceStreamAnalyzer(capacity=16),
        )
        assert controller.analyzer.capacity == 16
