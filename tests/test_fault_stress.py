"""Randomized, seeded stress test for the block table under faults.

Hundreds of interleaved DKIOCBCOPY / DKIOCCLEAN / crash / attach steps —
with reads and writes mixed in — against a live driver, with
:class:`BlockTableInvariants` proving the table structurally sound after
every single step.  The sequence is fully determined by the seed, so a
failure reproduces with ``FAULT_STRESS_SEED=<n>``.
"""

import os
import random

import pytest

from repro.disk.disk import Disk
from repro.disk.label import DiskLabel
from repro.disk.models import TOSHIBA_MK156F
from repro.driver.blocktable import BlockTable
from repro.driver.driver import AdaptiveDiskDriver
from repro.driver.request import read_request, write_request
from repro.faults.invariants import BlockTableInvariants

SEEDS = [3, 17, 1993]
if os.environ.get("FAULT_STRESS_SEED"):
    SEEDS.append(int(os.environ["FAULT_STRESS_SEED"]))

STEPS = 400


def serve_one(driver, request):
    completion = driver.strategy(request, request.arrival_ms)
    while completion is not None:
        __, completion = driver.complete(completion)


@pytest.mark.parametrize("seed", SEEDS)
def test_driver_survives_random_interleaving(seed):
    rng = random.Random(seed)
    label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=4)
    driver = AdaptiveDiskDriver(disk=Disk(TOSHIBA_MK156F), label=label)
    checker = BlockTableInvariants(label)
    slots = list(label.reserved_data_blocks())
    hot_blocks = list(range(64))  # logical blocks the workload churns
    clock = 0.0

    for step in range(STEPS):
        clock += 10.0
        action = rng.choices(
            ["bcopy", "clean", "io", "crash", "attach"],
            weights=[40, 5, 40, 8, 7],
        )[0]

        if action == "bcopy":
            block = rng.choice(hot_blocks)
            physical = label.virtual_to_physical_block(block)
            free = [
                s
                for s in slots
                if driver.block_table.original_of(s) is None
            ]
            if physical in driver.block_table or not free:
                continue
            clock = driver.bcopy(block, rng.choice(free), clock)
        elif action == "clean":
            clock = driver.clean(clock)
        elif action == "io":
            block = rng.choice(hot_blocks)
            make = rng.choice([read_request, write_request])
            serve_one(driver, make(block, clock, tag=f"s{step}"))
        elif action == "crash":
            lost = driver.crash(clock)
            assert lost == []  # every request above was fully drained
            clock = driver.recover(clock)
            checker.check_recovery(driver.block_table)
        else:  # attach: a reboot that reloads the table from disk
            driver.block_table.crash()
            driver.attach()
            checker.check_recovery(driver.block_table)

        checker.check(driver.block_table)
        # Memory and disk copy must agree on the mappings at every step:
        # the driver forces the table out on every mutation.
        disk_mappings = {
            original: reserved
            for original, (reserved, __) in driver.block_table.disk_copy().items()
        }
        memory_mappings = {
            entry.original_block: entry.reserved_block
            for entry in driver.block_table.entries()
        }
        assert disk_mappings == memory_mappings

    assert driver.fault_stats.crashes == driver.fault_stats.recoveries


@pytest.mark.parametrize("seed", SEEDS)
def test_bare_table_random_ops_hold_invariants(seed):
    """The table alone (no driver): add/remove/flush/crash/recover."""
    rng = random.Random(seed)
    label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=4)
    checker = BlockTableInvariants(label)
    slots = list(label.reserved_data_blocks())
    table = BlockTable(capacity=len(slots))

    for __ in range(STEPS):
        action = rng.choices(
            ["add", "remove", "dirty", "flush", "crash"],
            weights=[40, 20, 15, 15, 10],
        )[0]
        entries = table.entries()
        if action == "add":
            free = [s for s in slots if table.original_of(s) is None]
            original = rng.randrange(1000)
            if not free or original in table:
                continue
            table.add(original, rng.choice(free))
        elif action == "remove" and entries:
            table.remove(rng.choice(entries).original_block)
        elif action == "dirty" and entries:
            table.mark_dirty(rng.choice(entries).original_block)
        elif action == "flush":
            table.write_to_disk()
        elif action == "crash":
            table.write_to_disk()  # the driver flushes before any crash
            table.crash()
            assert len(table) == 0
            table.recover()
            checker.check_recovery(table)
        checker.check(table)
