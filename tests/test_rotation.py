"""Tests for repro.disk.rotation."""

import pytest
from hypothesis import given, strategies as st

from repro.disk.models import TOSHIBA_MK156F
from repro.disk.rotation import RotationModel


@pytest.fixture
def rotation():
    return RotationModel(TOSHIBA_MK156F.geometry)


class TestAngle:
    def test_angle_at_time_zero(self, rotation):
        assert rotation.angle_at(0.0) == 0.0

    def test_angle_after_one_sector_time(self, rotation):
        assert rotation.angle_at(rotation.sector_time_ms) == pytest.approx(1.0)

    def test_angle_wraps_after_full_rotation(self, rotation):
        assert rotation.angle_at(rotation.rotation_time_ms) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_negative_time_rejected(self, rotation):
        with pytest.raises(ValueError):
            rotation.angle_at(-1.0)

    def test_sector_passing_at(self, rotation):
        t = 2.5 * rotation.sector_time_ms
        assert rotation.sector_passing_at(t) == 2


class TestLatency:
    def test_latency_to_current_sector_is_zero(self, rotation):
        assert rotation.latency_to_sector(0.0, 0) == 0.0

    def test_latency_to_next_sector(self, rotation):
        assert rotation.latency_to_sector(0.0, 1) == pytest.approx(
            rotation.sector_time_ms
        )

    def test_latency_to_just_missed_sector_is_nearly_full_rotation(
        self, rotation
    ):
        # Head just passed sector 0: wait almost a full revolution.
        t = 0.5 * rotation.sector_time_ms
        latency = rotation.latency_to_sector(t, 0)
        assert latency == pytest.approx(
            rotation.rotation_time_ms - 0.5 * rotation.sector_time_ms
        )

    def test_latency_bounded_by_rotation_time(self, rotation):
        for t in (0.0, 3.7, 12.9, 100.001):
            for sector in (0, 10, 33):
                latency = rotation.latency_to_sector(t, sector)
                assert 0 <= latency < rotation.rotation_time_ms

    def test_invalid_sector_rejected(self, rotation):
        with pytest.raises(ValueError):
            rotation.latency_to_sector(0.0, 34)
        with pytest.raises(ValueError):
            rotation.latency_to_sector(0.0, -1)

    def test_latency_periodic_in_time(self, rotation):
        t = 5.3
        assert rotation.latency_to_sector(t, 7) == pytest.approx(
            rotation.latency_to_sector(t + rotation.rotation_time_ms, 7),
            abs=1e-6,
        )


class TestInterleaveEffect:
    """The physical basis of the interleaved placement policy (Table 10):
    after reading block k and a short think time, a one-block gap means the
    next block arrives under the head soon; a contiguous next block has
    just been missed and costs nearly a full revolution."""

    def test_gap_beats_contiguous_for_small_think_time(self):
        geometry = TOSHIBA_MK156F.geometry
        rotation = RotationModel(geometry)
        # Finish reading block 0 (sectors 0-15) at its transfer end time.
        finish = geometry.block_transfer_time_ms(1)
        think = 2.0
        now = finish + think
        contiguous_start = 16 % geometry.sectors_per_track  # block 1
        gap_start = 32 % geometry.sectors_per_track  # block 2 (one-block gap)
        wait_contiguous = rotation.latency_to_sector(now, contiguous_start)
        wait_gap = rotation.latency_to_sector(now, gap_start)
        assert wait_gap < wait_contiguous
        # The miss costs most of a revolution.
        assert wait_contiguous > 0.8 * rotation.rotation_time_ms


@given(
    t=st.floats(min_value=0, max_value=1e7, allow_nan=False),
    sector=st.integers(min_value=0, max_value=33),
)
def test_latency_always_in_range(t, sector):
    rotation = RotationModel(TOSHIBA_MK156F.geometry)
    latency = rotation.latency_to_sector(t, sector)
    assert 0 <= latency < rotation.rotation_time_ms


@given(
    t=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    sector=st.integers(min_value=0, max_value=33),
)
def test_arriving_after_latency_finds_the_sector(t, sector):
    """Waiting out the returned latency lands exactly on the sector edge."""
    rotation = RotationModel(TOSHIBA_MK156F.geometry)
    latency = rotation.latency_to_sector(t, sector)
    angle = rotation.angle_at(t + latency)
    # Modulo float error, the head is at the start of `sector`.
    assert angle == pytest.approx(sector, abs=1e-3) or (
        sector == 0 and angle == pytest.approx(34, abs=1e-3)
    )
