"""Tests for repro.core.analyzer — the reference stream analyzer."""

import pytest
from hypothesis import given, strategies as st

from repro.core.analyzer import ReferenceStreamAnalyzer
from repro.driver.monitor import RequestRecord


def record(block, size=1, is_read=True, arrival=0.0):
    return RequestRecord(
        logical_block=block, size_blocks=size, is_read=is_read, arrival_ms=arrival
    )


class TestExactCounting:
    def test_counts_references(self):
        analyzer = ReferenceStreamAnalyzer()
        for block in (1, 1, 2, 1, 3):
            analyzer.observe(block)
        assert analyzer.count_of(1) == 3
        assert analyzer.count_of(2) == 1
        assert analyzer.count_of(99) == 0
        assert analyzer.observed == 5
        assert analyzer.distinct_blocks() == 3

    def test_hot_blocks_ordered_by_count(self):
        analyzer = ReferenceStreamAnalyzer()
        for block in (2, 1, 1, 3, 3, 3):
            analyzer.observe(block)
        assert analyzer.hot_blocks() == [(3, 3), (1, 2), (2, 1)]
        assert analyzer.hot_blocks(1) == [(3, 3)]

    def test_ties_break_by_block_number(self):
        analyzer = ReferenceStreamAnalyzer()
        for block in (9, 4):
            analyzer.observe(block)
        assert analyzer.hot_blocks() == [(4, 1), (9, 1)]

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            ReferenceStreamAnalyzer().hot_blocks(-1)

    def test_reset(self):
        analyzer = ReferenceStreamAnalyzer()
        analyzer.observe(1)
        analyzer.reset()
        assert analyzer.observed == 0
        assert analyzer.hot_blocks() == []


class TestBoundedList:
    def test_no_replacement_below_capacity(self):
        analyzer = ReferenceStreamAnalyzer(capacity=3)
        for block in (1, 2, 3):
            analyzer.observe(block)
        assert analyzer.replacements == 0

    def test_space_saving_inherits_floor(self):
        """The space-saving rule: the newcomer takes over the minimum
        entry's count plus one."""
        analyzer = ReferenceStreamAnalyzer(capacity=2, heuristic="space-saving")
        analyzer.observe(1)
        analyzer.observe(1)
        analyzer.observe(2)
        analyzer.observe(3)  # evicts 2 (count 1) -> 3 enters with count 2
        assert analyzer.count_of(3) == 2
        assert analyzer.count_of(2) == 0
        assert analyzer.replacements == 1

    def test_evict_min_starts_from_one(self):
        analyzer = ReferenceStreamAnalyzer(capacity=2, heuristic="evict-min")
        analyzer.observe(1)
        analyzer.observe(1)
        analyzer.observe(2)
        analyzer.observe(3)
        assert analyzer.count_of(3) == 1

    def test_space_saving_keeps_true_heavy_hitter(self):
        """A block far hotter than capacity churn always survives."""
        analyzer = ReferenceStreamAnalyzer(capacity=5, heuristic="space-saving")
        stream = []
        for i in range(200):
            stream.append(777)  # the heavy hitter
            stream.append(1000 + i)  # parade of one-off blocks
        for block in stream:
            analyzer.observe(block)
        hot = analyzer.hot_blocks(1)
        assert hot[0][0] == 777
        assert hot[0][1] >= 200

    def test_validation(self):
        with pytest.raises(ValueError):
            ReferenceStreamAnalyzer(capacity=0)
        with pytest.raises(ValueError):
            ReferenceStreamAnalyzer(heuristic="magic")


class TestRecordDigestion:
    def test_multiblock_records_count_each_block(self):
        analyzer = ReferenceStreamAnalyzer()
        analyzer.observe_records([record(10, size=3)])
        assert analyzer.count_of(10) == 1
        assert analyzer.count_of(11) == 1
        assert analyzer.count_of(12) == 1

    def test_read_write_filters(self):
        reads_only = ReferenceStreamAnalyzer(count_writes=False)
        reads_only.observe_records([record(1), record(2, is_read=False)])
        assert reads_only.count_of(1) == 1
        assert reads_only.count_of(2) == 0

        writes_only = ReferenceStreamAnalyzer(count_reads=False)
        writes_only.observe_records([record(1), record(2, is_read=False)])
        assert writes_only.count_of(1) == 0
        assert writes_only.count_of(2) == 1

    def test_poll_reads_and_clears_driver_table(self):
        from repro.disk.disk import Disk
        from repro.disk.label import DiskLabel
        from repro.disk.models import TOSHIBA_MK156F
        from repro.driver.driver import AdaptiveDiskDriver
        from repro.driver.ioctl import IoctlInterface
        from repro.driver.request import read_request

        label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=48)
        driver = AdaptiveDiskDriver(disk=Disk(TOSHIBA_MK156F), label=label)
        ioctl = IoctlInterface(driver)
        completion = driver.strategy(read_request(5, 0.0), 0.0)
        while completion is not None:
            __, completion = driver.complete(completion)

        analyzer = ReferenceStreamAnalyzer()
        assert analyzer.poll(ioctl) == 1
        assert analyzer.count_of(5) == 1
        assert analyzer.poll(ioctl) == 0  # table was cleared


@given(
    stream=st.lists(st.integers(min_value=0, max_value=20), max_size=400),
    capacity=st.integers(min_value=1, max_value=30),
)
def test_space_saving_overestimates_only(stream, capacity):
    """Space-saving estimates are never below the true count (the classic
    stream-summary guarantee)."""
    analyzer = ReferenceStreamAnalyzer(capacity=capacity, heuristic="space-saving")
    true_counts: dict[int, int] = {}
    for block in stream:
        analyzer.observe(block)
        true_counts[block] = true_counts.get(block, 0) + 1
    for block, estimate in analyzer.hot_blocks():
        assert estimate >= true_counts.get(block, 0)


@given(stream=st.lists(st.integers(min_value=0, max_value=50), max_size=400))
def test_unbounded_analyzer_is_exact(stream):
    analyzer = ReferenceStreamAnalyzer()
    true_counts: dict[int, int] = {}
    for block in stream:
        analyzer.observe(block)
        true_counts[block] = true_counts.get(block, 0) + 1
    assert dict(analyzer.hot_blocks()) == true_counts
