"""The :class:`DeviceDriver` contract, enforced across backends.

The simulation engine clocks any structurally conforming device, so
every backend — the paper's adaptive disk driver and the page-mapped FTL
(``docs/ftl.md``) — must agree on the boundary semantics: error paths,
the strategy/complete clocking handshake, read-after-write through
``read_data``, the crash/recover/resubmit protocol, and the tracer
hooks.  Each test here runs against every backend via the parametrized
``driver`` fixture; adding a backend means adding one factory.
"""

import pytest

from repro.disk.disk import Disk
from repro.disk.label import DiskLabel
from repro.disk.models import TOSHIBA_MK156F
from repro.driver import (
    AdaptiveDiskDriver,
    BadAddressError,
    DeviceDriver,
    DriverError,
    FlashGeometry,
    FtlDriver,
)
from repro.driver.request import read_request, write_request
from repro.obs.tracer import Tracer

TINY_FLASH = FlashGeometry(
    channels=1, blocks_per_channel=40, pages_per_block=8, page_bytes=64
)


def make_disk_driver() -> AdaptiveDiskDriver:
    label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=4)
    driver = AdaptiveDiskDriver(disk=Disk(TOSHIBA_MK156F), label=label)
    driver.attach()
    return driver


def make_ftl_driver() -> FtlDriver:
    driver = FtlDriver(geometry=TINY_FLASH, logical_pages=128)
    driver.attach()
    return driver


BACKENDS = {"disk": make_disk_driver, "ftl": make_ftl_driver}


@pytest.fixture(params=sorted(BACKENDS))
def driver(request):
    return BACKENDS[request.param]()


def serve(driver, request) -> None:
    """Drive one request (and anything queued behind it) to completion."""
    completion = driver.strategy(request, request.arrival_ms)
    while completion is not None:
        __, completion = driver.complete(completion)


class RecordingTracer(Tracer):
    def __init__(self) -> None:
        self.events: list[tuple] = []

    def request_enqueued(self, device, request, now_ms, queue_depth):
        self.events.append(("enqueued", device, request.request_id))

    def service_complete(self, device, request, now_ms):
        self.events.append(("complete", device, request.request_id))


class TestDeviceDriverContract:
    def test_satisfies_the_runtime_protocol(self, driver):
        assert isinstance(driver, DeviceDriver)
        assert isinstance(driver.name, str)
        assert driver.tracer is not None

    def test_strategy_before_arrival_is_a_driver_error(self, driver):
        request = read_request(0, arrival_ms=100.0)
        with pytest.raises(DriverError, match="before the request's arrival"):
            driver.strategy(request, 50.0)

    def test_multiblock_requests_are_rejected(self, driver):
        request = read_request(0, arrival_ms=0.0, size_blocks=4)
        with pytest.raises(BadAddressError, match="single-block"):
            driver.strategy(request, 0.0)

    def test_complete_while_idle_is_a_driver_error(self, driver):
        with pytest.raises(DriverError, match="no operation in flight"):
            driver.complete(0.0)

    def test_busy_queueing_lifecycle(self, driver):
        first = write_request(1, arrival_ms=0.0, tag="a")
        second = write_request(2, arrival_ms=0.0, tag="b")
        completion = driver.strategy(first, 0.0)
        assert completion is not None and completion >= 0.0
        assert driver.busy
        assert driver.strategy(second, 0.0) is None  # queued behind first
        done, next_completion = driver.complete(completion)
        assert done is first
        assert next_completion is not None  # second started immediately
        done, next_completion = driver.complete(next_completion)
        assert done is second
        assert next_completion is None
        assert not driver.busy

    def test_read_after_write_through_read_data(self, driver):
        for block, tag in ((3, "x"), (40, "y"), (3, "x2")):
            serve(driver, write_request(block, arrival_ms=0.0, tag=tag))
        serve(driver, read_request(3, arrival_ms=1.0))
        assert driver.read_data(3) == "x2"
        assert driver.read_data(40) == "y"
        assert driver.read_data(99) is None  # never written

    def test_completed_requests_carry_timestamps(self, driver):
        request = write_request(5, arrival_ms=10.0, tag="t")
        serve(driver, request)
        assert request.submit_ms is not None
        assert request.complete_ms is not None
        assert request.complete_ms >= request.submit_ms >= 10.0

    def test_tracer_hooks_fire_with_the_device_name(self, driver):
        tracer = RecordingTracer()
        driver.tracer = tracer
        request = write_request(7, arrival_ms=0.0, tag="v")
        serve(driver, request)
        assert ("enqueued", driver.name, request.request_id) in tracer.events
        assert ("complete", driver.name, request.request_id) in tracer.events

    def test_crash_recover_resubmit_round_trip(self, driver):
        serve(driver, write_request(3, arrival_ms=0.0, tag="durable"))
        inflight = write_request(5, arrival_ms=1000.0, tag="retried")
        assert driver.strategy(inflight, 1000.0) is not None
        lost = driver.crash(1500.0)
        assert inflight in lost
        assert not driver.busy
        clock = driver.recover(1500.0)
        assert clock >= 1500.0
        completion = driver.resubmit(inflight, clock)
        while completion is not None:
            __, completion = driver.complete(completion)
        assert driver.read_data(3) == "durable"
        assert driver.read_data(5) == "retried"
