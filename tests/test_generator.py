"""Tests for repro.workload.generator — the synthetic workload."""

import dataclasses

import pytest

from repro.disk.label import DiskLabel
from repro.disk.models import TOSHIBA_MK156F
from repro.driver.request import Op
from repro.workload.distributions import top_k_share
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import SYSTEM_FS_PROFILE, USERS_FS_PROFILE


def make_generator(profile=None, seed=42, reserved=48):
    profile = profile or SYSTEM_FS_PROFILE.scaled(hours=1.0)
    label = DiskLabel(TOSHIBA_MK156F.geometry, reserved_cylinders=reserved)
    partition = label.add_partition("fs0", label.virtual_total_blocks)
    return WorkloadGenerator(
        profile=profile,
        partition=partition,
        blocks_per_cylinder=TOSHIBA_MK156F.geometry.blocks_per_cylinder,
        seed=seed,
    )


class TestDeterminism:
    def test_same_seed_same_workload(self):
        a = make_generator(seed=7).generate_day()
        b = make_generator(seed=7).generate_day()
        assert a.all_counts == b.all_counts
        assert a.num_requests == b.num_requests

    def test_different_seeds_differ(self):
        a = make_generator(seed=7).generate_day()
        b = make_generator(seed=8).generate_day()
        assert a.all_counts != b.all_counts

    def test_days_advance(self):
        generator = make_generator()
        first = generator.generate_day()
        second = generator.generate_day()
        assert (first.day, second.day) == (0, 1)


class TestWorkloadShape:
    def test_counts_consistent_with_jobs(self):
        workload = make_generator().generate_day()
        total = sum(job.num_requests for job in workload.jobs)
        assert total == workload.num_requests
        assert sum(workload.all_counts.values()) == total
        assert workload.num_reads + workload.num_writes == total

    def test_read_counts_subset_of_all(self):
        workload = make_generator().generate_day()
        for block, count in workload.read_counts.items():
            assert workload.all_counts[block] >= count

    def test_blocks_within_virtual_disk(self):
        workload = make_generator().generate_day()
        limit = (815 - 48) * 21
        for job in workload.jobs:
            for step in job.steps:
                assert 0 <= step.logical_block < limit

    def test_jobs_sorted_by_start(self):
        workload = make_generator().generate_day()
        starts = [job.start_ms for job in workload.jobs]
        assert starts == sorted(starts)

    def test_system_skew_matches_paper(self):
        """Figure 5 / Section 5.4: ~100 hottest blocks absorb ~90% of
        requests; fewer than ~2000 blocks absorb everything."""
        generator = make_generator(profile=SYSTEM_FS_PROFILE, seed=3)
        workload = generator.generate_day()
        counts = list(workload.all_counts.values())
        assert top_k_share(counts, 100) > 0.80
        assert len(counts) < 2000

    def test_write_concentration_on_system_fs(self):
        """Writes are concentrated on a very small set of (metadata)
        blocks (Section 5.2)."""
        generator = make_generator(profile=SYSTEM_FS_PROFILE, seed=3)
        workload = generator.generate_day()
        write_counts = {
            block: workload.all_counts[block] - workload.read_counts.get(block, 0)
            for block in workload.all_counts
        }
        write_counts = {b: c for b, c in write_counts.items() if c > 0}
        assert top_k_share(list(write_counts.values()), 30) > 0.85


class TestSyncBursts:
    def test_sync_jobs_are_write_batches(self):
        workload = make_generator().generate_day()
        syncs = [job for job in workload.jobs if job.name == "sync"]
        assert syncs
        for job in syncs:
            assert not job.sequential
            assert all(step.op is Op.WRITE for step in job.steps)

    def test_sync_bursts_on_interval_boundaries(self):
        profile = SYSTEM_FS_PROFILE.scaled(hours=1.0)
        workload = make_generator(profile=profile).generate_day()
        interval = profile.sync_interval_s * 1000.0
        for job in workload.jobs:
            if job.name == "sync":
                assert job.start_ms % interval == pytest.approx(0.0)

    def test_burst_blocks_distinct(self):
        workload = make_generator().generate_day()
        for job in workload.jobs:
            if job.name == "sync":
                blocks = [s.logical_block for s in job.steps]
                assert len(blocks) == len(set(blocks))


class TestSessions:
    def test_read_sessions_are_sequential_jobs(self):
        workload = make_generator().generate_day()
        sessions = [job for job in workload.jobs if job.name == "session"]
        assert sessions
        for job in sessions:
            assert job.sequential
            assert all(step.op is Op.READ for step in job.steps)

    def test_runs_cover_consecutive_file_blocks_with_gap(self):
        """Multi-block runs follow the FFS interleave: logical block
        numbers inside a run advance by the allocator gap."""
        generator = make_generator(
            profile=dataclasses.replace(
                SYSTEM_FS_PROFILE.scaled(hours=1.0),
                single_block_read_prob=0.0,
            )
        )
        workload = generator.generate_day()
        multi = [
            j for j in workload.jobs if j.name == "session" and len(j.steps) > 1
        ]
        assert multi
        gap = generator.profile.fs_interleave + 1
        for job in multi[:20]:
            blocks = [s.logical_block for s in job.steps]
            deltas = {b - a for a, b in zip(blocks, blocks[1:])}
            assert deltas == {gap}


class TestUsersChurn:
    def test_rewrites_relocate_file_blocks(self):
        profile = dataclasses.replace(
            USERS_FS_PROFILE.scaled(hours=1.0),
            edit_session_fraction=1.0,
            edit_uniform_prob=0.0,
        )
        generator = make_generator(profile=profile, seed=5)
        before = {
            id(inode): tuple(inode.data_blocks)
            for inode in generator._inodes
        }
        generator.generate_day()
        after_blocks = {
            tuple(inode.data_blocks) for inode in generator._inodes
        }
        # At least one popular file was rewritten into fresh blocks.
        assert any(
            blocks not in after_blocks for blocks in before.values()
        ) or len(after_blocks) != len(before)

    def test_new_files_created_across_days(self):
        profile = dataclasses.replace(
            USERS_FS_PROFILE.scaled(hours=1.0), new_files_per_day=10
        )
        generator = make_generator(profile=profile, seed=5)
        before = len(generator._inodes)
        generator.generate_day()
        assert len(generator._inodes) >= before + 1

    def test_drift_changes_next_day_distribution(self):
        profile = dataclasses.replace(
            USERS_FS_PROFILE.scaled(hours=1.0),
            popularity_reshuffle_fraction=0.5,
        )
        generator = make_generator(profile=profile, seed=5)
        ranks_before = list(generator._rank_of)
        generator.generate_day()
        generator.generate_day()  # drift applies from day 1 on
        assert list(generator._rank_of) != ranks_before


class TestFileSystemIntegration:
    def test_uses_profile_fs_layout(self):
        generator = make_generator()
        assert generator.fs.cylinders_per_group == (
            SYSTEM_FS_PROFILE.cylinders_per_group
        )
        assert generator.fs.interleave == SYSTEM_FS_PROFILE.fs_interleave
